//! # gossip-quantiles
//!
//! A faithful, laptop-scale reproduction of
//! *"Optimal Gossip Algorithms for Exact and Approximate Quantile
//! Computations"* (Haeupler, Mohapatra, Su; PODC 2018), packaged as a facade
//! over the workspace crates:
//!
//! * [`net`] ([`gossip_net`]) — the synchronous uniform-gossip simulator;
//! * [`quantile`] ([`quantile_gossip`]) — the paper's algorithms
//!   (Theorems 1.1, 1.2, 1.4, Corollary 1.5);
//! * [`baseline`] ([`baselines`]) — push-sum, KDG03 selection, naive sampling,
//!   the doubling/compaction algorithms of Appendix A, the Doerr et al. median
//!   rule;
//! * [`bound`] ([`lower_bound`]) — the Theorem 1.3 information-spreading lower
//!   bound;
//! * [`measure`] ([`analysis`]) — rank oracle, workloads, trial runner,
//!   reporting.
//!
//! The most common entry points are re-exported at the crate root:
//!
//! ```
//! use gossip_quantiles::{approximate_quantile, exact_quantile, ApproxConfig,
//!                        EngineConfig, NarrowingConfig};
//!
//! # fn main() -> gossip_quantiles::Result<()> {
//! let readings: Vec<u64> = (0..5_000).map(|i| (i * 31) % 65_537).collect();
//!
//! // Every node learns an approximate 95th percentile in O(log log n) rounds…
//! let approx = approximate_quantile(&readings, 0.95, 0.05,
//!                                   &ApproxConfig::default(),
//!                                   EngineConfig::with_seed(1))?;
//! // …or the exact one in O(log n) rounds.
//! let exact = exact_quantile(&readings, 0.95, &NarrowingConfig::default(),
//!                            EngineConfig::with_seed(2))?;
//! assert!(approx.rounds < exact.rounds);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios, `README.md` for the
//! crate map and threading knobs, and `docs/paper-map.md` for the
//! entry-point-by-theorem map of the whole reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The gossip network simulator (re-export of [`gossip_net`]).
pub use gossip_net as net;

/// The paper's quantile algorithms (re-export of [`quantile_gossip`]).
pub use quantile_gossip as quantile;

/// Baseline algorithms and gossip primitives (re-export of [`baselines`]).
pub use baselines as baseline;

/// The lower-bound experiment (re-export of [`lower_bound`]).
pub use lower_bound as bound;

/// Measurement substrate (re-export of [`analysis`]).
pub use analysis as measure;

pub use gossip_net::{
    ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, GossipError, LossModel, Metrics,
    NodeValue, PoolStats, Result, RoundProgram, StepKind, StragglerModel, Topology,
};
pub use quantile_gossip::{
    approximate_quantile, estimate_own_quantiles, exact_quantile, robust_approximate_quantile,
    ApproxConfig, ApproxOutcome, ExactOutcome, NarrowingConfig, OwnRankConfig, RobustConfig,
};
