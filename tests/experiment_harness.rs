//! Smoke tests for the reproduction harness: every experiment driver runs at
//! quick scale and produces a non-empty table. (The full-scale numbers are
//! recorded in EXPERIMENTS.md by the `reproduce` binary.)

// The `bench` crate is not a dependency of the facade crate (it is a binary
// harness), so these tests exercise the same code paths through the public
// APIs the drivers use.

use gossip_quantiles::baseline::{push_sum, PushSumConfig};
use gossip_quantiles::bound;
use gossip_quantiles::measure::{run_trials, Summary, Table, TrialSpec, Workload};
use gossip_quantiles::{approximate_quantile, ApproxConfig, EngineConfig};

#[test]
fn trial_runner_reproduces_identical_results_for_identical_seeds() {
    let spec = TrialSpec {
        master_seed: 5,
        trials: 6,
        threads: 3,
    };
    let run = |spec: &TrialSpec| {
        run_trials(spec, |_, seed| {
            let values = Workload::UniformDistinct.generate(2_000, seed);
            approximate_quantile(
                &values,
                0.5,
                0.1,
                &ApproxConfig::default(),
                EngineConfig::with_seed(seed),
            )
            .unwrap()
            .rounds
        })
    };
    assert_eq!(run(&spec), run(&spec));
}

#[test]
fn lower_bound_rounds_grow_with_one_over_epsilon_and_n() {
    let small = bound::spreading_rounds(1 << 10, 0.05, 1).unwrap();
    let fine = bound::spreading_rounds(1 << 10, 0.005, 1).unwrap();
    assert!(fine.rounds_to_all_informed >= small.rounds_to_all_informed);
    let big = bound::spreading_rounds(1 << 16, 0.05, 1).unwrap();
    assert!(big.theorem_barrier > small.theorem_barrier);
}

#[test]
fn push_sum_counting_summary_is_tight_enough_for_tables() {
    let indicators: Vec<bool> = (0..3_000).map(|i| i % 4 == 0).collect();
    let truth = 750.0;
    let spec = TrialSpec {
        master_seed: 3,
        trials: 4,
        threads: 2,
    };
    let errors = run_trials(&spec, |_, seed| {
        push_sum::count_matching(
            &indicators,
            &PushSumConfig::default(),
            EngineConfig::with_seed(seed),
        )
        .unwrap()
        .max_absolute_error(truth)
    });
    let summary = Summary::of(&errors);
    assert!(summary.max < 0.5, "push-sum counting too loose: {summary}");
}

#[test]
fn tables_render_for_report_assembly() {
    let mut table = Table::new("smoke", &["n", "rounds"]);
    let spec = TrialSpec {
        master_seed: 11,
        trials: 3,
        threads: 3,
    };
    for n in [1usize << 10, 1 << 12] {
        let rounds = run_trials(&spec, |_, seed| {
            let values = Workload::UniformDistinct.generate(n, seed);
            approximate_quantile(
                &values,
                0.9,
                0.1,
                &ApproxConfig::default(),
                EngineConfig::with_seed(seed),
            )
            .unwrap()
            .rounds
        });
        table.add_row(&[
            n.to_string(),
            format!("{:.1}", Summary::of_u64(&rounds).mean),
        ]);
    }
    let rendered = table.render();
    assert!(rendered.contains("1024"));
    assert!(rendered.contains("4096"));
    assert_eq!(table.len(), 2);
}
