//! Cross-crate integration tests: the full algorithms, graded by the analysis
//! oracle, on realistic workloads. Sizes are kept moderate so the suite runs
//! in debug mode; the benches and the `reproduce` binary exercise larger n.

use gossip_quantiles::measure::{RankOracle, Workload};
use gossip_quantiles::quantile::MethodUsed;
use gossip_quantiles::{
    approximate_quantile, exact_quantile, ApproxConfig, EngineConfig, FailureModel, NarrowingConfig,
};

#[test]
fn approximate_quantile_is_accurate_on_every_workload() {
    let n = 20_000;
    let phi = 0.75;
    let eps = 0.06;
    for (i, workload) in Workload::all().into_iter().enumerate() {
        let values = workload.generate(n, 100 + i as u64);
        let oracle = RankOracle::new(&values);
        let out = approximate_quantile(
            &values,
            phi,
            eps,
            &ApproxConfig::default(),
            EngineConfig::with_seed(i as u64),
        )
        .expect("approximate quantile");
        assert_eq!(out.outputs.len(), n);
        let worst = oracle.worst_error(&out.outputs, phi);
        assert!(
            worst <= eps + 0.01,
            "workload {}: worst error {worst}",
            workload.name()
        );
        // Outputs are always actual input values.
        let set: std::collections::HashSet<u64> = values.iter().copied().collect();
        assert!(out.outputs.iter().all(|o| set.contains(o)));
    }
}

#[test]
fn exact_quantile_matches_centralised_sort_on_ties_and_heavy_tails() {
    for (workload, seed) in [(Workload::HeavyTies, 1u64), (Workload::HeavyTail, 2)] {
        let values = workload.generate(4_000, seed);
        let oracle = RankOracle::new(&values);
        for phi in [0.25, 0.5, 0.99] {
            let out = exact_quantile(
                &values,
                phi,
                &NarrowingConfig::default(),
                EngineConfig::with_seed(seed ^ phi.to_bits()),
            )
            .expect("exact quantile");
            assert_eq!(
                out.answer,
                oracle.quantile(phi),
                "workload {} phi {phi}",
                workload.name()
            );
            // Largest message of the whole pipeline: a pair of (value, tag)
            // bracket keys, i.e. a small constant number of words — O(log n).
            assert!(
                out.metrics.max_message_bits <= 512,
                "O(log n) message bound violated"
            );
        }
    }
}

#[test]
fn exact_is_faster_than_kdg_baseline_in_rounds() {
    // Round counts of both algorithms vary noticeably with the seed, so a
    // single run can land either way; the E1 "shape" — the paper's algorithm
    // needs fewer rounds than the O(log^2 n) baseline already at laptop
    // scale — is about the mean, which a handful of seeds pins down.
    let values = Workload::UniformDistinct.generate(8_192, 3);
    let mut ours_total = 0u64;
    let mut kdg_total = 0u64;
    for seed in [4u64, 104, 204] {
        let ours = exact_quantile(
            &values,
            0.5,
            &NarrowingConfig::default(),
            EngineConfig::with_seed(seed),
        )
        .expect("ours");
        let kdg = gossip_quantiles::baseline::kdg_selection::exact_quantile(
            &values,
            0.5,
            &gossip_quantiles::baseline::KdgSelectionConfig::default(),
            EngineConfig::with_seed(seed ^ 1),
        )
        .expect("kdg");
        assert_eq!(ours.answer, kdg.answer);
        ours_total += ours.rounds;
        kdg_total += kdg.rounds;
    }
    assert!(
        ours_total < kdg_total,
        "ours {} total rounds vs kdg {} total rounds over 3 seeds",
        ours_total,
        kdg_total
    );
}

#[test]
fn tiny_epsilon_falls_back_to_narrowing_and_stays_exactish() {
    let values = Workload::UniformDistinct.generate(4_096, 9);
    let oracle = RankOracle::new(&values);
    let eps = 0.002; // far below the tournament threshold at this n
    let out = approximate_quantile(
        &values,
        0.3,
        eps,
        &ApproxConfig::default(),
        EngineConfig::with_seed(10),
    )
    .expect("approximate");
    assert!(matches!(out.method, MethodUsed::Narrowing { .. }));
    for o in &out.outputs {
        assert!(oracle.within_epsilon(o, 0.3, eps + 1.0 / 4096.0));
    }
}

#[test]
fn approximate_quantile_under_failures_still_within_epsilon() {
    let values = Workload::UniformDistinct.generate(20_000, 21);
    let oracle = RankOracle::new(&values);
    let eps = 0.08;
    // The plain (non-robust) algorithm under a mild failure rate: accuracy
    // degrades gracefully because failed pulls fall back to fewer samples.
    let engine = EngineConfig::with_seed(22).failure(FailureModel::uniform(0.1).unwrap());
    let out = approximate_quantile(&values, 0.5, eps, &ApproxConfig::default(), engine)
        .expect("approximate");
    let worst = oracle.worst_error(&out.outputs, 0.5);
    assert!(worst <= 2.0 * eps, "worst error {worst}");
}

#[test]
fn exact_quantile_under_failures_is_still_exact() {
    let values = Workload::UniformDistinct.generate(3_000, 33);
    let oracle = RankOracle::new(&values);
    let engine = EngineConfig::with_seed(34).failure(FailureModel::uniform(0.2).unwrap());
    let out = exact_quantile(&values, 0.5, &NarrowingConfig::default(), engine).expect("exact");
    assert_eq!(out.answer, oracle.quantile(0.5));
    assert!(out.metrics.failed_operations > 0);
}
