//! A persistent worker pool for the engine's per-round chunk maps.
//!
//! PR 1 executed every round as a fork/join over `std::thread::scope`, which
//! re-spawns OS threads for every chunk map — two maps per round, so eight
//! spawns per `pull_round` at four threads. Spawning dominates below ~16k
//! nodes. [`WorkerPool`] replaces that with **long-lived workers** parked on a
//! condition variable; dispatching a round costs two mutex/condvar hand-offs
//! instead of `threads` thread creations.
//!
//! ## Barrier protocol
//!
//! The pool runs one *job* at a time. A job is an epoch-stamped task list:
//!
//! 1. [`WorkerPool::run`] takes the dispatch gate (so concurrent callers —
//!    e.g. two engines sharing one pool from two user threads — serialise),
//!    publishes the job under the state mutex (`epoch += 1`, task cursor
//!    reset, a *join budget* of `min(workers, tasks − 1)`), and wakes that
//!    many workers — after releasing the state mutex, so the first woken
//!    worker does not immediately block on the lock the notifier still
//!    holds. The budget keeps a small map on a large shared pool from
//!    waking — or waiting on — workers it has no tasks for; it always drains,
//!    because a worker is either parked (a wake-up reaches it) or mid-loop
//!    (it re-checks the join predicate under the mutex before parking).
//! 2. Each woken worker joins the epoch by decrementing the budget under the
//!    mutex (a worker woken in excess of the budget, or spuriously, parks
//!    again without touching the job); every joined worker **and the calling
//!    thread** then claims task indices from a shared atomic cursor
//!    (`fetch_add`) until the cursor passes the task count, and runs the job
//!    closure on each index it won.
//! 3. Each joined worker then decrements `running`; the caller blocks until
//!    `running == 0` before returning. This quiescence barrier is what makes
//!    the lifetime erasure below sound: no worker can touch the job closure
//!    (which borrows the caller's stack) after `run` returns, and an unwind
//!    guard enforces the same if the caller's own task panics.
//!
//! Worker panics are caught per job, forwarded to the caller after the
//! barrier, and leave the pool usable.
//!
//! ## Resident sessions (round programs)
//!
//! The epoch/condvar hand-off above costs tens of microseconds per dispatch
//! on a busy host — negligible for one big map, dominant for a schedule of
//! hundreds of sub-millisecond rounds (the regime the paper's tournament
//! schedules live in). [`WorkerPool::run_program`] removes that per-round
//! constant: it wakes every worker **once**, runs the whole multi-round
//! program with the workers *resident*, and only then lets them park again.
//!
//! Inside a session, a dispatch from the owning thread (any
//! [`WorkerPool::run`] call it makes — the engine's round primitives need no
//! changes) becomes a *phase*: the owner publishes the task list and bumps a
//! phase word (phase counter packed with the phase's participant count, so a
//! worker's decision to join a phase is atomic with observing it — see
//! [`PHASE_SHIFT`]); resident workers synchronise on that word with a
//! spin-then-park wait (`GOSSIP_SPIN_US` sets the spin budget; spinning
//! yields the CPU periodically so an oversubscribed host keeps making
//! progress, and a worker that outlives the budget parks on the condvar and
//! is woken by the next phase bump). Between phases the owner thread —
//! executor 0 — performs the program's short sequential work (CSR prefix
//! scans, buffer swaps, metrics folds, active-set unions) while the workers
//! wait at the barrier. The per-phase quiescence wait (`remaining == 0`)
//! plays the same lifetime-erasure-soundness role as `running == 0` does for
//! plain jobs.
//!
//! Phases keep the exact task semantics of plain dispatches — same task
//! indices, same cursor-claimed assignment, same per-phase barrier — so a
//! program's results are **bit-identical** to the equivalent loop of single
//! dispatches (pinned by `tests/program.rs`); only the hand-off cost changes.
//!
//! ## Determinism argument
//!
//! The pool influences only *which thread* executes a task, never *what* the
//! task computes: [`crate::par::for_chunks`] assigns chunk `i` of the input to
//! task `i`, every task writes its result into slot `i`, and the caller folds
//! the slots in index order after the barrier. Which executor won which index
//! — and the pool's size — is therefore invisible in the results, preserving
//! the engine's bit-identical-at-any-thread-count contract (pinned by
//! `tests/determinism.rs`).
//!
//! ## The one `unsafe`
//!
//! The job closure borrows the caller's stack (the chunk and slot tables of a
//! `for_chunks` call), but worker threads are `'static`, so the pool stores
//! the closure as a lifetime-erased raw pointer (`TaskPtr`). The quiescence
//! barrier above (plus its unwind guard) guarantees the pointee outlives every
//! dereference — per job for plain dispatches, per phase for resident ones.
//! This is the standard scoped-pool construction (rayon's `scope` does the
//! same) and is the only unsafe code in the crate; the rest of the crate
//! stays `deny(unsafe_code)`-clean.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, ignoring poison: the pool forwards worker panics itself
/// (after the quiescence barrier), so a poisoned lock carries no extra
/// information and must not wedge the pool for subsequent jobs.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A per-thread token distinguishing live threads: the address of a
/// thread-local, which is unique among concurrently running threads and never
/// zero. Used to recognise the resident-session owner in
/// [`WorkerPool::run`]'s fast path without taking any lock.
fn thread_token() -> usize {
    thread_local! {
        static TOKEN: u8 = const { 0 };
    }
    TOKEN.with(|t| t as *const u8 as usize)
}

/// Default spin budget of the resident phase barrier, in microseconds,
/// read from `GOSSIP_SPIN_US` (clamped to `[0, 100_000]`; `0` parks
/// immediately — the pure condvar fallback the CI matrix exercises).
///
/// Without an explicit setting the budget is 100 µs, **provided** `threads`
/// executors actually fit the host's cores: an oversubscribed pool (more
/// executors than cores — a CI container, a 1-core box running the 8-thread
/// matrix) gets `0`, because a spinning waiter then steals the very core its
/// peer needs to reach the barrier, turning each phase hand-off into a full
/// scheduler quantum. The env var always wins over the heuristic, so the
/// spin paths stay testable anywhere.
pub fn spin_us_from_env(threads: usize) -> u64 {
    if let Some(v) = std::env::var("GOSSIP_SPIN_US")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        return v.min(100_000);
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if threads > cores {
        0
    } else {
        100
    }
}

/// Lifetime-erased pointer to a caller-owned `dyn Fn(usize) + Sync` job
/// closure. Safety: only dereferenced by executors between job publication
/// and the quiescence barrier of the same [`WorkerPool::run`] call (or
/// resident phase), during which the pointee is borrowed by the caller frame.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync + 'static));

impl TaskPtr {
    /// Erases the closure's borrow of the caller's stack.
    ///
    /// # Safety
    ///
    /// The caller must not let any dereference of the returned pointer
    /// outlive `'a` — in the pool, the quiescence barrier of the `run` call
    /// (or resident phase) that published the job enforces this.
    unsafe fn erase<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> TaskPtr {
        let short: *const (dyn Fn(usize) + Sync + 'a) = task;
        // SAFETY: identical layout; only the lifetime bound changes.
        TaskPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + 'a),
                *const (dyn Fn(usize) + Sync + 'static),
            >(short)
        })
    }
}

// SAFETY: the pointee is `Sync` (shared references may cross threads), and
// the quiescence barrier bounds every dereference within the lifetime of the
// `run` call that published it.
unsafe impl Send for TaskPtr {}

/// A published task batch: the erased closure and how many task indices it
/// has.
#[derive(Clone, Copy)]
struct BatchJob {
    task: TaskPtr,
    tasks: usize,
}

/// The job currently published to the workers.
#[derive(Clone, Copy)]
enum Job {
    /// A one-shot task batch (a plain [`WorkerPool::run`]).
    Batch(BatchJob),
    /// A resident session: joining workers enter the phase loop and stay
    /// there until the session ends.
    Resident,
}

/// State shared between the caller and the workers, guarded by one mutex.
struct PoolState {
    /// Increments once per published job; workers use it to tell a fresh job
    /// from the one they just finished.
    epoch: u64,
    /// The published job, present from publication until the caller's
    /// quiescence barrier clears it.
    job: Option<Job>,
    /// Workers still allowed to join the current epoch. Initialised to
    /// `min(workers, tasks − 1)` so that a small map on a large shared pool
    /// does not wake — or wait for — more workers than it has tasks for;
    /// a worker may only touch the job after decrementing this under the
    /// mutex.
    join_budget: usize,
    /// Joined workers that have not finished the current epoch; the caller
    /// returns from [`WorkerPool::run`] only once this reaches zero (at which
    /// point the whole join budget has been consumed and retired).
    running: usize,
    /// Set when any executor's task panicked during the current job.
    panicked: bool,
    /// Tells the workers to exit; set once, by [`WorkerPool`]'s `Drop`.
    shutdown: bool,
}

/// Bit split of [`ResidentState::phase`]: phase counter in the high bits,
/// that phase's participant count in the low [`PHASE_SHIFT`] bits (a pool has
/// at most 255 workers, so 16 bits are ample; 48 phase bits outlast any
/// session). Packing them into **one** atomic is what makes a worker's
/// participation decision atomic with its phase observation: a lagging worker
/// that sat out phase N and only wakes after phase N+1 is published reads the
/// *pair* (N+1, participants(N+1)) — it can never combine phase N's wake-up
/// with phase N+1's participant count, which would let it execute a phase
/// twice (and underflow `remaining`, breaking the quiescence barrier the
/// lifetime-erasure safety argument rests on).
const PHASE_SHIFT: u32 = 16;

/// Phase-counter half of a packed [`ResidentState::phase`] word.
fn phase_of(packed: u64) -> u64 {
    packed >> PHASE_SHIFT
}

/// Participant-count half of a packed [`ResidentState::phase`] word.
fn participants_of(packed: u64) -> usize {
    (packed & ((1 << PHASE_SHIFT) - 1)) as usize
}

/// The lock-free side of a resident session (see the module docs): the phase
/// word the workers synchronise on and the cell the owner publishes each
/// phase's job through.
struct ResidentState {
    /// Thread token of the session owner ([`thread_token`]); `0` = no
    /// session. Read by [`WorkerPool::run`]'s fast path to route the owner's
    /// dispatches through the phase barrier.
    owner: AtomicUsize,
    /// Whether the session is live; a resident worker observing a phase bump
    /// with `active == false` leaves the phase loop.
    active: AtomicBool,
    /// Packed phase word (see [`PHASE_SHIFT`]): publication counter in the
    /// high bits, the phase's participant count (the id-prefix
    /// `0..participants` of the workers) in the low bits. Reset to 0 at
    /// session start; written only by the owner, whose `SeqCst` store is the
    /// release point of the phase's job. Non-participants of a phase never
    /// read the job cell — that is what makes rewriting it next phase sound
    /// while they are still catching up on this word.
    phase: AtomicU64,
    /// The current phase's job. Written by the owner strictly before the
    /// `phase` store and read by participating workers strictly after
    /// observing that store, so the release/acquire pair on `phase` orders
    /// every access (no lock needed).
    job: UnsafeCell<Option<BatchJob>>,
    /// Participants that have not yet finished the current phase; the owner
    /// waits for 0 before returning from the dispatch (the per-phase
    /// quiescence barrier of the lifetime-erasure argument).
    remaining: AtomicUsize,
    /// Resident workers currently parked on `start` (their spin budget ran
    /// out). The owner notifies the condvar after a bump only when this is
    /// non-zero, so an actively spinning session never touches the lock.
    sleepers: AtomicUsize,
    /// Any participant's task panicked during the current phase; drained by
    /// the owner after the phase quiesces.
    panicked: AtomicBool,
}

// SAFETY: the `job` cell is the only non-atomic field. The owner writes it
// before the `SeqCst`/release `phase` store; a worker reads it only when the
// packed word it acquire-loaded names that phase *and* lists the worker as a
// participant (phase and participant count travel in one word, so the pair
// is always consistent), and the owner rewrites the cell only after
// `remaining` reached 0 (release decrements, acquire read) — so every access
// pair is ordered by a happens-before edge and no two accesses race.
unsafe impl Sync for ResidentState {}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown); resident workers
    /// whose spin budget ran out also park here between phases.
    start: Condvar,
    /// The caller waits here for `running == 0`.
    done: Condvar,
    /// Next unclaimed task index of the current job or phase.
    cursor: AtomicUsize,
    /// Resident-session state (see the module docs).
    resident: ResidentState,
    /// Spin budget of the resident phase barrier before a worker parks (and
    /// of the owner's phase-quiescence wait before it falls back to pure
    /// yielding). Never affects results, only the latency/CPU trade.
    spin: Duration,
    /// Cumulative full dispatches: epoch-published jobs and resident-session
    /// starts — each one a complete wake/quiesce hand-off. Resident *phases*
    /// deliberately do not count: not paying this hand-off per round is the
    /// point of a session.
    dispatches: AtomicU64,
    /// Cumulative worker wake-ups: condvar notifications issued by job and
    /// session publication, plus resident sleepers woken by a phase bump.
    wakeups: AtomicU64,
}

/// Scheduling counters of a [`WorkerPool`] — see [`WorkerPool::stats`].
///
/// These measure dispatch overhead, not communication: they are wall-clock
/// observability (how many full hand-offs and wake-ups the pool paid), not
/// part of any algorithm's trajectory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Full dispatch hand-offs: one per non-inline [`WorkerPool::run`]
    /// outside a session, plus one per [`WorkerPool::run_program`] session.
    pub dispatches: u64,
    /// Workers woken: `workers` per full dispatch, plus parked resident
    /// workers woken by phase bumps (best-effort count).
    pub wakeups: u64,
}

/// A persistent pool of worker threads executing deterministic chunk maps.
///
/// Construct one per [`Engine`](crate::Engine) (done automatically), or share
/// one across engines via [`EngineConfig`](crate::EngineConfig)`::pool` /
/// [`Engine::pool`](crate::Engine::pool) — a pool is only ever *scheduling*
/// state, so sharing it cannot couple two engines' results (see the module
/// docs' determinism argument).
///
/// Dropping the pool (its last `Arc`, in engine use) shuts the workers down
/// and joins them.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serialises [`WorkerPool::run`] calls from different user threads.
    gate: Mutex<()>,
}

impl WorkerPool {
    /// Creates a pool with `threads` executors: the calling thread plus
    /// `threads - 1` spawned workers (clamped to `[1, 256]`), with the
    /// resident-barrier spin budget taken from `GOSSIP_SPIN_US`
    /// ([`spin_us_from_env`]: 100 µs when the executors fit the host's
    /// cores, `0` when oversubscribed).
    ///
    /// `WorkerPool::new(1)` spawns nothing and makes [`run`](Self::run)
    /// purely inline — the engine's configuration for small networks.
    /// If the OS refuses a thread, the pool degrades to the workers it got
    /// (results are unaffected; only wall-clock time changes).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::with_spin(threads, spin_us_from_env(threads))
    }

    /// [`WorkerPool::new`] with an explicit resident-barrier spin budget in
    /// microseconds (`0` = park immediately, the pure condvar fallback).
    /// The budget never affects results, only the latency/CPU trade of
    /// [`WorkerPool::run_program`] phases.
    pub fn with_spin(threads: usize, spin_us: u64) -> WorkerPool {
        let threads = threads.clamp(1, 256);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                join_budget: 0,
                running: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            resident: ResidentState {
                owner: AtomicUsize::new(0),
                active: AtomicBool::new(false),
                phase: AtomicU64::new(0),
                job: UnsafeCell::new(None),
                remaining: AtomicUsize::new(0),
                sleepers: AtomicUsize::new(0),
                panicked: AtomicBool::new(false),
            },
            spin: Duration::from_micros(spin_us.min(100_000)),
            dispatches: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        });
        let handles = (1..threads)
            .map_while(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gossip-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i - 1))
                    .ok()
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            gate: Mutex::new(()),
        }
    }

    /// Number of executors, counting the calling thread: spawned workers + 1.
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Cumulative scheduling counters (monotone over the pool's lifetime):
    /// how many full dispatch hand-offs the pool performed and how many
    /// worker wake-ups it issued. With a shared pool the counts cover every
    /// sharer. [`Engine::metrics`](crate::Engine::metrics) surfaces the
    /// deltas as `pool_dispatches` / `worker_wakeups`.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            dispatches: self.shared.dispatches.load(Ordering::Relaxed),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
        }
    }

    /// Executes `task(0), task(1), …, task(tasks - 1)`, each exactly once,
    /// distributed over the pool's workers and the calling thread, and blocks
    /// until all of them finished.
    ///
    /// Task-to-thread assignment is first-come-first-served and **not**
    /// deterministic; callers that need deterministic results must make each
    /// task's effect a pure function of its index (the contract
    /// [`crate::par::for_chunks`] builds on top of this).
    ///
    /// Calls from different threads serialise on an internal gate. Do not
    /// call `run` from inside a task closure — the nested call would deadlock
    /// on that gate. From inside a [`WorkerPool::run_program`] session (on
    /// the session's thread), `run` dispatches as a resident phase instead of
    /// a full hand-off — same results, a fraction of the cost.
    ///
    /// # Panics
    ///
    /// If any task panics, `run` panics after all executors quiesced; the
    /// pool itself remains usable.
    pub fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() || tasks == 1 {
            // Inline fast path: nothing to hand off. Panics propagate as-is.
            for i in 0..tasks {
                task(i);
            }
            return;
        }
        if self.shared.resident.owner.load(Ordering::Relaxed) == thread_token() {
            // This thread owns the live resident session: dispatch as a
            // phase. (Only the owner thread can ever observe its own token
            // here, so the relaxed load is enough.)
            return self.dispatch_resident(tasks, task);
        }
        let _dispatch = lock(&self.gate);

        // SAFETY (lifetime erasure): the quiescence barrier below, also
        // enforced on unwind, keeps every dereference within this call,
        // while `task` is borrowed.
        let erased = unsafe { TaskPtr::erase(task) };
        // Never involve more workers than there are tasks beyond the
        // caller's own: a 2-chunk map on an 8-executor shared pool wakes and
        // waits for 1 worker, not 7. (Any worker woken in excess of the
        // budget — or spuriously — re-checks the join predicate under the
        // mutex and goes back to sleep without touching the job.)
        let workers = self.handles.len().min(tasks - 1);
        {
            let mut st = lock(&self.shared.state);
            debug_assert!(st.job.is_none(), "pool gate failed to serialise jobs");
            st.epoch += 1;
            st.join_budget = workers;
            st.running = workers;
            st.panicked = false;
            self.shared.cursor.store(0, Ordering::Relaxed);
            st.job = Some(Job::Batch(BatchJob {
                task: erased,
                tasks,
            }));
        }
        // Wake the workers *after* releasing the state mutex: a worker woken
        // here immediately re-acquires that mutex to join the epoch, so
        // notifying from inside the critical section would hand it a lock
        // the notifier still holds. (The job is already published; a worker
        // that races ahead via a spurious wake finds it without the notify.)
        for _ in 0..workers {
            self.shared.start.notify_one();
        }
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        self.shared
            .wakeups
            .fetch_add(workers as u64, Ordering::Relaxed);

        /// Blocks until every worker finished the current job, then retires
        /// it. Running this in `Drop` keeps the barrier in place even when
        /// the caller's own task panics below.
        struct Quiesce<'p>(&'p Shared);
        impl Drop for Quiesce<'_> {
            fn drop(&mut self) {
                let mut st = lock(&self.0.state);
                while st.running > 0 {
                    st = self
                        .0
                        .done
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                st.job = None;
            }
        }
        let barrier = Quiesce(&self.shared);

        // The caller is executor 0: claim tasks like any worker.
        loop {
            let i = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            task(i);
        }
        drop(barrier);

        if std::mem::replace(&mut lock(&self.shared.state).panicked, false) {
            panic!("gossip worker thread panicked");
        }
    }

    /// Runs `program` as a **resident session**: every worker is woken once,
    /// stays at the phase barrier for the whole call, and parks again only
    /// when `program` returns. Any [`WorkerPool::run`] this thread makes
    /// inside `program` — directly or through engine round primitives —
    /// executes as a phase of the session instead of a full hand-off.
    ///
    /// Results are bit-identical to calling `program` without the session
    /// (phases keep the exact task semantics of plain dispatches); only the
    /// per-dispatch cost changes. Nested `run_program` calls on the same
    /// pool from the session thread are no-ops (the program just runs inside
    /// the existing session), so fused helpers compose freely.
    ///
    /// Calls from different threads serialise on the same gate as
    /// [`WorkerPool::run`]: a second thread blocks until the session ends.
    ///
    /// # Panics
    ///
    /// Worker panics inside a phase are forwarded by that phase's dispatch;
    /// a panic unwinding out of `program` ends the session cleanly (workers
    /// park, the pool remains usable) and continues unwinding.
    pub fn run_program<R>(&self, program: impl FnOnce() -> R) -> R {
        if self.handles.is_empty() {
            // No workers: every dispatch is inline anyway, there is nothing
            // to keep resident.
            return program();
        }
        let token = thread_token();
        if self.shared.resident.owner.load(Ordering::Relaxed) == token {
            // Re-entrant: already inside this pool's session on this thread.
            return program();
        }
        let _dispatch = lock(&self.gate);
        let workers = self.handles.len();
        {
            let mut st = lock(&self.shared.state);
            debug_assert!(st.job.is_none(), "pool gate failed to serialise jobs");
            st.epoch += 1;
            st.join_budget = workers;
            st.running = workers;
            st.panicked = false;
            st.job = Some(Job::Resident);
            let r = &self.shared.resident;
            r.phase.store(0, Ordering::Relaxed);
            r.remaining.store(0, Ordering::Relaxed);
            r.panicked.store(false, Ordering::Relaxed);
            r.active.store(true, Ordering::SeqCst);
            r.owner.store(token, Ordering::Relaxed);
        }
        // One wake-up for the whole program (outside the critical section,
        // as in `run`) — this is the dispatch cost the session amortises
        // over every round inside it.
        for _ in 0..workers {
            self.shared.start.notify_one();
        }
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        self.shared
            .wakeups
            .fetch_add(workers as u64, Ordering::Relaxed);

        /// Ends the session (in `Drop`, so a panic unwinding out of the
        /// program closes it too): revokes the owner token, publishes the
        /// end-of-session phase bump, and waits for every resident worker to
        /// leave the phase loop and retire the epoch.
        struct EndSession<'p>(&'p Shared);
        impl Drop for EndSession<'_> {
            fn drop(&mut self) {
                let r = &self.0.resident;
                r.owner.store(0, Ordering::Relaxed);
                r.active.store(false, Ordering::SeqCst);
                // Bump only the phase half of the packed word; the stale
                // participant bits are harmless because workers check
                // `active` (ordered before this bump) before consulting
                // them.
                r.phase.fetch_add(1 << PHASE_SHIFT, Ordering::SeqCst);
                if r.sleepers.load(Ordering::SeqCst) > 0 {
                    drop(lock(&self.0.state));
                    self.0.start.notify_all();
                }
                let mut st = lock(&self.0.state);
                while st.running > 0 {
                    st = self
                        .0
                        .done
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                st.job = None;
                r.panicked.store(false, Ordering::Relaxed);
                // SAFETY: all workers left the phase loop (`running == 0`),
                // so nothing concurrently reads the cell.
                unsafe {
                    *r.job.get() = None;
                }
            }
        }
        let session = EndSession(&self.shared);
        let result = program();
        drop(session);
        result
    }

    /// Dispatches one phase of the live resident session (see the module
    /// docs): publish the job, bump the phase counter, claim tasks alongside
    /// the workers, and wait for the phase to quiesce.
    fn dispatch_resident(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        let shared = &self.shared;
        let r = &shared.resident;
        // SAFETY (lifetime erasure): the phase-quiescence barrier below,
        // also enforced on unwind, keeps every dereference within this call,
        // while `task` is borrowed.
        let erased = unsafe { TaskPtr::erase(task) };
        // Same involvement rule as `run`: a 2-task phase on an 8-worker pool
        // involves 1 worker. Non-participants skip the phase without reading
        // the job cell (which is what makes rewriting it next phase sound
        // even while they still catch up on the phase word).
        let participants = self.handles.len().min(tasks - 1);
        // SAFETY: a worker reads the cell only after its acquire load of the
        // packed phase word returns this phase *with* a participant count
        // covering its id — the decision travels in one word with the phase,
        // so a lagging worker can never act on a stale pairing. Every
        // participant of the previous phase decremented `remaining` (and the
        // owner saw 0) before this call, so no reader of the old value
        // remains.
        unsafe {
            *r.job.get() = Some(BatchJob {
                task: erased,
                tasks,
            });
        }
        r.remaining.store(participants, Ordering::Relaxed);
        shared.cursor.store(0, Ordering::Relaxed);
        // Publish phase and participant count as one packed word. Only the
        // owner writes `phase`, so load-then-store does not race.
        let next = phase_of(r.phase.load(Ordering::Relaxed)) + 1;
        r.phase
            .store(next << PHASE_SHIFT | participants as u64, Ordering::SeqCst);
        // Wake parked workers, if any. The `SeqCst` store above and the
        // `SeqCst` sleeper registration in `wait_for_phase` order each other:
        // either the worker's re-check sees the new phase, or this load sees
        // the sleeper and notifies. The empty lock/unlock serialises with a
        // worker that checked the phase under the mutex but has not yet
        // entered `wait`.
        let sleepers = r.sleepers.load(Ordering::SeqCst);
        if sleepers > 0 {
            drop(lock(&shared.state));
            shared.start.notify_all();
            shared.wakeups.fetch_add(sleepers as u64, Ordering::Relaxed);
        }

        /// Waits until every participant retired the phase — the per-phase
        /// quiescence barrier, enforced on unwind like `run`'s.
        struct PhaseQuiesce<'p>(&'p Shared);
        impl Drop for PhaseQuiesce<'_> {
            fn drop(&mut self) {
                let r = &self.0.resident;
                let deadline = Instant::now() + self.0.spin;
                loop {
                    if r.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    if Instant::now() < deadline {
                        for _ in 0..64 {
                            std::hint::spin_loop();
                        }
                    } else {
                        // Owner never parks between phases (workers finish
                        // in bounded time); yielding keeps an oversubscribed
                        // host making progress.
                        std::thread::yield_now();
                    }
                }
            }
        }
        let barrier = PhaseQuiesce(shared);

        // The owner is executor 0: claim tasks like any participant.
        loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            task(i);
        }
        drop(barrier);

        if r.panicked.swap(false, Ordering::Relaxed) {
            panic!("gossip worker thread panicked");
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker side of the barrier protocol (see the module docs). `id` is the
/// worker's stable index (`0..workers`), used for resident-phase
/// participation.
fn worker_loop(shared: &Shared, id: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    // Join the epoch only while its budget lasts; a worker
                    // woken in excess of the budget (or spuriously) sleeps
                    // again without ever touching the job.
                    Some(job) if st.epoch != seen_epoch && st.join_budget > 0 => {
                        seen_epoch = st.epoch;
                        st.join_budget -= 1;
                        break job;
                    }
                    _ => {
                        st = shared
                            .start
                            .wait(st)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                }
            }
        };
        let failed = match job {
            Job::Batch(job) => {
                // SAFETY: the job was published by a `run` call that cannot
                // return (or unwind) before this worker decrements `running`
                // below, so the pointee — the caller's closure — is alive for
                // the whole dereference.
                let task: &(dyn Fn(usize) + Sync) = unsafe { &*job.task.0 };
                catch_unwind(AssertUnwindSafe(|| loop {
                    let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= job.tasks {
                        break;
                    }
                    task(i);
                }))
                .is_err()
            }
            Job::Resident => {
                // Stay at the phase barrier until the session ends. Phase
                // panics are tracked per phase (`resident.panicked`) and
                // forwarded by the owner's dispatch, not via `st.panicked`.
                resident_phase_loop(shared, id);
                false
            }
        };
        let mut st = lock(&shared.state);
        if failed {
            st.panicked = true;
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// Waits (spin, then yield, then park on `start`) until the resident phase
/// counter moves past `seen` (a phase number, not a packed word), and returns
/// the new **packed** phase word — phase and participant count observed as
/// one consistent pair. Returns `None` if the pool shuts down while the
/// counter is unchanged, so the caller leaves the phase loop instead of
/// spinning on a dead session.
fn wait_for_phase(shared: &Shared, seen: u64) -> Option<u64> {
    let r = &shared.resident;
    // Spin-then-yield within the budget. The periodic yield matters on an
    // oversubscribed host: the owner (or another worker) needs the core to
    // make the progress this worker is waiting for.
    if !shared.spin.is_zero() {
        let deadline = Instant::now() + shared.spin;
        loop {
            let p = r.phase.load(Ordering::Acquire);
            if phase_of(p) != seen {
                return Some(p);
            }
            for _ in 0..64 {
                std::hint::spin_loop();
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
    }
    // Park: register as a sleeper, re-check, then wait on `start`. The
    // `SeqCst` registration pairs with the owner's `SeqCst` store-then-read:
    // either the re-check sees the new phase, or the owner sees the sleeper
    // and notifies (serialised by its empty lock/unlock of `state`, so the
    // notify cannot fall between the predicate check below and the wait).
    loop {
        let p = r.phase.load(Ordering::SeqCst);
        if phase_of(p) != seen {
            return Some(p);
        }
        r.sleepers.fetch_add(1, Ordering::SeqCst);
        if phase_of(r.phase.load(Ordering::SeqCst)) != seen {
            r.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let shutdown = {
            let mut st = lock(&shared.state);
            while phase_of(r.phase.load(Ordering::SeqCst)) == seen && !st.shutdown {
                st = shared
                    .start
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            st.shutdown
        };
        r.sleepers.fetch_sub(1, Ordering::SeqCst);
        if shutdown && phase_of(r.phase.load(Ordering::SeqCst)) == seen {
            // Shutdown with no phase movement: the session can never
            // progress — exit rather than re-registering forever.
            return None;
        }
    }
}

/// The resident worker's phase loop: wait for each phase bump, run the
/// phase's tasks if participating, retire the phase; leave when the session
/// ends. Sessions start with `phase == 0`, so `seen` tracks the phase numbers
/// this worker has handled. A worker that sat a phase out may lag and observe
/// a *later* phase next — safe, because the owner cannot retire a phase (and
/// publish the next) until every listed participant checked in, so a phase
/// this worker participates in can never be skipped over, and the packed word
/// always pairs the observed phase with *its own* participant count.
fn resident_phase_loop(shared: &Shared, id: usize) {
    let r = &shared.resident;
    let mut seen = 0u64;
    loop {
        let Some(packed) = wait_for_phase(shared, seen) else {
            // Pool shutdown mid-session (not reachable through the engine's
            // lifetimes, but the loop must not outlive the pool if that ever
            // changes).
            return;
        };
        seen = phase_of(packed);
        if !r.active.load(Ordering::SeqCst) {
            return;
        }
        if id >= participants_of(packed) {
            // Sat out: this phase has fewer tasks than the pool has workers.
            // Never touches `job` or `remaining`, so the owner does not wait
            // for this worker — which is why it may lag into a later phase.
            continue;
        }
        // SAFETY: the acquire-ordered observation of the packed word in
        // `wait_for_phase` happens-after the owner's job publication for
        // exactly this phase (participation was decided from the same word,
        // so this cannot be a stale pairing), and the owner cannot rewrite
        // the cell (or return from its dispatch) before this participant
        // decrements `remaining` below.
        let job = unsafe { (*r.job.get()).expect("resident phase published without a job") };
        let task: &(dyn Fn(usize) + Sync) = unsafe { &*job.task.0 };
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= job.tasks {
                break;
            }
            task(i);
        }));
        if outcome.is_err() {
            r.panicked.store(true, Ordering::Relaxed);
        }
        r.remaining.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        for tasks in [0usize, 1, 2, 3, 4, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(tasks, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "task {i} ({tasks} tasks)");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for round in 0..500u64 {
            pool.run(5, &|i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        // Σ_round (5·round + 0+1+2+3+4)
        let expected: u64 = (0..500).map(|r| 5 * r + 10).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        pool.run(4, &|_| assert_eq!(std::thread::current().id(), caller));
    }

    #[test]
    fn more_tasks_than_threads_and_vice_versa() {
        for (threads, tasks) in [(2, 100), (8, 3), (16, 16)] {
            let pool = WorkerPool::new(threads);
            let sum = AtomicU64::new(0);
            pool.run(tasks, &|i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                (tasks as u64) * (tasks as u64 + 1) / 2
            );
        }
    }

    #[test]
    fn small_jobs_on_a_big_pool_complete_repeatedly() {
        // Exercises the join budget: 2-task jobs on a 16-executor pool leave
        // 14 workers parked per job, across many back-to-back epochs (so
        // workers alternate between joining and sitting epochs out).
        let pool = WorkerPool::new(16);
        let total = AtomicU64::new(0);
        for round in 0..300u64 {
            let tasks = 2 + (round % 3) as usize; // 2, 3, 4 tasks
            pool.run(tasks, &|i| {
                total.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        let expected: u64 = (0..300u64)
            .map(|r| {
                let t = 2 + r % 3;
                t * (t + 1) / 2
            })
            .sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn worker_panic_is_forwarded_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
            });
        }));
        assert!(attempt.is_err(), "panic was swallowed");
        // The pool still works after a panicked job.
        let ok = AtomicUsize::new(0);
        pool.run(8, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn drop_joins_workers_without_hanging() {
        for _ in 0..20 {
            let pool = WorkerPool::new(4);
            pool.run(4, &|_| {});
            drop(pool); // must not hang or leak
        }
    }

    #[test]
    fn tasks_can_borrow_the_callers_stack() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let partial: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.run(4, &|i| {
            let chunk = &data[i * 250..(i + 1) * 250];
            partial[i].store(chunk.iter().sum(), Ordering::Relaxed);
        });
        let total: u64 = partial.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    // --- resident sessions -------------------------------------------------

    /// Phase dispatches inside a program execute every task exactly once —
    /// at both ends of the spin spectrum (0 = park immediately, large =
    /// never park within a phase gap).
    #[test]
    fn program_phases_execute_every_task_exactly_once() {
        for spin_us in [0u64, 5_000] {
            let pool = WorkerPool::with_spin(4, spin_us);
            let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
            pool.run_program(|| {
                for _ in 0..16 {
                    pool.run(4, &|i| {
                        for h in &hits[i * 16..(i + 1) * 16] {
                            h.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(
                    hit.load(Ordering::Relaxed),
                    16,
                    "slot {i} (spin {spin_us}µs)"
                );
            }
        }
    }

    #[test]
    fn program_matches_looped_dispatches() {
        // The same job sequence, fused and looped, must produce identical
        // results (the task effects are pure functions of the index).
        let run_once = |fused: bool| -> Vec<u64> {
            let pool = WorkerPool::with_spin(4, 50);
            let cells: Vec<AtomicU64> = (0..128).map(|_| AtomicU64::new(0)).collect();
            let body = |round: u64| {
                pool.run(8, &|i| {
                    for c in &cells[i * 16..(i + 1) * 16] {
                        let old = c.load(Ordering::Relaxed);
                        c.store(old.rotate_left(5) ^ (round + i as u64), Ordering::Relaxed);
                    }
                });
            };
            if fused {
                pool.run_program(|| {
                    for round in 0..50 {
                        body(round);
                    }
                });
            } else {
                for round in 0..50 {
                    body(round);
                }
            }
            cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
        };
        assert_eq!(run_once(true), run_once(false));
    }

    #[test]
    fn program_counts_one_dispatch_for_many_phases() {
        let pool = WorkerPool::new(4);
        let before = pool.stats();
        pool.run_program(|| {
            for _ in 0..32 {
                pool.run(4, &|_| {});
            }
        });
        let delta = pool.stats().dispatches - before.dispatches;
        assert_eq!(delta, 1, "a fused program is one dispatch, not 32");
        // The same schedule looped pays one dispatch per round.
        let before = pool.stats();
        for _ in 0..32 {
            pool.run(4, &|_| {});
        }
        assert_eq!(pool.stats().dispatches - before.dispatches, 32);
    }

    #[test]
    fn program_is_reentrant_on_the_owner_thread() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        pool.run_program(|| {
            pool.run_program(|| {
                pool.run(6, &|i| {
                    sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 21);
        // The session ended: a fresh plain run still works.
        pool.run(6, &|i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 42);
    }

    #[test]
    fn program_phases_respect_the_participation_prefix() {
        // 2-task phases on an 8-executor pool: 7 workers are resident but
        // only 1 participates per phase; the rest must sit phases out
        // without corrupting anything, across many phases.
        let pool = WorkerPool::new(8);
        let total = AtomicU64::new(0);
        pool.run_program(|| {
            for round in 0..200u64 {
                let tasks = 2 + (round % 3) as usize;
                pool.run(tasks, &|i| {
                    total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                });
            }
        });
        let expected: u64 = (0..200u64)
            .map(|r| {
                let t = 2 + r % 3;
                t * (t + 1) / 2
            })
            .sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    /// Regression for the lagging-non-participant race: a worker that sat
    /// out phase N may only observe the phase word again after phase N+1 is
    /// published. Because phase and participant count travel in one packed
    /// word, it must join N+1 exactly once (never phase N's wake-up paired
    /// with N+1's participant count, which double-ran the phase and
    /// underflowed `remaining`). Alternating minimal and full participation
    /// maximises sat-out→participant transitions; spin 0 parks workers
    /// immediately, making them lag as far as possible.
    #[test]
    fn lagging_nonparticipants_rejoin_exactly_once() {
        for spin_us in [0u64, 5_000] {
            let pool = WorkerPool::with_spin(8, spin_us);
            let total = AtomicU64::new(0);
            pool.run_program(|| {
                for round in 0..400u64 {
                    // 2 tasks (1 participant of 7 workers), then 9 tasks
                    // (all 7) — every worker 1..7 re-joins right after
                    // sitting a phase out.
                    let tasks = if round % 2 == 0 { 2 } else { 9 };
                    pool.run(tasks, &|i| {
                        total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                    });
                }
            });
            let expected: u64 = (0..400u64).map(|r| if r % 2 == 0 { 3 } else { 45 }).sum();
            assert_eq!(total.load(Ordering::Relaxed), expected, "spin {spin_us}µs");
        }
    }

    #[test]
    fn single_task_and_empty_dispatches_inside_a_program_run_inline() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        pool.run_program(|| {
            pool.run(0, &|_| panic!("no tasks, no calls"));
            pool.run(1, &|_| assert_eq!(std::thread::current().id(), caller));
        });
    }

    #[test]
    fn worker_panic_in_a_phase_is_forwarded_and_session_survives() {
        let pool = WorkerPool::new(4);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            pool.run_program(|| {
                pool.run(8, &|i| {
                    if i == 5 {
                        panic!("phase task 5 exploded");
                    }
                });
            });
        }));
        assert!(attempt.is_err(), "phase panic was swallowed");
        // The session unwound cleanly: the pool still works, fused or not.
        let ok = AtomicUsize::new(0);
        pool.run_program(|| {
            pool.run(8, &|_| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        pool.run(8, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn empty_program_is_a_clean_session() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.run_program(|| 7), 7);
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn program_on_a_single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let before = pool.stats();
        let out = pool.run_program(|| {
            let caller = std::thread::current().id();
            pool.run(4, &|_| assert_eq!(std::thread::current().id(), caller));
            11
        });
        assert_eq!(out, 11);
        assert_eq!(pool.stats(), before, "inline work must not count");
    }

    #[test]
    fn programs_from_two_threads_serialise_on_the_gate() {
        let pool = std::sync::Arc::new(WorkerPool::new(4));
        let total = std::sync::Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let pool = std::sync::Arc::clone(&pool);
            let total = std::sync::Arc::clone(&total);
            joins.push(std::thread::spawn(move || {
                pool.run_program(|| {
                    for _ in 0..50 {
                        pool.run(4, &|i| {
                            total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 2 * 50 * 10);
    }

    #[test]
    fn drop_joins_workers_after_sessions() {
        for spin_us in [0u64, 100] {
            let pool = WorkerPool::with_spin(4, spin_us);
            pool.run_program(|| {
                pool.run(4, &|_| {});
            });
            drop(pool); // must not hang or leak
        }
    }

    #[test]
    fn stats_count_wakeups_per_dispatch() {
        let pool = WorkerPool::new(4);
        let before = pool.stats();
        pool.run(4, &|_| {});
        let delta_w = pool.stats().wakeups - before.wakeups;
        assert_eq!(delta_w, 3, "a 4-task job on 4 executors wakes 3 workers");
        // Inline runs cost nothing.
        let before = pool.stats();
        pool.run(1, &|_| {});
        assert_eq!(pool.stats(), before);
    }
}
