//! A persistent worker pool for the engine's per-round chunk maps.
//!
//! PR 1 executed every round as a fork/join over `std::thread::scope`, which
//! re-spawns OS threads for every chunk map — two maps per round, so eight
//! spawns per `pull_round` at four threads. Spawning dominates below ~16k
//! nodes. [`WorkerPool`] replaces that with **long-lived workers** parked on a
//! condition variable; dispatching a round costs two mutex/condvar hand-offs
//! instead of `threads` thread creations.
//!
//! ## Barrier protocol
//!
//! The pool runs one *job* at a time. A job is an epoch-stamped task list:
//!
//! 1. [`WorkerPool::run`] takes the dispatch gate (so concurrent callers —
//!    e.g. two engines sharing one pool from two user threads — serialise),
//!    publishes the job under the state mutex (`epoch += 1`, task cursor
//!    reset, a *join budget* of `min(workers, tasks − 1)`), and wakes that
//!    many workers. The budget keeps a small map on a large shared pool from
//!    waking — or waiting on — workers it has no tasks for; it always drains,
//!    because a worker is either parked (a wake-up reaches it) or mid-loop
//!    (it re-checks the join predicate under the mutex before parking).
//! 2. Each woken worker joins the epoch by decrementing the budget under the
//!    mutex (a worker woken in excess of the budget, or spuriously, parks
//!    again without touching the job); every joined worker **and the calling
//!    thread** then claims task indices from a shared atomic cursor
//!    (`fetch_add`) until the cursor passes the task count, and runs the job
//!    closure on each index it won.
//! 3. Each joined worker then decrements `running`; the caller blocks until
//!    `running == 0` before returning. This quiescence barrier is what makes
//!    the lifetime erasure below sound: no worker can touch the job closure
//!    (which borrows the caller's stack) after `run` returns, and an unwind
//!    guard enforces the same if the caller's own task panics.
//!
//! Worker panics are caught per job, forwarded to the caller after the
//! barrier, and leave the pool usable.
//!
//! ## Determinism argument
//!
//! The pool influences only *which thread* executes a task, never *what* the
//! task computes: [`crate::par::for_chunks`] assigns chunk `i` of the input to
//! task `i`, every task writes its result into slot `i`, and the caller folds
//! the slots in index order after the barrier. Which executor won which index
//! — and the pool's size — is therefore invisible in the results, preserving
//! the engine's bit-identical-at-any-thread-count contract (pinned by
//! `tests/determinism.rs`).
//!
//! ## The one `unsafe`
//!
//! The job closure borrows the caller's stack (the chunk and slot tables of a
//! `for_chunks` call), but worker threads are `'static`, so the pool stores
//! the closure as a lifetime-erased raw pointer (`TaskPtr`). The quiescence
//! barrier above (plus its unwind guard) guarantees the pointee outlives every
//! dereference. This is the standard scoped-pool construction (rayon's
//! `scope` does the same) and is the only unsafe code in the crate; the rest
//! of the crate stays `deny(unsafe_code)`-clean.

#![allow(unsafe_code)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Locks a mutex, ignoring poison: the pool forwards worker panics itself
/// (after the quiescence barrier), so a poisoned lock carries no extra
/// information and must not wedge the pool for subsequent jobs.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Lifetime-erased pointer to a caller-owned `dyn Fn(usize) + Sync` job
/// closure. Safety: only dereferenced by executors between job publication
/// and the quiescence barrier of the same [`WorkerPool::run`] call, during
/// which the pointee is borrowed by `run`'s caller frame.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync + 'static));

impl TaskPtr {
    /// Erases the closure's borrow of the caller's stack.
    ///
    /// # Safety
    ///
    /// The caller must not let any dereference of the returned pointer
    /// outlive `'a` — in the pool, the quiescence barrier of the `run` call
    /// that published the job enforces this.
    unsafe fn erase<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> TaskPtr {
        let short: *const (dyn Fn(usize) + Sync + 'a) = task;
        // SAFETY: identical layout; only the lifetime bound changes.
        TaskPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + 'a),
                *const (dyn Fn(usize) + Sync + 'static),
            >(short)
        })
    }
}

// SAFETY: the pointee is `Sync` (shared references may cross threads), and
// the quiescence barrier bounds every dereference within the lifetime of the
// `run` call that published it.
unsafe impl Send for TaskPtr {}

/// The job currently published to the workers.
#[derive(Clone, Copy)]
struct Job {
    task: TaskPtr,
    tasks: usize,
}

/// State shared between the caller and the workers, guarded by one mutex.
struct PoolState {
    /// Increments once per published job; workers use it to tell a fresh job
    /// from the one they just finished.
    epoch: u64,
    /// The published job, present from publication until the caller's
    /// quiescence barrier clears it.
    job: Option<Job>,
    /// Workers still allowed to join the current epoch. Initialised to
    /// `min(workers, tasks − 1)` so that a small map on a large shared pool
    /// does not wake — or wait for — more workers than it has tasks for;
    /// a worker may only touch the job after decrementing this under the
    /// mutex.
    join_budget: usize,
    /// Joined workers that have not finished the current epoch; the caller
    /// returns from [`WorkerPool::run`] only once this reaches zero (at which
    /// point the whole join budget has been consumed and retired).
    running: usize,
    /// Set when any executor's task panicked during the current job.
    panicked: bool,
    /// Tells the workers to exit; set once, by [`WorkerPool`]'s `Drop`.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    start: Condvar,
    /// The caller waits here for `running == 0`.
    done: Condvar,
    /// Next unclaimed task index of the current job.
    cursor: AtomicUsize,
}

/// A persistent pool of worker threads executing deterministic chunk maps.
///
/// Construct one per [`Engine`](crate::Engine) (done automatically), or share
/// one across engines via [`EngineConfig`](crate::EngineConfig)`::pool` /
/// [`Engine::pool`](crate::Engine::pool) — a pool is only ever *scheduling*
/// state, so sharing it cannot couple two engines' results (see the module
/// docs' determinism argument).
///
/// Dropping the pool (its last `Arc`, in engine use) shuts the workers down
/// and joins them.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serialises [`WorkerPool::run`] calls from different user threads.
    gate: Mutex<()>,
}

impl WorkerPool {
    /// Creates a pool with `threads` executors: the calling thread plus
    /// `threads - 1` spawned workers (clamped to `[1, 256]`).
    ///
    /// `WorkerPool::new(1)` spawns nothing and makes [`run`](Self::run)
    /// purely inline — the engine's configuration for small networks.
    /// If the OS refuses a thread, the pool degrades to the workers it got
    /// (results are unaffected; only wall-clock time changes).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.clamp(1, 256);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                join_budget: 0,
                running: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map_while(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gossip-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            gate: Mutex::new(()),
        }
    }

    /// Number of executors, counting the calling thread: spawned workers + 1.
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes `task(0), task(1), …, task(tasks - 1)`, each exactly once,
    /// distributed over the pool's workers and the calling thread, and blocks
    /// until all of them finished.
    ///
    /// Task-to-thread assignment is first-come-first-served and **not**
    /// deterministic; callers that need deterministic results must make each
    /// task's effect a pure function of its index (the contract
    /// [`crate::par::for_chunks`] builds on top of this).
    ///
    /// Calls from different threads serialise on an internal gate. Do not
    /// call `run` from inside a task closure — the nested call would deadlock
    /// on that gate.
    ///
    /// # Panics
    ///
    /// If any task panics, `run` panics after all executors quiesced; the
    /// pool itself remains usable.
    pub fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() || tasks == 1 {
            // Inline fast path: nothing to hand off. Panics propagate as-is.
            for i in 0..tasks {
                task(i);
            }
            return;
        }
        let _dispatch = lock(&self.gate);

        // SAFETY (lifetime erasure): the quiescence barrier below, also
        // enforced on unwind, keeps every dereference within this call,
        // while `task` is borrowed.
        let erased = unsafe { TaskPtr::erase(task) };
        // Never involve more workers than there are tasks beyond the
        // caller's own: a 2-chunk map on an 8-executor shared pool wakes and
        // waits for 1 worker, not 7. (Any worker woken in excess of the
        // budget — or spuriously — re-checks the join predicate under the
        // mutex and goes back to sleep without touching the job.)
        let workers = self.handles.len().min(tasks - 1);
        {
            let mut st = lock(&self.shared.state);
            debug_assert!(st.job.is_none(), "pool gate failed to serialise jobs");
            st.epoch += 1;
            st.join_budget = workers;
            st.running = workers;
            st.panicked = false;
            self.shared.cursor.store(0, Ordering::Relaxed);
            st.job = Some(Job {
                task: erased,
                tasks,
            });
            for _ in 0..workers {
                self.shared.start.notify_one();
            }
        }

        /// Blocks until every worker finished the current job, then retires
        /// it. Running this in `Drop` keeps the barrier in place even when
        /// the caller's own task panics below.
        struct Quiesce<'p>(&'p Shared);
        impl Drop for Quiesce<'_> {
            fn drop(&mut self) {
                let mut st = lock(&self.0.state);
                while st.running > 0 {
                    st = self
                        .0
                        .done
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                st.job = None;
            }
        }
        let barrier = Quiesce(&self.shared);

        // The caller is executor 0: claim tasks like any worker.
        loop {
            let i = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            task(i);
        }
        drop(barrier);

        if std::mem::replace(&mut lock(&self.shared.state).panicked, false) {
            panic!("gossip worker thread panicked");
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker side of the barrier protocol (see the module docs).
fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    // Join the epoch only while its budget lasts; a worker
                    // woken in excess of the budget (or spuriously) sleeps
                    // again without ever touching the job.
                    Some(job) if st.epoch != seen_epoch && st.join_budget > 0 => {
                        seen_epoch = st.epoch;
                        st.join_budget -= 1;
                        break job;
                    }
                    _ => {
                        st = shared
                            .start
                            .wait(st)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                }
            }
        };
        // SAFETY: the job was published by a `run` call that cannot return
        // (or unwind) before this worker decrements `running` below, so the
        // pointee — the caller's closure — is alive for the whole dereference.
        let task: &(dyn Fn(usize) + Sync) = unsafe { &*job.task.0 };
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= job.tasks {
                break;
            }
            task(i);
        }));
        let mut st = lock(&shared.state);
        if outcome.is_err() {
            st.panicked = true;
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        for tasks in [0usize, 1, 2, 3, 4, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(tasks, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "task {i} ({tasks} tasks)");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for round in 0..500u64 {
            pool.run(5, &|i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        // Σ_round (5·round + 0+1+2+3+4)
        let expected: u64 = (0..500).map(|r| 5 * r + 10).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        pool.run(4, &|_| assert_eq!(std::thread::current().id(), caller));
    }

    #[test]
    fn more_tasks_than_threads_and_vice_versa() {
        for (threads, tasks) in [(2, 100), (8, 3), (16, 16)] {
            let pool = WorkerPool::new(threads);
            let sum = AtomicU64::new(0);
            pool.run(tasks, &|i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                (tasks as u64) * (tasks as u64 + 1) / 2
            );
        }
    }

    #[test]
    fn small_jobs_on_a_big_pool_complete_repeatedly() {
        // Exercises the join budget: 2-task jobs on a 16-executor pool leave
        // 14 workers parked per job, across many back-to-back epochs (so
        // workers alternate between joining and sitting epochs out).
        let pool = WorkerPool::new(16);
        let total = AtomicU64::new(0);
        for round in 0..300u64 {
            let tasks = 2 + (round % 3) as usize; // 2, 3, 4 tasks
            pool.run(tasks, &|i| {
                total.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        let expected: u64 = (0..300u64)
            .map(|r| {
                let t = 2 + r % 3;
                t * (t + 1) / 2
            })
            .sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn worker_panic_is_forwarded_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
            });
        }));
        assert!(attempt.is_err(), "panic was swallowed");
        // The pool still works after a panicked job.
        let ok = AtomicUsize::new(0);
        pool.run(8, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn drop_joins_workers_without_hanging() {
        for _ in 0..20 {
            let pool = WorkerPool::new(4);
            pool.run(4, &|_| {});
            drop(pool); // must not hang or leak
        }
    }

    #[test]
    fn tasks_can_borrow_the_callers_stack() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let partial: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.run(4, &|i| {
            let chunk = &data[i * 250..(i + 1) * 250];
            partial[i].store(chunk.iter().sum(), Ordering::Relaxed);
        });
        let total: u64 = partial.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 1000 * 999 / 2);
    }
}
