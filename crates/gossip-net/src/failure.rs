//! Failure models (Section 5 of the paper).
//!
//! The paper's robustness model: every node `v` in every round `i` is
//! associated with a pre-determined probability `p_{v,i} <= mu < 1`; during
//! round `i` node `v` fails to perform its operation (push or pull) with
//! probability `p_{v,i}`.

use crate::error::{GossipError, Result};
use crate::NodeId;
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// A per-node, per-round transmission failure model.
///
/// A failed node performs nothing in the round in which it fails: its pull
/// returns nothing and its push is not delivered. Failures are sampled
/// independently across nodes and rounds, matching Section 5 of the paper.
#[derive(Clone, Default)]
pub enum FailureModel {
    /// No failures ever occur (the model of Sections 2–4).
    #[default]
    None,
    /// Every node fails in every round with the same probability `p`.
    Uniform(f64),
    /// Node `v` fails with probability `p[v]` in every round.
    PerNode(Arc<Vec<f64>>),
    /// Fully general `p_{v,i}`: a caller-supplied function of node and round.
    ///
    /// This is how an adversary choosing the (pre-determined) probabilities is
    /// simulated in the robustness experiments.
    Schedule(Arc<dyn Fn(NodeId, u64) -> f64 + Send + Sync>),
}

impl FailureModel {
    /// Uniform failure probability `p` for every node in every round.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidProbability`] if `p` is not in `[0, 1)`.
    /// A probability of exactly 1 is rejected because the paper requires
    /// `mu < 1`.
    pub fn uniform(p: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(GossipError::InvalidProbability {
                name: "failure probability",
                value: p,
            });
        }
        if p == 0.0 {
            Ok(FailureModel::None)
        } else {
            Ok(FailureModel::Uniform(p))
        }
    }

    /// Per-node failure probabilities; entry `v` applies to node `v` in every round.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidProbability`] if any entry is not in `[0, 1)`.
    pub fn per_node(probabilities: Vec<f64>) -> Result<Self> {
        for &p in &probabilities {
            if !(0.0..1.0).contains(&p) {
                return Err(GossipError::InvalidProbability {
                    name: "per-node failure probability",
                    value: p,
                });
            }
        }
        Ok(FailureModel::PerNode(Arc::new(probabilities)))
    }

    /// Fully general schedule `p_{v,i}` given as a function of `(node, round)`.
    ///
    /// Values returned by the function are clamped to `[0, 1)`.
    pub fn schedule<F>(f: F) -> Self
    where
        F: Fn(NodeId, u64) -> f64 + Send + Sync + 'static,
    {
        FailureModel::Schedule(Arc::new(f))
    }

    /// The failure probability of node `node` in round `round`.
    pub fn probability(&self, node: NodeId, round: u64) -> f64 {
        match self {
            FailureModel::None => 0.0,
            FailureModel::Uniform(p) => *p,
            FailureModel::PerNode(ps) => ps.get(node).copied().unwrap_or(0.0),
            FailureModel::Schedule(f) => f(node, round).clamp(0.0, 0.999_999_999),
        }
    }

    /// Samples whether node `node` fails its operation in round `round`.
    pub fn fails<R: Rng>(&self, node: NodeId, round: u64, rng: &mut R) -> bool {
        let p = self.probability(node, round);
        if p <= 0.0 {
            false
        } else {
            rng.gen::<f64>() < p
        }
    }

    /// An upper bound `mu` on the failure probability, if one can be computed cheaply.
    ///
    /// Used by the robust algorithms to size their per-iteration pull counts
    /// `Theta(1/(1-mu) * log(1/(1-mu)))`. For [`FailureModel::Schedule`] the
    /// caller must supply `mu` explicitly, so `None` is returned.
    pub fn mu_upper_bound(&self) -> Option<f64> {
        match self {
            FailureModel::None => Some(0.0),
            FailureModel::Uniform(p) => Some(*p),
            FailureModel::PerNode(ps) => Some(ps.iter().copied().fold(0.0, f64::max)),
            FailureModel::Schedule(_) => None,
        }
    }

    /// Whether this model can never produce a failure.
    pub fn is_reliable(&self) -> bool {
        matches!(self, FailureModel::None)
    }

    /// Canonicalises models that can never fire into [`FailureModel::None`].
    ///
    /// [`FailureModel::uniform`] already returns `None` for `p = 0`, but the
    /// enum variants are public, so `FailureModel::Uniform(0.0)` (and an
    /// all-zero [`FailureModel::PerNode`]) can be constructed directly — and
    /// would steer the engine onto its per-node coin path for a probability
    /// that can never fire. The engine normalises its model at construction
    /// so those models take the dedicated no-failure round loops.
    /// [`FailureModel::Schedule`] cannot be inspected and is left as-is.
    pub fn normalized(self) -> Self {
        match &self {
            FailureModel::Uniform(p) if *p <= 0.0 => FailureModel::None,
            FailureModel::PerNode(ps) if ps.iter().all(|&p| p <= 0.0) => FailureModel::None,
            _ => self,
        }
    }
}

impl fmt::Debug for FailureModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureModel::None => write!(f, "FailureModel::None"),
            FailureModel::Uniform(p) => write!(f, "FailureModel::Uniform({p})"),
            FailureModel::PerNode(ps) => {
                write!(
                    f,
                    "FailureModel::PerNode(n={}, mu={:?})",
                    ps.len(),
                    self.mu_upper_bound()
                )
            }
            FailureModel::Schedule(_) => write!(f, "FailureModel::Schedule(<fn>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_rejects_out_of_range() {
        assert!(FailureModel::uniform(-0.1).is_err());
        assert!(FailureModel::uniform(1.0).is_err());
        assert!(FailureModel::uniform(1.5).is_err());
        assert!(FailureModel::uniform(0.0).is_ok());
        assert!(FailureModel::uniform(0.99).is_ok());
    }

    #[test]
    fn uniform_zero_is_reliable() {
        let m = FailureModel::uniform(0.0).unwrap();
        assert!(m.is_reliable());
        assert_eq!(m.mu_upper_bound(), Some(0.0));
    }

    #[test]
    fn normalized_collapses_never_firing_models() {
        assert!(FailureModel::Uniform(0.0).normalized().is_reliable());
        assert!(FailureModel::Uniform(-0.5).normalized().is_reliable());
        assert!(!FailureModel::Uniform(0.1).normalized().is_reliable());
        assert!(FailureModel::PerNode(Arc::new(vec![0.0; 8]))
            .normalized()
            .is_reliable());
        assert!(!FailureModel::per_node(vec![0.0, 0.2])
            .unwrap()
            .normalized()
            .is_reliable());
        // Schedules are opaque and must be preserved even when always-zero.
        let sched = FailureModel::schedule(|_, _| 0.0).normalized();
        assert!(matches!(sched, FailureModel::Schedule(_)));
    }

    #[test]
    fn per_node_validates_and_reports_mu() {
        assert!(FailureModel::per_node(vec![0.1, 1.2]).is_err());
        let m = FailureModel::per_node(vec![0.1, 0.5, 0.3]).unwrap();
        assert_eq!(m.mu_upper_bound(), Some(0.5));
        assert_eq!(m.probability(1, 0), 0.5);
        // Out-of-range nodes never fail.
        assert_eq!(m.probability(17, 0), 0.0);
    }

    #[test]
    fn none_never_fails() {
        let m = FailureModel::None;
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1000).all(|r| !m.fails(0, r, &mut rng)));
    }

    #[test]
    fn uniform_failure_frequency_is_close_to_p() {
        let m = FailureModel::uniform(0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let trials = 20_000;
        let failures = (0..trials).filter(|&r| m.fails(0, r, &mut rng)).count();
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn schedule_uses_node_and_round() {
        let m =
            FailureModel::schedule(|node, round| if node == 0 && round < 5 { 0.9999 } else { 0.0 });
        assert!(m.probability(0, 0) > 0.99);
        assert_eq!(m.probability(1, 0), 0.0);
        assert_eq!(m.probability(0, 5), 0.0);
        assert_eq!(m.mu_upper_bound(), None);
        let mut rng = SmallRng::seed_from_u64(7);
        // With p clamped just below 1, failures are overwhelmingly likely.
        let fails = (0..100).filter(|_| m.fails(0, 0, &mut rng)).count();
        assert!(fails > 90);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", FailureModel::None).is_empty());
        assert!(!format!("{:?}", FailureModel::uniform(0.25).unwrap()).is_empty());
        assert!(!format!("{:?}", FailureModel::per_node(vec![0.1]).unwrap()).is_empty());
        assert!(!format!("{:?}", FailureModel::schedule(|_, _| 0.0)).is_empty());
    }
}
