//! The synchronous uniform-gossip engine.
//!
//! [`Engine`] owns one state per node and advances the network one round at a
//! time. It is deliberately *not* a general message-passing framework: the
//! uniform gossip model of the paper is exactly "each node contacts one
//! uniformly random other node per round", and the engine exposes that and
//! nothing more. All algorithms of the reproduction — the tournament
//! algorithms of Section 2, the exact algorithm of Section 3, the baselines of
//! Appendix A and [KDG03] — are written against this interface, so their round
//! counts are measured identically.
//!
//! Two entry points cover the model:
//!
//! * [`Engine::pull_round`] — every node contacts a uniformly random other
//!   node and reads a message derived from that node's state *at the start of
//!   the round* (synchronous snapshot semantics, as assumed by the paper's
//!   proofs).
//! * [`Engine::push_round`] — every node derives a message from its own state
//!   and delivers it to a uniformly random other node; receivers then fold all
//!   messages delivered to them into their state.
//!
//! Failure injection (Section 5) applies to the *operation of the failing
//! node*: a failed puller receives nothing, a failed pusher delivers nothing.

use crate::error::{GossipError, Result};
use crate::failure::FailureModel;
use crate::message::MessageSize;
use crate::metrics::{Metrics, RoundKind};
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seed of the engine's random stream. Two engines with the same seed,
    /// the same initial states and the same sequence of round calls produce
    /// identical executions.
    pub seed: u64,
    /// The failure model applied to every operation (default: no failures).
    pub failure: FailureModel,
}

impl EngineConfig {
    /// Configuration with the given seed and no failures.
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig { seed, failure: FailureModel::None }
    }

    /// Replaces the failure model.
    pub fn failure(mut self, failure: FailureModel) -> Self {
        self.failure = failure;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::with_seed(0)
    }
}

/// A synchronous uniform-gossip network holding one state of type `S` per node.
///
/// See the [module documentation](self) for the communication semantics.
#[derive(Debug, Clone)]
pub struct Engine<S> {
    states: Vec<S>,
    rng: SmallRng,
    failure: FailureModel,
    metrics: Metrics,
    round: u64,
    // Scratch buffers reused across rounds to avoid per-round allocation at
    // n in the millions.
    scratch_targets: Vec<u32>,
}

impl<S> Engine<S> {
    /// Creates an engine whose node `v` starts with state `states[v]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two states are supplied; use [`Engine::try_from_states`]
    /// for a fallible constructor.
    pub fn from_states(states: Vec<S>, config: EngineConfig) -> Self {
        Engine::try_from_states(states, config).expect("uniform gossip needs at least 2 nodes")
    }

    /// Fallible variant of [`Engine::from_states`].
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::TooFewNodes`] if fewer than two states are supplied.
    pub fn try_from_states(states: Vec<S>, config: EngineConfig) -> Result<Self> {
        if states.len() < 2 {
            return Err(GossipError::TooFewNodes { requested: states.len() });
        }
        Ok(Engine {
            states,
            rng: SmallRng::seed_from_u64(config.seed),
            failure: config.failure,
            metrics: Metrics::new(),
            round: 0,
            scratch_targets: Vec::new(),
        })
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// The states of all nodes, indexed by [`NodeId`].
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable access to the node states.
    ///
    /// Intended for *local* (communication-free) computation steps such as
    /// "every node updates its own value from what it has already received";
    /// using it to read other nodes' states would break the gossip model, so
    /// algorithms in this repository only ever use it via
    /// [`Engine::local_step`].
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Applies a purely local update to every node (no communication, no round
    /// consumed).
    pub fn local_step<F: FnMut(NodeId, &mut S)>(&mut self, mut f: F) {
        for (v, state) in self.states.iter_mut().enumerate() {
            f(v, state);
        }
    }

    /// Communication metrics accumulated so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The failure model in effect.
    pub fn failure_model(&self) -> &FailureModel {
        &self.failure
    }

    /// Borrows the engine's random stream.
    ///
    /// Algorithms use this for their *local* coin flips (e.g. the probability-δ
    /// branch of Algorithm 1) so that a single seed reproduces an entire run.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Samples a uniformly random node other than `exclude`.
    fn random_other_node(rng: &mut SmallRng, n: usize, exclude: NodeId) -> NodeId {
        debug_assert!(n >= 2);
        let t = rng.gen_range(0..n - 1);
        if t >= exclude {
            t + 1
        } else {
            t
        }
    }

    /// One synchronous **pull** round.
    ///
    /// Every node `v` contacts a uniformly random other node `t(v)`. The
    /// message served by `t(v)` is `serve(t(v), &states[t(v)])`, computed from
    /// the snapshot of states at the start of the round. Then
    /// `apply(v, &mut states[v], Some(msg))` is called for every node that
    /// succeeded, and `apply(v, .., None)` for every node whose operation
    /// failed under the failure model.
    ///
    /// Returns the number of nodes whose pull failed.
    pub fn pull_round<M, F, G>(&mut self, mut serve: F, mut apply: G) -> usize
    where
        M: MessageSize,
        F: FnMut(NodeId, &S) -> M,
        G: FnMut(NodeId, &mut S, Option<M>),
    {
        let n = self.n();
        self.metrics.record_round(RoundKind::Pull);
        self.round += 1;

        // Phase 1: choose contacts and record failures against the snapshot.
        self.scratch_targets.clear();
        self.scratch_targets.reserve(n);
        let mut failed = 0usize;
        for v in 0..n {
            self.metrics.record_attempt(RoundKind::Pull);
            if self.failure.fails(v, self.round, &mut self.rng) {
                self.metrics.record_failure();
                failed += 1;
                self.scratch_targets.push(u32::MAX);
            } else {
                let t = Self::random_other_node(&mut self.rng, n, v);
                self.scratch_targets.push(t as u32);
            }
        }

        // Phase 2: serve messages from the snapshot, then apply.
        // `serve` only reads `states[target]`; `apply` only writes `states[v]`.
        // To keep the borrow checker happy without cloning all states we
        // compute the message immediately before applying it: this is safe
        // because `apply` for node v only mutates states[v], and serve reads
        // the *pre-round* value of states[target]. A node may both be read
        // from and updated in the same round, so we must not observe partial
        // updates: we therefore compute all messages first.
        let targets = std::mem::take(&mut self.scratch_targets);
        let mut messages: Vec<Option<M>> = Vec::with_capacity(n);
        for (v, &t) in targets.iter().enumerate() {
            if t == u32::MAX {
                messages.push(None);
            } else {
                debug_assert_ne!(t as usize, v, "a node never contacts itself");
                let msg = serve(t as usize, &self.states[t as usize]);
                self.metrics.record_delivery(msg.message_bits());
                messages.push(Some(msg));
            }
        }
        for (v, msg) in messages.into_iter().enumerate() {
            apply(v, &mut self.states[v], msg);
        }
        self.scratch_targets = targets;
        failed
    }

    /// One synchronous **push** round.
    ///
    /// Every node `v` derives a message `make(v, &states[v])` from its own
    /// (pre-round) state; if the node does not fail, the message is delivered
    /// to a uniformly random other node. After all deliveries are decided,
    /// `fold(u, &mut states[u], msg)` is invoked once per message delivered to
    /// node `u` (in unspecified order), and finally `after(v, &mut states[v],
    /// delivered)` is called for every node, where `delivered` is `true` iff
    /// the node's own push was delivered. `make` returning `None` means the
    /// node stays silent this round (no failure is recorded).
    ///
    /// Returns the number of nodes whose push failed.
    pub fn push_round<M, F, G, H>(&mut self, mut make: F, mut fold: G, mut after: H) -> usize
    where
        M: MessageSize,
        F: FnMut(NodeId, &S) -> Option<M>,
        G: FnMut(NodeId, &mut S, M),
        H: FnMut(NodeId, &mut S, bool),
    {
        let n = self.n();
        self.metrics.record_round(RoundKind::Push);
        self.round += 1;

        let mut deliveries: Vec<(u32, M)> = Vec::with_capacity(n);
        let mut delivered_flags = vec![false; n];
        let mut failed = 0usize;
        for v in 0..n {
            let msg = match make(v, &self.states[v]) {
                Some(m) => m,
                None => continue,
            };
            self.metrics.record_attempt(RoundKind::Push);
            if self.failure.fails(v, self.round, &mut self.rng) {
                self.metrics.record_failure();
                failed += 1;
                continue;
            }
            let t = Self::random_other_node(&mut self.rng, n, v);
            self.metrics.record_delivery(msg.message_bits());
            deliveries.push((t as u32, msg));
            delivered_flags[v] = true;
        }
        for (t, msg) in deliveries {
            fold(t as usize, &mut self.states[t as usize], msg);
        }
        for (v, flag) in delivered_flags.iter().enumerate() {
            after(v, &mut self.states[v], *flag);
        }
        failed
    }

    /// One synchronous **push–pull** round (both directions in one round), the
    /// primitive used by rumor-spreading subroutines such as learning the
    /// global minimum/maximum (Step 4 of Algorithm 3).
    ///
    /// Semantically this is a [`Engine::pull_round`] and a [`Engine::push_round`]
    /// executed against the same snapshot, counted as a *single* round — the
    /// standard push–pull convention in the rumor-spreading literature the
    /// paper cites ([FG85], [Pit87], [KSSV00]).
    pub fn push_pull_round<M, F, G>(&mut self, mut serve: F, mut merge: G) -> usize
    where
        M: MessageSize + Clone,
        F: FnMut(NodeId, &S) -> M,
        G: FnMut(NodeId, &mut S, M),
    {
        let n = self.n();
        self.metrics.record_round(RoundKind::PushPull);
        self.round += 1;

        // Snapshot messages of every node (what they would serve/push this round).
        let outgoing: Vec<M> = (0..n).map(|v| serve(v, &self.states[v])).collect();
        let mut incoming: Vec<Vec<M>> = vec![Vec::new(); n];
        let mut failed = 0usize;
        for v in 0..n {
            self.metrics.record_attempt(RoundKind::PushPull);
            if self.failure.fails(v, self.round, &mut self.rng) {
                self.metrics.record_failure();
                failed += 1;
                continue;
            }
            // Pull direction: v reads from a random node.
            let t_pull = Self::random_other_node(&mut self.rng, n, v);
            self.metrics.record_delivery(outgoing[t_pull].message_bits());
            incoming[v].push(outgoing[t_pull].clone());
            // Push direction: v sends to a random node.
            let t_push = Self::random_other_node(&mut self.rng, n, v);
            self.metrics.record_delivery(outgoing[v].message_bits());
            incoming[t_push].push(outgoing[v].clone());
        }
        for (v, msgs) in incoming.into_iter().enumerate() {
            for m in msgs {
                merge(v, &mut self.states[v], m);
            }
        }
        failed
    }

    /// Convenience: `k` consecutive pull rounds in which every node collects
    /// the served messages of `k` independently chosen random nodes.
    ///
    /// Returns, for every node, the vector of successfully pulled messages
    /// (between 0 and `k` entries, fewer when the node's pulls failed). This
    /// consumes exactly `k` rounds, matching the paper's convention that
    /// "each node can sample t node values (with replacement) in t rounds".
    pub fn collect_samples<M, F>(&mut self, k: usize, mut serve: F) -> Vec<Vec<M>>
    where
        M: MessageSize,
        F: FnMut(NodeId, &S) -> M,
    {
        let n = self.n();
        let mut collected: Vec<Vec<M>> = (0..n).map(|_| Vec::with_capacity(k)).collect();
        for _ in 0..k {
            // A pull round whose `apply` stores the sample into `collected`
            // rather than into the node state (states are untouched).
            let round = self.round + 1;
            self.metrics.record_round(RoundKind::Pull);
            self.round = round;
            for v in 0..n {
                self.metrics.record_attempt(RoundKind::Pull);
                if self.failure.fails(v, round, &mut self.rng) {
                    self.metrics.record_failure();
                    continue;
                }
                let t = Self::random_other_node(&mut self.rng, n, v);
                let msg = serve(t, &self.states[t]);
                self.metrics.record_delivery(msg.message_bits());
                collected[v].push(msg);
            }
        }
        collected
    }

    /// Consumes the engine and returns the final node states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn engine_with(n: usize, seed: u64) -> Engine<u64> {
        Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed))
    }

    #[test]
    fn rejects_fewer_than_two_nodes() {
        let err = Engine::<u64>::try_from_states(vec![1], EngineConfig::default()).unwrap_err();
        assert_eq!(err, GossipError::TooFewNodes { requested: 1 });
    }

    #[test]
    fn pull_round_never_contacts_self() {
        let mut e = engine_with(8, 3);
        for _ in 0..200 {
            e.pull_round(
                |t, _| t as u64,
                |v, _, pulled| {
                    if let Some(t) = pulled {
                        assert_ne!(t, v as u64, "node pulled from itself");
                    }
                },
            );
        }
    }

    #[test]
    fn pull_round_uses_pre_round_snapshot() {
        // All nodes simultaneously become the value they pull; because serving
        // is from the snapshot, the multiset of values after one round is a
        // sub-multiset of the original values (no partially-updated value can
        // be observed).
        let mut e = engine_with(64, 9);
        let before: HashSet<u64> = e.states().iter().copied().collect();
        e.pull_round(|_, &s| s, |_, state, pulled| *state = pulled.unwrap());
        assert!(e.states().iter().all(|v| before.contains(v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut e = engine_with(100, seed);
            for _ in 0..2 {
                e.pull_round(|_, &s| s, |_, st, p| {
                    if let Some(p) = p {
                        *st = (*st).max(p);
                    }
                });
            }
            e.into_states()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn metrics_count_rounds_messages_and_bits() {
        let mut e = engine_with(10, 1);
        e.pull_round(|_, &s| s, |_, _, _| {});
        e.push_round(|_, &s| Some(s), |_, _, _| {}, |_, _, _| {});
        let m = e.metrics();
        assert_eq!(m.rounds, 2);
        assert_eq!(m.pulls_attempted, 10);
        assert_eq!(m.pushes_attempted, 10);
        assert_eq!(m.messages_delivered, 20);
        assert_eq!(m.bits_delivered, 20 * 64);
        assert_eq!(m.max_message_bits, 64);
        assert_eq!(m.failed_operations, 0);
    }

    #[test]
    fn push_round_delivers_every_non_failed_message_exactly_once() {
        let mut e = Engine::from_states(vec![0u64; 50], EngineConfig::with_seed(11));
        // Count how many messages each node receives.
        e.push_round(
            |v, _| Some(v as u64),
            |_, st, _msg| *st += 1,
            |_, _, _| {},
        );
        let total: u64 = e.states().iter().sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn push_round_none_means_silent() {
        let mut e = Engine::from_states(vec![0u64; 20], EngineConfig::with_seed(2));
        e.push_round(
            |v, _| if v % 2 == 0 { Some(1u64) } else { None },
            |_, st, m| *st += m,
            |_, _, _| {},
        );
        let total: u64 = e.states().iter().sum();
        assert_eq!(total, 10);
        assert_eq!(e.metrics().pushes_attempted, 10);
    }

    #[test]
    fn failures_reduce_deliveries() {
        let config = EngineConfig::with_seed(3).failure(FailureModel::uniform(0.5).unwrap());
        let mut e = Engine::from_states(vec![1u64; 1000], config);
        e.pull_round(|_, &s| s, |_, _, _| {});
        let m = e.metrics();
        assert_eq!(m.pulls_attempted, 1000);
        assert!(m.failed_operations > 350 && m.failed_operations < 650, "{}", m.failed_operations);
        assert_eq!(m.messages_delivered + m.failed_operations, 1000);
    }

    #[test]
    fn total_failure_schedule_blocks_everything() {
        let config =
            EngineConfig::with_seed(3).failure(FailureModel::schedule(|_, _| 1.0));
        let mut e = Engine::from_states(vec![1u64, 2, 3, 4], config);
        let failed = e.pull_round(|_, &s| s, |_, st, p| {
            if let Some(p) = p {
                *st = p;
            }
        });
        assert_eq!(failed, 4);
        assert_eq!(e.states(), &[1, 2, 3, 4]);
    }

    #[test]
    fn push_pull_round_spreads_max_quickly() {
        let mut e = engine_with(1024, 17);
        let mut rounds = 0;
        while e.states().iter().any(|&v| v != 1023) {
            e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
            rounds += 1;
            assert!(rounds < 64, "rumor spreading too slow");
        }
        // Push-pull rumor spreading completes in O(log n) rounds; for n=1024,
        // comfortably under 30.
        assert!(rounds <= 30, "took {rounds} rounds");
    }

    #[test]
    fn collect_samples_returns_k_samples_without_failures() {
        let mut e = engine_with(32, 23);
        let samples = e.collect_samples(3, |_, &s| s);
        assert_eq!(samples.len(), 32);
        assert!(samples.iter().all(|s| s.len() == 3));
        assert_eq!(e.metrics().rounds, 3);
        // Node states are untouched by sampling.
        assert_eq!(e.states(), (0..32u64).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn collect_samples_with_failures_returns_fewer() {
        let config = EngineConfig::with_seed(5).failure(FailureModel::uniform(0.4).unwrap());
        let mut e = Engine::from_states((0..500u64).collect(), config);
        let samples = e.collect_samples(4, |_, &s| s);
        let total: usize = samples.iter().map(Vec::len).sum();
        assert!(total < 2000);
        assert!(total > 500);
    }

    #[test]
    fn local_step_touches_every_node_and_costs_no_round() {
        let mut e = engine_with(10, 0);
        e.local_step(|v, s| *s = v as u64 * 2);
        assert_eq!(e.round(), 0);
        assert_eq!(e.metrics().rounds, 0);
        assert_eq!(e.states()[7], 14);
    }

    #[test]
    fn random_other_node_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(77);
        let n = 5;
        let mut counts = vec![0u32; n];
        for _ in 0..40_000 {
            let t = Engine::<u64>::random_other_node(&mut rng, n, 2);
            counts[t] += 1;
        }
        assert_eq!(counts[2], 0);
        for (i, &c) in counts.iter().enumerate() {
            if i != 2 {
                assert!((c as f64 - 10_000.0).abs() < 500.0, "node {i}: {c}");
            }
        }
    }
}
