//! The synchronous uniform-gossip engine: deterministic and data-parallel.
//!
//! [`Engine`] owns one state per node and advances the network one round at a
//! time. It is deliberately *not* a general message-passing framework: the
//! gossip model is exactly "each node contacts one uniformly random neighbour
//! per round", and the engine exposes that and nothing more. Under the
//! default [`Topology::Complete`] the neighbourhood is all other nodes — the
//! paper's uniform-gossip model verbatim; [`EngineConfig::topology`] swaps in
//! restricted communication graphs (random regular expander, ring, torus; see
//! [`crate::topology`]) without touching any algorithm code. All algorithms
//! of the reproduction — the tournament algorithms of Section 2, the exact
//! algorithm of Section 3, the baselines of Appendix A and \[KDG03\] — are
//! written against this interface, so their round counts are measured
//! identically.
//!
//! Two entry points cover the model:
//!
//! * [`Engine::pull_round`] — every node contacts a uniformly random other
//!   node and reads a message derived from that node's state *at the start of
//!   the round* (synchronous snapshot semantics, as assumed by the paper's
//!   proofs).
//! * [`Engine::push_round`] — every node derives a message from its own state
//!   and delivers it to a uniformly random other node; receivers then fold all
//!   messages delivered to them into their state.
//!
//! Failure injection (Section 5) applies to the *operation of the failing
//! node*: a failed puller receives nothing, a failed pusher delivers nothing.
//!
//! ## Randomness contract
//!
//! The engine has **no sequential random stream**. Every draw is made from a
//! counter-based [`NodeRng`] keyed by `(seed, round, node, stream)`:
//!
//! * in a communication round, node `v` draws its failure coin and then its
//!   contact target(s) from `NodeRng::keyed(seed, round, v, STREAM_ROUND)` —
//!   each contact is a single uniform *neighbour-index* draw against the
//!   configured topology (for the complete graph: an index into the implicit
//!   list of the `n − 1` other nodes), so the draw count per node is
//!   topology-independent;
//! * in a [`local_step`](Engine::local_step), node `v` receives
//!   `NodeRng::keyed(seed, epoch, v, STREAM_LOCAL)` (one epoch per call) for
//!   its algorithm-local coins.
//!
//! Because a node's stream depends only on the key, executions are
//! **bit-identical across thread counts and iteration orders**: a fixed seed
//! and a fixed sequence of round/`local_step` calls produce the same final
//! states whether the engine runs on 1 thread or 64. This is the property the
//! determinism integration tests pin down.
//!
//! ## Parallelism contract
//!
//! Rounds are data-parallel maps over nodes, executed over contiguous node
//! chunks on the engine's persistent [`WorkerPool`] (see [`crate::par`] for
//! the chunk/fold contract and [`crate::pool`] for the pool's barrier
//! protocol). The pool is created once at engine construction — or adopted
//! from [`EngineConfig::pool`], so several engines (e.g. an algorithm's
//! sub-computations, via [`EngineConfig::sub`]) can share one set of workers
//! — and reused by every round and [`local_step`](Engine::local_step); no
//! threads are spawned per round. The closures a round takes
//! (`serve`, `make`, `apply`, `fold`, `merge`, `after`) must therefore be
//! `Fn + Sync`, and they must uphold the gossip model's locality: a closure
//! may only mutate the state slot it is handed (its own node) and may only
//! *read* other nodes' states through the pre-round state buffer the engine
//! passes it. `serve`/`make` may be invoked more than once per node per round
//! (the push paths recompute messages instead of buffering them), so they
//! must be **pure** functions of `(node, state)` — cheap, deterministic, and
//! side-effect free.
//!
//! The thread count defaults to [`crate::par::num_threads`] for networks of
//! at least [`Engine::PAR_MIN_NODES`] nodes and to 1 below that (fork/join
//! overhead would dominate); [`Engine::set_threads`] overrides the choice
//! either way.
//!
//! ## Pass structure: double-buffered rounds
//!
//! The engine holds **two** state vectors — `states` (the current, pre-round
//! values) and `next` (the back buffer). A communication round runs the
//! minimum number of pool dispatches, each a single pass over the nodes:
//!
//! * **pull** — *one* dispatch: each node's task clones its pre-round state
//!   from `states` into its `next` slot, serves/applies against it while
//!   reading peers from the immutable `states`, and the engine swaps the two
//!   vectors afterwards. (Earlier engines refreshed a separate snapshot in
//!   its own dispatch first — a full extra `O(n)` pass per round.)
//! * **push** — two dispatches around the CSR bucketing: one pass decides
//!   every sender's outcome (silent / failed / target) into the target
//!   scratch, the deliveries are counting-sorted receiver-major, and one
//!   fused pass clones each receiver's state into `next`, folds its incoming
//!   messages (ascending sender order) and runs `after`. Swap.
//! * **push–pull** — the same two dispatches; the second pass merges the
//!   pulled message first, then the pushed ones.
//!
//! Inside every pass the loop-invariant work is hoisted: the
//! `(seed, round, stream)` RNG prefix is absorbed once per round
//! ([`crate::rng::NodeRng::key_prefix`] — per-node keying is one
//! xor-multiply and one finalizer instead of three finalizers), the
//! failure model is matched once per chunk, with a dedicated no-failure loop
//! when the model is [`FailureModel::None`] (engines normalise never-firing
//! models to `None` at construction), and the topology is dispatched once
//! per round — each primitive's body is monomorphised over the concrete
//! sampler type, so the complete-graph loop carries no per-draw topology
//! branch (see [`crate::topology`]).
//!
//! The CSR bucketing itself is sequential below [`Engine::PAR_MIN_NODES`] (two
//! linear passes over `u32` buffers) and parallel above it: per-chunk
//! histograms, an exclusive prefix scan over power-of-two receiver ranges,
//! and chunk-major placement — which preserves the stable ascending-sender
//! fold order bit for bit, because sender chunks are ascending and each chunk
//! places its senders in ascending order within its reserved spans.
//!
//! ## Allocation discipline
//!
//! All `O(n)` scratch (contact targets, CSR delivery buckets, the `next`
//! state buffer) lives in buffers owned by the engine, sized once at
//! construction (`next` on the first round; the parallel-CSR histogram, sized
//! `chunks × n` with the chunk count capped at 8, on the first parallel push
//! round) and reused forever after:
//! steady-state rounds perform **no size-`n` allocations**. The only per-round
//! heap traffic is `O(threads)` chunk/slot bookkeeping per dispatched map —
//! and whatever the caller's own state clones cost for non-`Copy` states.
//!
//! The per-slot `clone_from` into `next` is the price of running serve and
//! apply fused in one parallel pass (closures read other nodes only through
//! the immutable front buffer while writing their own back-buffer slot); for
//! `Copy` states it is a parallel memcpy. States holding buffers (doubling,
//! compactor) pay a real per-round copy — matching what their own `serve`
//! closures already clone per message — so if a heavy-state workload ever
//! dominates, the documented alternative is a message-buffer path specialised
//! for cheap snapshots.
//!
//! ## Memory layout of the hot passes
//!
//! Dense rounds at large `n` are bandwidth-bound (one round streams the
//! whole state array several times), so the hot passes are structured around
//! bytes moved, with [`crate::soa`] housing the shared machinery:
//!
//! * the back-buffer refresh is **cache-blocked**: instead of interleaving
//!   one slot's clone with its serve/apply (two live streams competing for
//!   the same lines), the chunk loop clones [`Engine::set_copy_block`] slots
//!   in one [`crate::soa::clone_block`] burst — a straight `memcpy` for
//!   `Copy` states — and then works through them while they are L2-warm;
//! * pull targets are drawn into a small stack batch and the corresponding
//!   sender states are **software-prefetched** [`Engine::set_prefetch_dist`]
//!   iterations ahead of their random-gather read, hiding the DRAM latency
//!   of the uniform contact pattern (the CSR delivery folds and the sparse
//!   pair-list folds prefetch their sender gathers the same way);
//! * the sparse copy-on-write commit batches runs of consecutive written ids
//!   into whole-slice swaps ([`crate::soa::swap_runs`]).
//!
//! All three are mechanical rewrites with bit-identical results — per-node
//! RNG consumption, fold order and metrics are unchanged (pinned by the
//! golden suites and `tests/layout.rs`, with the pre-layout pull loop kept
//! as [`Engine::pull_round_reference`] for same-host A/B measurement).
//! Algorithms whose own state scans dominate can mirror their state structs
//! into flat parallel columns via [`crate::soa::Columns`] / the
//! [`columns!`](crate::columns) macro.

use crate::active::ActiveSet;
use crate::error::{GossipError, Result};
use crate::failure::FailureModel;
use crate::fault::FaultPlan;
use crate::message::MessageSize;
use crate::metrics::{Metrics, RoundKind};
use crate::par;
use crate::pool::{PoolStats, WorkerPool};
use crate::rng::{KeyPrefix, NodeRng};
use crate::soa::LaneMatrix;
use crate::topology::{
    AdjacencyCache, CompleteSampler, CsrSampler, PeerSampler, Sampler, Topology,
};
use crate::NodeId;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Sentinel in the target scratch buffer: the node failed this round.
const TARGET_FAILED: u32 = u32::MAX;
/// Sentinel in the target scratch buffer: the node stayed silent (no message).
const TARGET_SILENT: u32 = u32::MAX - 1;
/// Sentinel in the target scratch buffer: the node pushed, but the delivery
/// did not land this round — dropped in flight by a fault-plan coin, sent to
/// a crashed node, or buffered by the straggler model. Like the other
/// sentinels it is `>= n` (engines reject `n > u32::MAX - 2`), so the
/// bucketing passes skip it and `after` sees `delivered = false`.
const TARGET_DROPPED: u32 = u32::MAX - 2;

/// A push contact buffered by the straggler model: it lands in the first
/// push-capable round at or after round `due`, where the message is
/// re-derived from the sender's state at arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DelayedContact {
    due: u64,
    receiver: u32,
    sender: u32,
}

/// Per-round fault context: the loop-invariant pieces of the active
/// [`FaultPlan`], hoisted once per fault-aware round (the RNG prefixes of the
/// loss and delay streams, and the churn model's down-until view).
struct FaultCtx<'a> {
    round: u64,
    /// Round until which each node is down (`down[v] > round` = crashed this
    /// round); empty when the plan has no churn.
    down: &'a [u64],
    loss: Option<(KeyPrefix, f64)>,
    delay: Option<(KeyPrefix, f64, u64)>,
}

impl FaultCtx<'_> {
    fn new<'a>(seed: u64, round: u64, down: &'a [u64], fault: &FaultPlan) -> FaultCtx<'a> {
        FaultCtx {
            round,
            down,
            loss: fault.loss().map(|l| {
                (
                    NodeRng::key_prefix(seed, round, NodeRng::STREAM_FAULT_LOSS),
                    l.drop_probability(),
                )
            }),
            delay: fault.stragglers().map(|s| {
                (
                    NodeRng::key_prefix(seed, round, NodeRng::STREAM_FAULT_DELAY),
                    s.straggle_probability(),
                    s.max_delay(),
                )
            }),
        }
    }

    /// Whether `v` participates this round (not down under churn).
    #[inline]
    fn alive(&self, v: usize) -> bool {
        self.down.is_empty() || self.down[v] <= self.round
    }

    /// Draws the per-contact loss coin for `sender → receiver` this round.
    /// The coin is keyed by the packed `(sender, receiver)` pair, so the two
    /// directions of a push–pull round are independent.
    #[inline]
    fn lost(&self, sender: usize, receiver: usize) -> bool {
        match self.loss {
            Some((prefix, p)) => {
                let key = ((sender as u64) << 32) | receiver as u64;
                let mut rng = prefix.node(key);
                rng.next_f64() < p
            }
            None => false,
        }
    }

    /// Draws the straggler coin for `sender` this round; `Some(d)` means the
    /// push lands `d >= 1` rounds late.
    #[inline]
    fn delay_of(&self, sender: usize) -> Option<u64> {
        let (prefix, p, max_delay) = self.delay?;
        let mut rng = prefix.node(sender as u64);
        if rng.next_f64() < p {
            Some(1 + rng.next_below(max_delay))
        } else {
            None
        }
    }
}

/// What a sparse push-style round ([`Engine::push_round_on`] /
/// [`Engine::push_pull_round_on`]) did, beyond the dense primitives' failed
/// count: the set of nodes that received at least one message this round.
///
/// Receivers are how sparse activity *grows* — a rumor-spreading loop unions
/// them into its informed [`ActiveSet`]
/// ([`ActiveSet::union_sorted`]), a token-scattering loop into its holder set
/// — so the engine reports them instead of forcing callers into an `O(n)`
/// scan for changed states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePushOutcome {
    /// Number of active nodes whose push failed under the failure model.
    pub failed: usize,
    /// Nodes that had at least one message delivered to them this round,
    /// sorted ascending, duplicate-free. Receivers are sampled from the whole
    /// topology neighbourhood, so they need **not** be members of the active
    /// set.
    pub receivers: Vec<NodeId>,
}

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seed of the engine's random streams. Two engines with the same seed,
    /// the same initial states and the same sequence of round calls produce
    /// identical executions — at any thread count.
    pub seed: u64,
    /// The fault plan applied to the engine's rounds (default:
    /// [`FaultPlan::none`]). This subsumes the failure model: configure a
    /// plain [`FailureModel`] through [`EngineConfig::failure`], or a full
    /// plan (churn, message loss, stragglers) through
    /// [`EngineConfig::fault`].
    pub fault: FaultPlan,
    /// The communication graph peer sampling runs on (default:
    /// [`Topology::Complete`], the paper's uniform-gossip model). See
    /// [`crate::topology`] for the available graphs and the sampling
    /// contract; the graph is materialised once at engine construction.
    pub topology: Topology,
    /// A [`WorkerPool`] for the engine to run its rounds on, shared with
    /// whoever else holds the `Arc`. `None` (the default) gives the engine a
    /// pool of its own, sized by the policy described on
    /// [`Engine::PAR_MIN_NODES`]. Pools are pure scheduling state: sharing
    /// one never couples two engines' results.
    pub pool: Option<Arc<WorkerPool>>,
    /// Cache of materialised topology adjacencies, shared (like the pool)
    /// with every configuration derived via [`EngineConfig::sub`]/`clone` —
    /// sub-engines reuse their parent's graph instead of rebuilding it.
    /// Graph construction is deterministic, so sharing is
    /// behaviour-invisible.
    pub graph_cache: Arc<AdjacencyCache>,
}

impl EngineConfig {
    /// Configuration with the given seed, no failures, the complete-graph
    /// topology, and a private pool.
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig {
            seed,
            fault: FaultPlan::none(),
            topology: Topology::Complete,
            pool: None,
            graph_cache: Arc::new(AdjacencyCache::default()),
        }
    }

    /// Replaces the failure-model combinator of the fault plan (sugar for
    /// `fault(self.fault.with_failure(model))`; any configured churn, loss or
    /// straggler combinators are kept).
    pub fn failure(mut self, failure: FailureModel) -> Self {
        self.fault = self.fault.clone().with_failure(failure);
        self
    }

    /// Replaces the whole fault plan (see [`FaultPlan`]).
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Replaces the communication topology (default: [`Topology::Complete`]).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Makes the engine run its rounds on `pool` instead of creating its own.
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Configuration for a sub-computation: a fresh seed, the same fault
    /// plan (churn *state* does not transfer — a sub-engine starts with every
    /// node alive), the **same topology** (an algorithm's sub-phases run on
    /// the same communication graph as its main phase), and the **same
    /// worker pool** — so an algorithm that runs many short-lived sub-engines
    /// (e.g. the exact-quantile narrowing loop) pays for thread creation
    /// once, not once per phase.
    ///
    /// Sharing only happens if this configuration *has* a pool; an algorithm
    /// that fans out into sub-engines should first call
    /// [`EngineConfig::ensure_pool_for`] with its network size.
    pub fn sub(&self, seed: u64) -> Self {
        EngineConfig {
            seed,
            fault: self.fault.clone(),
            topology: self.topology,
            pool: self.pool.clone(),
            graph_cache: Arc::clone(&self.graph_cache),
        }
    }

    /// Materialises a worker pool on this configuration if it has none and
    /// `n`-node engines built from it would run parallel rounds
    /// (`n >= `[`Engine::PAR_MIN_NODES`]), so that every engine later derived
    /// via [`EngineConfig::sub`] shares one set of worker threads instead of
    /// spawning its own.
    ///
    /// Below the parallel threshold this is a no-op: engines there run
    /// inline, and an idle pool would be pure overhead.
    pub fn ensure_pool_for(&mut self, n: usize) -> &mut Self {
        if self.pool.is_none() && n >= Engine::<()>::PAR_MIN_NODES {
            self.pool = Some(Arc::new(WorkerPool::new(par::num_threads())));
        }
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::with_seed(0)
    }
}

/// A synchronous uniform-gossip network holding one state of type `S` per node.
///
/// See the [module documentation](self) for the communication, randomness and
/// parallelism contracts.
#[derive(Debug)]
pub struct Engine<S> {
    /// The current node states (the front buffer; what peers are read from
    /// during a round).
    states: Vec<S>,
    /// The back buffer a round writes into before the post-round swap with
    /// `states`; lazily sized on the first communication round.
    next: Vec<S>,
    seed: u64,
    threads: usize,
    /// The persistent worker pool rounds dispatch on; constructed once (or
    /// adopted from [`EngineConfig::pool`]) and reused by every round.
    /// Cloning the engine shares the pool.
    pool: Arc<WorkerPool>,
    failure: FailureModel,
    /// The normalised fault plan in effect. `failure` above is its
    /// failure-model combinator, kept as a separate field so the dedicated
    /// failure loops (and their golden pins) are untouched by the plan.
    fault: FaultPlan,
    /// Churn state: the first round node `v` is alive again (`0` = alive,
    /// `u64::MAX` = crashed permanently). Empty until the plan's churn model
    /// first advances.
    down_until: Vec<u64>,
    /// Straggled push contacts not yet due (or due in a round that cannot
    /// deliver them — only push-capable rounds drain this buffer).
    pending_delayed: Vec<DelayedContact>,
    /// Per-round drain scratch: `(receiver, sender)` pairs due this round,
    /// sorted receiver-major (stable, so a receiver folds its late arrivals
    /// in send order).
    due_scratch: Vec<(u32, u32)>,
    /// The topology specification (as configured; kept for reporting).
    topology: Topology,
    /// The materialised peer sampler rounds draw contacts from; built once at
    /// construction (non-complete topologies share their adjacency via `Arc`
    /// when the engine is cloned).
    sampler: PeerSampler,
    metrics: Metrics,
    /// Pool scheduling counters attributed to this engine from pools it no
    /// longer holds (folded in by [`Engine::set_threads`] when it swaps
    /// pools); added to the live pool's delta in [`Engine::metrics`].
    pool_carry: PoolStats,
    /// The live pool's counters at adoption time — the baseline
    /// [`Engine::metrics`] subtracts, so a shared pool's pre-existing
    /// dispatches are not billed to this engine.
    pool_base: PoolStats,
    round: u64,
    local_epochs: u64,
    /// Per-sender contact target (push target in push–pull), or a sentinel.
    scratch_targets: Vec<u32>,
    /// Per-puller contact target in push–pull rounds.
    scratch_pull: Vec<u32>,
    /// CSR bucket offsets: deliveries for receiver `u` occupy
    /// `scratch_senders[offsets[u]..offsets[u + 1]]`. Atomic because the
    /// parallel bucketing passes write them from `pool.run` tasks (every slot
    /// has exactly one writer per pass; all accesses are `Relaxed`, ordered
    /// across passes by the pool's quiescence barrier).
    scratch_offsets: Vec<AtomicU32>,
    /// CSR placement cursors: `n` entries for the sequential counting sort,
    /// grown to `chunks × n` (chunk-major) by the parallel bucketing.
    scratch_cursors: Vec<AtomicU32>,
    /// Sender ids, grouped by receiver, in ascending sender order.
    scratch_senders: Vec<AtomicU32>,
    /// Parallel-CSR per-chunk histograms (chunk-major, `chunks × n`); empty
    /// until the first parallel push round.
    scratch_hist: Vec<u32>,
    /// Compact per-active-sender contact targets of the sparse push paths
    /// (aligned with the round's `ActiveSet::indices`); grown to the largest
    /// active set seen.
    scratch_compact: Vec<u32>,
    /// Compact per-active-node pull targets of sparse push–pull rounds.
    scratch_compact2: Vec<u32>,
    /// Sparse delivery list: `(receiver, sender)` pairs, sorted
    /// receiver-major with ascending senders — the CSR of a sparse push,
    /// sized by the number of messages instead of `n`.
    scratch_pairs: Vec<(u32, u32)>,
    /// The written set of the current sparse round (active ∪ receivers),
    /// sorted — what the copy-on-write commit pass swaps into the front
    /// buffer.
    scratch_written: Vec<u32>,
    /// Sorted unique receivers of the current sparse push round (the dedup
    /// of `scratch_pairs`' receiver column), reused across rounds.
    scratch_receivers: Vec<u32>,
    /// Slots per cache-blocked back-buffer refresh block (see
    /// [`crate::soa::clone_block`]); seeded from `GOSSIP_COPY_BLOCK`,
    /// overridable per engine via [`Engine::set_copy_block`]. Never affects
    /// results, only cache behaviour.
    copy_block: usize,
    /// Lookahead of the software prefetches issued by the delivery gathers
    /// (pull targets, CSR sender states, sparse pair lists); seeded from
    /// `GOSSIP_PREFETCH_DIST`, `0` disables. Never affects results.
    prefetch_dist: usize,
    /// Whether the sparse copy-on-write commit batches contiguous id runs
    /// ([`crate::soa::swap_runs`]); the per-slot path is kept for the
    /// equivalence tests and A/B benches.
    batch_commit: bool,
}

/// A zeroed atomic scratch buffer (scratch holds no cross-round state, so
/// clones start from zero).
fn atomic_zeroed(len: usize) -> Vec<AtomicU32> {
    (0..len).map(|_| AtomicU32::new(0)).collect()
}

impl<S: Clone> Clone for Engine<S> {
    fn clone(&self) -> Self {
        Engine {
            states: self.states.clone(),
            // Post-swap, `next` holds stale data no round ever reads before
            // overwriting; `ensure_next` re-sizes the empty buffer lazily.
            next: Vec::new(),
            seed: self.seed,
            threads: self.threads,
            pool: Arc::clone(&self.pool),
            failure: self.failure.clone(),
            fault: self.fault.clone(),
            // Churn state and in-flight stragglers are real trajectory state
            // (unlike scratch) and must survive a clone.
            down_until: self.down_until.clone(),
            pending_delayed: self.pending_delayed.clone(),
            due_scratch: Vec::new(),
            topology: self.topology,
            sampler: self.sampler.clone(),
            metrics: self.metrics,
            // The clone shares the pool, so sharing base + carry keeps its
            // scheduling counters continuous with the original's.
            pool_carry: self.pool_carry,
            pool_base: self.pool_base,
            round: self.round,
            local_epochs: self.local_epochs,
            scratch_targets: self.scratch_targets.clone(),
            scratch_pull: self.scratch_pull.clone(),
            scratch_offsets: atomic_zeroed(self.scratch_offsets.len()),
            scratch_cursors: atomic_zeroed(self.scratch_cursors.len()),
            scratch_senders: atomic_zeroed(self.scratch_senders.len()),
            scratch_hist: vec![0; self.scratch_hist.len()],
            // Like the atomic scratches above: no cross-round state, so the
            // clone starts empty instead of memcpying stale ids (the sparse
            // paths resize/clear these before every use).
            scratch_compact: Vec::new(),
            scratch_compact2: Vec::new(),
            scratch_pairs: Vec::new(),
            scratch_written: Vec::new(),
            scratch_receivers: Vec::new(),
            copy_block: self.copy_block,
            prefetch_dist: self.prefetch_dist,
            batch_commit: self.batch_commit,
        }
    }
}

impl<S> Engine<S> {
    /// Networks with at least this many nodes run rounds on
    /// [`crate::par::num_threads`] threads by default; smaller ones run
    /// sequentially (fork/join overhead would dominate the per-node work).
    pub const PAR_MIN_NODES: usize = 1 << 14;

    /// Creates an engine whose node `v` starts with state `states[v]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two states are supplied; use [`Engine::try_from_states`]
    /// for a fallible constructor.
    pub fn from_states(states: Vec<S>, config: EngineConfig) -> Self {
        Engine::try_from_states(states, config).expect("uniform gossip needs at least 2 nodes")
    }

    /// Fallible variant of [`Engine::from_states`].
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::TooFewNodes`] if fewer than two states are
    /// supplied, [`GossipError::InvalidParameter`] if more than
    /// `u32::MAX - 2` are (contact targets are stored as `u32`), or the
    /// topology's own validation error if [`EngineConfig::topology`] cannot
    /// be realised on this network size.
    pub fn try_from_states(states: Vec<S>, config: EngineConfig) -> Result<Self> {
        let n = states.len();
        if n < 2 {
            return Err(GossipError::TooFewNodes { requested: n });
        }
        if n > (u32::MAX - 2) as usize {
            return Err(GossipError::InvalidParameter {
                name: "n",
                reason: format!("at most {} nodes are supported, got {n}", u32::MAX - 2),
            });
        }
        config.fault.validate_for(n)?;
        // Combinators that can never fire are stripped so plans built from
        // zero intensities keep the dedicated fast/failure loops (and their
        // bit-exact golden trajectories).
        let fault = config.fault.normalized();
        let failure = fault.failure().clone();
        let sampler = config.topology.materialize(n, &config.graph_cache)?;
        let threads = if n >= Self::PAR_MIN_NODES {
            par::num_threads()
        } else {
            1
        };
        // Adopt the configured (shared) pool, or build a private one sized
        // for the default thread count. A 1-thread pool spawns nothing.
        let pool = config
            .pool
            .unwrap_or_else(|| Arc::new(WorkerPool::new(threads)));
        let pool_base = pool.stats();
        Ok(Engine {
            states,
            next: Vec::new(),
            seed: config.seed,
            threads,
            pool,
            failure,
            fault,
            down_until: Vec::new(),
            pending_delayed: Vec::new(),
            due_scratch: Vec::new(),
            topology: config.topology,
            sampler,
            metrics: Metrics::new(),
            pool_carry: PoolStats::default(),
            pool_base,
            round: 0,
            local_epochs: 0,
            scratch_targets: vec![0; n],
            scratch_pull: vec![0; n],
            scratch_offsets: atomic_zeroed(n + 1),
            scratch_cursors: atomic_zeroed(n),
            scratch_senders: atomic_zeroed(n),
            scratch_hist: Vec::new(),
            scratch_compact: Vec::new(),
            scratch_compact2: Vec::new(),
            scratch_pairs: Vec::new(),
            scratch_written: Vec::new(),
            scratch_receivers: Vec::new(),
            copy_block: crate::soa::copy_block(),
            prefetch_dist: crate::soa::prefetch_dist(),
            batch_commit: true,
        })
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// The states of all nodes, indexed by [`NodeId`].
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable access to the node states.
    ///
    /// Intended for *local* (communication-free) computation steps such as
    /// "every node updates its own value from what it has already received";
    /// using it to read other nodes' states would break the gossip model, so
    /// algorithms in this repository only ever use it via
    /// [`Engine::local_step`].
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Communication metrics accumulated so far.
    ///
    /// The scheduling counters (`pool_dispatches`, `worker_wakeups`) are
    /// filled in here from the worker pool's cumulative [`PoolStats`],
    /// baselined at pool adoption; with a shared pool
    /// ([`EngineConfig::pool`]) they include dispatches by other sharers
    /// during this engine's lifetime. They are excluded from `Metrics`
    /// equality — see [`Metrics`]' `PartialEq`.
    pub fn metrics(&self) -> Metrics {
        let live = self.pool.stats();
        let mut m = self.metrics;
        m.pool_dispatches =
            self.pool_carry.dispatches + (live.dispatches - self.pool_base.dispatches);
        m.worker_wakeups = self.pool_carry.wakeups + (live.wakeups - self.pool_base.wakeups);
        m
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The seed all of this engine's random streams are keyed by.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The failure model in effect (the failure combinator of the fault
    /// plan, normalised at construction).
    pub fn failure_model(&self) -> &FailureModel {
        &self.failure
    }

    /// The fault plan in effect (normalised at construction: combinators
    /// that can never fire are stripped).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// The nodes that were down (crashed by the plan's churn model) during
    /// the most recently executed round, in ascending id order. Empty when
    /// the plan has no churn or no round has run yet.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        let round = self.round;
        self.down_until
            .iter()
            .enumerate()
            .filter(|&(_, &down)| down > round)
            .map(|(v, _)| v)
            .collect()
    }

    /// Number of straggled push contacts currently in flight (sent, but not
    /// yet folded into a push-capable round's deliveries).
    pub fn delayed_in_flight(&self) -> usize {
        self.pending_delayed.len()
    }

    /// The communication topology peer sampling runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of worker threads rounds run on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    ///
    /// Results do not depend on this value — only wall-clock time does. If
    /// the engine's current pool has fewer executors than requested, the
    /// engine switches to a new, private pool of the requested size (engines
    /// previously sharing the old pool keep it and are unaffected); shrinking
    /// keeps the pool and simply cuts fewer chunks per round.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        self.threads = threads.max(1);
        if self.threads > self.pool.threads() {
            // Fold the old pool's scheduling counters into the carry so the
            // engine's `pool_dispatches`/`worker_wakeups` stay monotone
            // across the swap.
            let old = self.pool.stats();
            self.pool_carry.dispatches += old.dispatches - self.pool_base.dispatches;
            self.pool_carry.wakeups += old.wakeups - self.pool_base.wakeups;
            self.pool = Arc::new(WorkerPool::new(self.threads));
            self.pool_base = self.pool.stats();
        }
        self
    }

    /// The persistent worker pool this engine's rounds dispatch on.
    ///
    /// Clone the `Arc` into [`EngineConfig::pool`] to run another engine on
    /// the same workers (see [`EngineConfig::sub`]).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Runs `f` as one **fused round program**: the worker pool is woken
    /// once ([`WorkerPool::run_program`]), stays resident for every round
    /// primitive `f` executes on this engine, and parks again when `f`
    /// returns — replacing one full dispatch hand-off per round with a
    /// lightweight spin-then-park phase barrier.
    ///
    /// Results are **bit-identical** to running `f` without the fusion (the
    /// determinism and program test suites pin this); only wall-clock time
    /// and the scheduling counters change. Fused blocks nest freely (the
    /// inner one just runs inside the outer session), and arbitrary
    /// sequential work between rounds — convergence checks, active-set
    /// unions, metric folds — is fine inside `f`: it simply runs on the
    /// session thread (executor 0) while the workers wait at the barrier.
    ///
    /// Use [`Engine::run_program`](crate::RoundProgram) to build and replay
    /// a recorded round schedule; use `fused` directly when the schedule is
    /// data-dependent (convergence loops, expanding active sets).
    ///
    /// Note: engines sharing this pool cannot dispatch from *other* threads
    /// while the session runs (they serialise on the pool's gate, as
    /// always); same-thread use is fine and fuses into the session.
    pub fn fused<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let pool = Arc::clone(&self.pool);
        pool.run_program(|| f(self))
    }

    /// Overrides the cache-blocked refresh block size (slots per
    /// [`crate::soa::clone_block`] block; clamped to at least 1). Defaults to
    /// `GOSSIP_COPY_BLOCK` / [`crate::soa::copy_block`]. **Results never
    /// depend on this value** — only the order cache lines are touched in;
    /// the layout property tests pin that invariance.
    pub fn set_copy_block(&mut self, slots: usize) -> &mut Self {
        self.copy_block = slots.max(1);
        self
    }

    /// Overrides the software-prefetch lookahead of the delivery gathers
    /// (`0` disables prefetching). Defaults to `GOSSIP_PREFETCH_DIST` /
    /// [`crate::soa::prefetch_dist`]. **Results never depend on this
    /// value** — prefetches are pure cache hints.
    pub fn set_prefetch_dist(&mut self, dist: usize) -> &mut Self {
        self.prefetch_dist = dist;
        self
    }

    /// Selects between the run-batched ([`crate::soa::swap_runs`], the
    /// default) and the per-slot copy-on-write commit of the sparse rounds.
    /// The two are byte-identical (pinned by the layout property tests);
    /// the per-slot path exists as the measured control.
    #[doc(hidden)]
    pub fn set_batch_commit(&mut self, batch: bool) -> &mut Self {
        self.batch_commit = batch;
        self
    }

    /// Consumes the engine and returns the final node states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }
}

impl<S: Send> Engine<S> {
    /// Applies a purely local update to every node (no communication, no round
    /// consumed), in parallel over the engine's node chunks.
    ///
    /// Each node receives its own deterministic [`NodeRng`] for algorithm-local
    /// coins (e.g. the probability-δ branch of Algorithm 1); the stream is
    /// keyed by `(seed, epoch, node)` where the epoch increments per
    /// `local_step` call, so runs replay identically — at any thread count,
    /// since the closure runs on the same chunk helper as the rounds. The
    /// closure may therefore only mutate the state slot it is handed; shared
    /// captures are immutable (`Fn + Sync`).
    pub fn local_step<F>(&mut self, f: F)
    where
        F: Fn(NodeId, &mut S, &mut NodeRng) + Sync,
    {
        self.local_epochs += 1;
        let threads = self.threads;
        let prefix = NodeRng::key_prefix(self.seed, self.local_epochs, NodeRng::STREAM_LOCAL);
        par::for_chunks(
            &self.pool,
            &mut self.states,
            threads,
            (),
            |start, chunk| {
                for (j, state) in chunk.iter_mut().enumerate() {
                    let v = start + j;
                    let mut rng = prefix.node(v as u64);
                    f(v, state, &mut rng);
                }
            },
            |(), ()| (),
        );
    }

    /// [`Engine::local_step`] restricted to an [`ActiveSet`]: only the
    /// members' closures run, dispatched over the active indices so the cost
    /// is `O(|active|)`, not `O(n)`.
    ///
    /// Each member receives exactly the [`NodeRng`] stream it would have
    /// received from the dense `local_step` at the same epoch (the epoch
    /// counter advances either way), so a sparse step over the **full** set is
    /// bit-identical to the dense one.
    pub fn local_step_on<F>(&mut self, active: &ActiveSet, f: F)
    where
        F: Fn(NodeId, &mut S, &mut NodeRng) + Sync,
    {
        self.assert_active(active);
        self.local_epochs += 1;
        let threads = self.threads;
        let prefix = NodeRng::key_prefix(self.seed, self.local_epochs, NodeRng::STREAM_LOCAL);
        par::for_sparse(
            &self.pool,
            &mut self.states,
            active.indices(),
            threads,
            (),
            |ids, base, sub| {
                for &id in ids {
                    let v = id as usize;
                    let mut rng = prefix.node(v as u64);
                    f(v, &mut sub[v - base], &mut rng);
                }
            },
            |(), ()| (),
        );
    }
}

impl<S> Engine<S> {
    /// Sparse rounds take the engine's `ActiveSet` by reference; it must have
    /// been built for this network size.
    fn assert_active(&self, active: &ActiveSet) {
        assert_eq!(
            active.n(),
            self.n(),
            "ActiveSet was built for a {}-node network, engine has {} nodes",
            active.n(),
            self.n()
        );
    }
}

/// Merges two sorted, duplicate-free id lists into `out` (also sorted and
/// duplicate-free) — how a sparse push round assembles its written set
/// (active senders ∪ receivers) in `O(|a| + |b|)`.
fn merge_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// The source-tagged row message the lane collectors route through the
/// single-sourced fault-aware sampling loop on the rare disruptive path.
/// Wire size is the served row alone — the source id is observer metadata,
/// free on the wire, exactly like the nested layout it substitutes for.
struct LaneRow<V> {
    source: u32,
    values: Vec<V>,
}

impl<V: MessageSize> MessageSize for LaneRow<V> {
    fn message_bits(&self) -> u64 {
        self.values.message_bits()
    }
}

/// Dispatches `$body` with `$sp` bound to the engine's concrete sampler
/// type — **once per round**, so the node loops monomorphise over
/// [`CompleteSampler`] / [`CsrSampler`] instead of matching the topology
/// enum per draw (which measurably cost throughput at n = 10⁶, where the
/// complete-graph loop must keep `n` in a register).
macro_rules! with_sampler {
    ($self:ident, $sp:ident => $body:expr) => {
        // Cheap per-round clone: a usize or an Arc bump.
        match $self.sampler.clone() {
            PeerSampler::Complete { n } => {
                let $sp = CompleteSampler { n };
                $body
            }
            PeerSampler::Sparse(adj) => {
                let $sp = CsrSampler::new(adj);
                $body
            }
        }
    };
}

impl<S: Clone + Send + Sync> Engine<S> {
    /// Sizes the back buffer on the first communication round (the one
    /// size-`n` allocation; every later round reuses it in place).
    fn ensure_next(&mut self) {
        if self.next.len() != self.states.len() {
            self.next = self.states.clone();
        }
    }

    /// One synchronous **pull** round.
    ///
    /// Every node `v` contacts a uniformly random neighbour `t(v)` (under the
    /// default [`Topology::Complete`]: a uniformly random other node). The
    /// message served by `t(v)` is `serve(t(v), &states[t(v)])`, computed from
    /// the state of `t(v)` at the start of the round. Then
    /// `apply(v, &mut states[v], Some(msg))` is called for every node that
    /// succeeded, and `apply(v, .., None)` for every node whose operation
    /// failed under the failure model.
    ///
    /// The whole round is **one** pool dispatch: each node's task clones its
    /// pre-round state into the back buffer, applies the update there while
    /// reading peers from the front buffer, and the buffers swap afterwards
    /// (see the module docs' pass structure).
    ///
    /// `serve` must be pure (see the module docs); `apply` may only mutate the
    /// state it is handed.
    ///
    /// Returns the number of nodes whose pull failed.
    pub fn pull_round<M, F, G>(&mut self, serve: F, apply: G) -> usize
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        with_sampler!(self, sp => self.pull_round_with(sp, serve, apply))
    }

    /// [`Engine::pull_round`], monomorphised over the sampler type.
    fn pull_round_with<SP, M, F, G>(&mut self, sampler: SP, serve: F, apply: G) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        if self.fault.is_disruptive() {
            return self.pull_round_faulty(sampler, serve, apply);
        }
        self.metrics.record_round(RoundKind::Pull, self.n() as u64);
        self.round += 1;
        self.ensure_next();

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let (block, dist) = (self.copy_block, self.prefetch_dist);
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let delta = par::for_chunks(
            &self.pool,
            &mut self.next,
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                if reliable {
                    // Dedicated no-failure loop, restructured around memory
                    // layout (bit-identical to the per-slot reference —
                    // every node draws the same stream and serves the same
                    // target; only the cache-line touch order changes):
                    //
                    // 1. refresh one block of back-buffer slots in a tight
                    //    clone pass (a memcpy for Copy states) so the block
                    //    is L1/L2-hot for the apply pass;
                    // 2. within the block, draw contact targets a batch at a
                    //    time into a stack buffer — separating the RNG math
                    //    from the gather makes the targets available early;
                    // 3. serve/apply with the gather prefetched `dist`
                    //    targets ahead, hiding the random-read latency that
                    //    dominates large-n rounds. When the whole state
                    //    array is cache-resident the gather never misses, so
                    //    the batch/prefetch machinery is skipped (measured
                    //    ~10% overhead at n = 4k) — the touch order is the
                    //    same either way, so this gate cannot affect results.
                    let prefetch = dist > 0
                        && std::mem::size_of::<S>() * states.len() > crate::soa::PREFETCH_MIN_BYTES;
                    const TARGET_BATCH: usize = 256;
                    let mut tbuf = [0u32; TARGET_BATCH];
                    let mut bs = 0;
                    while bs < chunk.len() {
                        let be = (bs + block).min(chunk.len());
                        crate::soa::clone_block(
                            &mut chunk[bs..be],
                            &states[start + bs..start + be],
                        );
                        if !prefetch {
                            for (j, slot) in chunk[bs..be].iter_mut().enumerate() {
                                let v = start + bs + j;
                                let mut rng = prefix.node(v as u64);
                                let t = sampler.sample(&mut rng, v);
                                local.record_attempt(RoundKind::Pull);
                                let msg = serve(t, &states[t]);
                                local.record_delivery(msg.message_bits());
                                apply(v, slot, Some(msg));
                            }
                            bs = be;
                            continue;
                        }
                        let mut js = bs;
                        while js < be {
                            let je = (js + TARGET_BATCH).min(be);
                            let batch = je - js;
                            for (i, slot) in tbuf[..batch].iter_mut().enumerate() {
                                let v = start + js + i;
                                let mut rng = prefix.node(v as u64);
                                *slot = sampler.sample(&mut rng, v) as u32;
                            }
                            for i in 0..batch {
                                if i + dist < batch {
                                    crate::soa::prefetch_read(&states[tbuf[i + dist] as usize]);
                                }
                                let v = start + js + i;
                                let t = tbuf[i] as usize;
                                local.record_attempt(RoundKind::Pull);
                                let msg = serve(t, &states[t]);
                                local.record_delivery(msg.message_bits());
                                apply(v, &mut chunk[js + i], Some(msg));
                            }
                            js = je;
                        }
                        bs = be;
                    }
                } else {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let v = start + j;
                        slot.clone_from(&states[v]);
                        let mut rng = prefix.node(v as u64);
                        local.record_attempt(RoundKind::Pull);
                        if failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            apply(v, slot, None);
                        } else {
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            apply(v, slot, Some(msg));
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;
        std::mem::swap(&mut self.states, &mut self.next);
        delta.failed_operations as usize
    }

    /// The pre-layout-optimisation [`Engine::pull_round`]: the per-slot
    /// clone-then-serve loop, kept verbatim as the measured control of the
    /// `layout` A/B bench and as the reference the property tests pin the
    /// blocked/prefetched path against (bit-identical states and metrics).
    /// Not part of the supported API.
    #[doc(hidden)]
    pub fn pull_round_reference<M, F, G>(&mut self, serve: F, apply: G) -> usize
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        with_sampler!(self, sp => self.pull_round_reference_with(sp, serve, apply))
    }

    /// [`Engine::pull_round_reference`], monomorphised over the sampler type.
    fn pull_round_reference_with<SP, M, F, G>(&mut self, sampler: SP, serve: F, apply: G) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        if self.fault.is_disruptive() {
            return self.pull_round_faulty(sampler, serve, apply);
        }
        self.metrics.record_round(RoundKind::Pull, self.n() as u64);
        self.round += 1;
        self.ensure_next();

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let delta = par::for_chunks(
            &self.pool,
            &mut self.next,
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                if reliable {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let v = start + j;
                        slot.clone_from(&states[v]);
                        let mut rng = prefix.node(v as u64);
                        local.record_attempt(RoundKind::Pull);
                        let t = sampler.sample(&mut rng, v);
                        let msg = serve(t, &states[t]);
                        local.record_delivery(msg.message_bits());
                        apply(v, slot, Some(msg));
                    }
                } else {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let v = start + j;
                        slot.clone_from(&states[v]);
                        let mut rng = prefix.node(v as u64);
                        local.record_attempt(RoundKind::Pull);
                        if failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            apply(v, slot, None);
                        } else {
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            apply(v, slot, Some(msg));
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;
        std::mem::swap(&mut self.states, &mut self.next);
        delta.failed_operations as usize
    }

    /// One synchronous **push** round.
    ///
    /// Every node `v` derives a message `make(v, &states[v])` from its own
    /// (pre-round) state; if the node does not fail, the message is delivered
    /// to a uniformly random other node. After all deliveries are decided,
    /// `fold(u, &mut states[u], msg)` is invoked once per message delivered to
    /// node `u` (in ascending sender order), and finally `after(v,
    /// &mut states[v], delivered)` is called for every node, where `delivered`
    /// is `true` iff the node's own push was delivered. `make` returning
    /// `None` means the node stays silent this round (no failure is recorded).
    ///
    /// `make` must be pure — it is re-evaluated on the delivery pass instead
    /// of buffering messages (see the module docs).
    ///
    /// Returns the number of nodes whose push failed.
    pub fn push_round<M, F, G, H>(&mut self, make: F, fold: G, after: H) -> usize
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
        H: Fn(NodeId, &mut S, bool) + Sync,
    {
        with_sampler!(self, sp => self.push_round_with(sp, make, fold, after))
    }

    /// [`Engine::push_round`], monomorphised over the sampler type.
    fn push_round_with<SP, M, F, G, H>(&mut self, sampler: SP, make: F, fold: G, after: H) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
        H: Fn(NodeId, &mut S, bool) + Sync,
    {
        if self.fault.is_disruptive() {
            return self.push_round_faulty(sampler, make, fold, after);
        }
        let n = self.n();
        self.metrics.record_round(RoundKind::Push, n as u64);
        self.round += 1;
        self.ensure_next();

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);

        // Pass 1: every sender decides its outcome (silent / failed / target),
        // reading its own pre-round state from the front buffer.
        let delta = par::for_chunks(
            &self.pool,
            &mut self.scratch_targets,
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let v = start + j;
                    let msg = match make(v, &states[v]) {
                        Some(m) => m,
                        None => {
                            *slot = TARGET_SILENT;
                            continue;
                        }
                    };
                    local.record_attempt(RoundKind::Push);
                    let mut rng = prefix.node(v as u64);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        *slot = TARGET_FAILED;
                    } else {
                        let t = sampler.sample(&mut rng, v);
                        local.record_delivery(msg.message_bits());
                        *slot = t as u32;
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;

        // Bucket deliveries by receiver (CSR), then clone + fold + after per
        // receiver in one fused pass over the back buffer — block-refreshed,
        // with the sender-state gather prefetched ahead (the senders of a
        // chunk's receivers occupy one contiguous CSR span, so the lookahead
        // is a cheap sequential read of the sender ids).
        self.bucket_deliveries(n);
        let states = &self.states;
        let (block, dist) = (self.copy_block, self.prefetch_dist);
        let (targets, offsets, senders) = (
            &self.scratch_targets,
            &self.scratch_offsets,
            &self.scratch_senders,
        );
        par::for_chunks(
            &self.pool,
            &mut self.next,
            threads,
            (),
            |start, chunk| {
                let chunk_hi = offsets[start + chunk.len()].load(Ordering::Relaxed) as usize;
                let mut bs = 0;
                while bs < chunk.len() {
                    let be = (bs + block).min(chunk.len());
                    crate::soa::clone_block(&mut chunk[bs..be], &states[start + bs..start + be]);
                    for (j, slot) in chunk[bs..be].iter_mut().enumerate() {
                        let u = start + bs + j;
                        let lo = offsets[u].load(Ordering::Relaxed) as usize;
                        let hi = offsets[u + 1].load(Ordering::Relaxed) as usize;
                        for i in lo..hi {
                            if dist > 0 && i + dist < chunk_hi {
                                let ahead = senders[i + dist].load(Ordering::Relaxed) as usize;
                                crate::soa::prefetch_read(&states[ahead]);
                            }
                            let v = senders[i].load(Ordering::Relaxed) as usize;
                            if let Some(msg) = make(v, &states[v]) {
                                fold(u, slot, msg);
                            }
                        }
                        after(u, slot, (targets[u] as usize) < n);
                    }
                    bs = be;
                }
            },
            |(), ()| (),
        );
        std::mem::swap(&mut self.states, &mut self.next);
        delta.failed_operations as usize
    }

    /// One synchronous **push–pull** round (both directions in one round), the
    /// primitive used by rumor-spreading subroutines such as learning the
    /// global minimum/maximum (Step 4 of Algorithm 3).
    ///
    /// Semantically this is a [`Engine::pull_round`] and a [`Engine::push_round`]
    /// executed against the same snapshot, counted as a *single* round — the
    /// standard push–pull convention in the rumor-spreading literature the
    /// paper cites (\[FG85\], \[Pit87\], \[KSSV00\]). For each node, `merge` first
    /// receives the pulled message, then pushed messages in ascending sender
    /// order. `serve` must be pure (it is re-evaluated per delivery).
    pub fn push_pull_round<M, F, G>(&mut self, serve: F, merge: G) -> usize
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
    {
        with_sampler!(self, sp => self.push_pull_round_with(sp, serve, merge))
    }

    /// [`Engine::push_pull_round`], monomorphised over the sampler type.
    fn push_pull_round_with<SP, M, F, G>(&mut self, sampler: SP, serve: F, merge: G) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
    {
        if self.fault.is_disruptive() {
            return self.push_pull_round_faulty(sampler, serve, merge);
        }
        let n = self.n();
        self.metrics.record_round(RoundKind::PushPull, n as u64);
        self.round += 1;
        self.ensure_next();

        let (round, threads) = (self.round, self.threads);
        let failure = &self.failure;
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);

        // Pass 1: every node draws its failure coin, pull target, push target.
        // Delivery metrics are recorded in pass 2, where the messages are
        // constructed anyway.
        let delta = par::for_chunks2(
            &self.pool,
            &mut self.scratch_targets,
            &mut self.scratch_pull,
            threads,
            Metrics::default(),
            |start, push_chunk, pull_chunk| {
                let mut local = Metrics::default();
                if reliable {
                    // Dedicated no-failure loop: no coin, no model match.
                    for j in 0..push_chunk.len() {
                        let v = start + j;
                        local.record_attempt(RoundKind::PushPull);
                        let mut rng = prefix.node(v as u64);
                        pull_chunk[j] = sampler.sample(&mut rng, v) as u32;
                        push_chunk[j] = sampler.sample(&mut rng, v) as u32;
                    }
                } else {
                    for j in 0..push_chunk.len() {
                        let v = start + j;
                        local.record_attempt(RoundKind::PushPull);
                        let mut rng = prefix.node(v as u64);
                        if failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            push_chunk[j] = TARGET_FAILED;
                            pull_chunk[j] = TARGET_FAILED;
                        } else {
                            pull_chunk[j] = sampler.sample(&mut rng, v) as u32;
                            push_chunk[j] = sampler.sample(&mut rng, v) as u32;
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;

        self.bucket_deliveries(n);
        let states = &self.states;
        let (block, dist) = (self.copy_block, self.prefetch_dist);
        let (pulls, offsets, senders) = (
            &self.scratch_pull,
            &self.scratch_offsets,
            &self.scratch_senders,
        );
        let deliveries = par::for_chunks(
            &self.pool,
            &mut self.next,
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                let chunk_end = start + chunk.len();
                let chunk_hi = offsets[chunk_end].load(Ordering::Relaxed) as usize;
                let mut bs = 0;
                while bs < chunk.len() {
                    let be = (bs + block).min(chunk.len());
                    crate::soa::clone_block(&mut chunk[bs..be], &states[start + bs..start + be]);
                    for (j, slot) in chunk[bs..be].iter_mut().enumerate() {
                        let u = start + bs + j;
                        // Prefetch the pull gather a few receivers ahead;
                        // the push gather is prefetched along the CSR span.
                        if dist > 0 && u + dist < chunk_end {
                            let ahead = pulls[u + dist];
                            if ahead != TARGET_FAILED {
                                crate::soa::prefetch_read(&states[ahead as usize]);
                            }
                        }
                        let t_pull = pulls[u];
                        if t_pull != TARGET_FAILED {
                            let t = t_pull as usize;
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            merge(u, slot, msg);
                        }
                        let lo = offsets[u].load(Ordering::Relaxed) as usize;
                        let hi = offsets[u + 1].load(Ordering::Relaxed) as usize;
                        for i in lo..hi {
                            if dist > 0 && i + dist < chunk_hi {
                                let ahead = senders[i + dist].load(Ordering::Relaxed) as usize;
                                crate::soa::prefetch_read(&states[ahead]);
                            }
                            let v = senders[i].load(Ordering::Relaxed) as usize;
                            let msg = serve(v, &states[v]);
                            local.record_delivery(msg.message_bits());
                            merge(u, slot, msg);
                        }
                    }
                    bs = be;
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + deliveries;
        std::mem::swap(&mut self.states, &mut self.next);
        delta.failed_operations as usize
    }

    /// Convenience: `k` consecutive pull rounds in which every node collects
    /// the served messages of `k` independently chosen random nodes.
    ///
    /// Returns, for every node, the vector of successfully pulled messages
    /// (between 0 and `k` entries, fewer when the node's pulls failed). This
    /// consumes exactly `k` rounds, matching the paper's convention that
    /// "each node can sample t node values (with replacement) in t rounds".
    /// Node states are untouched.
    pub fn collect_samples<M, F>(&mut self, k: usize, serve: F) -> Vec<Vec<M>>
    where
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        with_sampler!(self, sp => self.collect_samples_with(sp, k, serve))
    }

    /// [`Engine::collect_samples`], monomorphised over the sampler type.
    fn collect_samples_with<SP, M, F>(&mut self, sampler: SP, k: usize, serve: F) -> Vec<Vec<M>>
    where
        SP: Sampler,
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        if self.fault.is_disruptive() {
            return self.collect_samples_faulty(sampler, k, serve);
        }
        let n = self.n();
        let threads = self.threads;
        let mut collected: Vec<Vec<M>> = (0..n).map(|_| Vec::with_capacity(k)).collect();
        for _ in 0..k {
            self.metrics.record_round(RoundKind::Pull, n as u64);
            self.round += 1;
            let round = self.round;
            let (states, failure) = (&self.states, &self.failure);
            let sampler = &sampler;
            let reliable = failure.is_reliable();
            let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
            let delta = par::for_chunks(
                &self.pool,
                &mut collected,
                threads,
                Metrics::default(),
                |start, chunk| {
                    let mut local = Metrics::default();
                    if reliable {
                        // Dedicated no-failure loop: no coin, no model match.
                        for (j, bucket) in chunk.iter_mut().enumerate() {
                            let v = start + j;
                            local.record_attempt(RoundKind::Pull);
                            let mut rng = prefix.node(v as u64);
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            bucket.push(msg);
                        }
                    } else {
                        for (j, bucket) in chunk.iter_mut().enumerate() {
                            let v = start + j;
                            local.record_attempt(RoundKind::Pull);
                            let mut rng = prefix.node(v as u64);
                            if failure.fails(v, round, &mut rng) {
                                local.record_failure();
                                continue;
                            }
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            bucket.push(msg);
                        }
                    }
                    local
                },
                |a, b| a + b,
            );
            self.metrics = self.metrics + delta;
        }
        collected
    }

    /// [`Engine::collect_samples`] with flat, column-major storage: one
    /// allocation for the whole `n × k` sample matrix instead of `n`
    /// per-node vectors, with each sampling round writing one contiguous
    /// column (see [`crate::soa::SampleMatrix`]). Identical round
    /// accounting, RNG consumption and sample values — the tournament
    /// drivers use this as their sampling hot path.
    pub fn collect_samples_flat<M, F>(&mut self, k: usize, serve: F) -> crate::soa::SampleMatrix<M>
    where
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        with_sampler!(self, sp => self.collect_samples_flat_with(sp, k, serve))
    }

    /// [`Engine::collect_samples_flat`], monomorphised over the sampler type.
    fn collect_samples_flat_with<SP, M, F>(
        &mut self,
        sampler: SP,
        k: usize,
        serve: F,
    ) -> crate::soa::SampleMatrix<M>
    where
        SP: Sampler,
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        if self.fault.is_disruptive() {
            // The fault-aware sampling loop stays single-sourced; converting
            // its nested result costs O(n·k) moves on the rare faulted path.
            return crate::soa::SampleMatrix::from(self.collect_samples_faulty(sampler, k, serve));
        }
        let n = self.n();
        let threads = self.threads;
        let mut matrix = crate::soa::SampleMatrix::empty(n, k);
        for r in 0..k {
            self.metrics.record_round(RoundKind::Pull, n as u64);
            self.round += 1;
            let round = self.round;
            let (states, failure) = (&self.states, &self.failure);
            let sampler = &sampler;
            let reliable = failure.is_reliable();
            let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
            let delta = par::for_chunks(
                &self.pool,
                matrix.column_mut(r),
                threads,
                Metrics::default(),
                |start, chunk| {
                    let mut local = Metrics::default();
                    if reliable {
                        // Dedicated no-failure loop: no coin, no model match.
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let v = start + j;
                            local.record_attempt(RoundKind::Pull);
                            let mut rng = prefix.node(v as u64);
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            *slot = Some(msg);
                        }
                    } else {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let v = start + j;
                            local.record_attempt(RoundKind::Pull);
                            let mut rng = prefix.node(v as u64);
                            if failure.fails(v, round, &mut rng) {
                                local.record_failure();
                                *slot = None;
                                continue;
                            }
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            *slot = Some(msg);
                        }
                    }
                    local
                },
                |a, b| a + b,
            );
            self.metrics = self.metrics + delta;
        }
        matrix
    }

    /// One pull round in which every node samples a random peer and receives
    /// that peer's `lanes`-wide row of `lane_values` — the lane-major,
    /// allocation-free counterpart of
    /// `collect_samples(1, |t, _| lane_values[t*lanes..(t+1)*lanes].to_vec())`
    /// (the multi-query service's per-round shape).
    ///
    /// `lane_values` is a borrowed lane-major sheet (`n × lanes`, node `t`'s
    /// row at `t·lanes..(t+1)·lanes`), deliberately separate from the
    /// engine's own states so callers can gossip an external per-node lane
    /// buffer without round-tripping it through engine state. `out` must be
    /// an `n × lanes` [`LaneMatrix`]; its buffers are reused, never
    /// reallocated. Round accounting, RNG consumption and bit accounting are
    /// identical to the vector-serving call this replaces — a delivered row
    /// is charged as the `Vec` message it stands for, length prefix included
    /// ([`crate::message::seq_message_bits`]) — so answers *and* metrics stay
    /// bit-identical. Under a disruptive [`FaultPlan`] the round routes
    /// through the single-sourced fault-aware sampling loop and scatters its
    /// nested result (the rare, slow path).
    pub fn collect_lanes<V>(&mut self, lane_values: &[V], out: &mut LaneMatrix<V>)
    where
        V: MessageSize + Copy + Send + Sync,
    {
        let n = self.n();
        let lanes = out.lanes();
        assert_eq!(out.n(), n, "lane matrix row count must match the engine");
        assert_eq!(
            lane_values.len(),
            n * lanes,
            "lane buffer must be n × lanes"
        );
        if self.fault.is_disruptive() {
            let nested = with_sampler!(self, sp => self.collect_samples_faulty(sp, 1, |t, _| {
                LaneRow {
                    source: t as u32,
                    values: lane_values[t * lanes..(t + 1) * lanes].to_vec(),
                }
            }));
            out.reset_sources();
            let (values, sources) = out.parts_mut();
            for (v, bucket) in nested.into_iter().enumerate() {
                if let Some(m) = bucket.into_iter().next() {
                    sources[v] = m.source;
                    values[v * lanes..(v + 1) * lanes].copy_from_slice(&m.values);
                }
            }
            return;
        }
        self.metrics.record_round(RoundKind::Pull, n as u64);
        self.round += 1;
        let round = self.round;
        let threads = self.threads;
        let failure = &self.failure;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let pool = &self.pool;
        let (values, sources) = out.parts_mut();
        let delta = with_sampler!(self, sp => {
            let sampler = &sp;
            par::for_rows2(
                pool,
                values,
                lanes,
                sources,
                1,
                threads,
                Metrics::default(),
                |start, vchunk, schunk| {
                    let mut local = Metrics::default();
                    for (j, src) in schunk.iter_mut().enumerate() {
                        let v = start + j;
                        local.record_attempt(RoundKind::Pull);
                        let mut rng = prefix.node(v as u64);
                        if !reliable && failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            *src = LaneMatrix::<V>::NO_SOURCE;
                            continue;
                        }
                        let t = sampler.sample(&mut rng, v);
                        let row = &lane_values[t * lanes..(t + 1) * lanes];
                        local.record_delivery(crate::message::seq_message_bits(row));
                        *src = t as u32;
                        vchunk[j * lanes..(j + 1) * lanes].copy_from_slice(row);
                    }
                    local
                },
                |a, b| a + b,
            )
        });
        self.metrics = self.metrics + delta;
    }

    /// [`Engine::collect_lanes`] restricted to an [`ActiveSet`]: only the
    /// active nodes pull; every other row is left undelivered
    /// ([`LaneMatrix::NO_SOURCE`]). Sampling cost is `O(|active|)` plus the
    /// `O(n)` source-column reset; round accounting matches
    /// [`Engine::collect_samples_on`] (the round is consumed even by an
    /// empty active set).
    pub fn collect_lanes_on<V>(
        &mut self,
        active: &ActiveSet,
        lane_values: &[V],
        out: &mut LaneMatrix<V>,
    ) where
        V: MessageSize + Copy + Send + Sync,
    {
        let n = self.n();
        let lanes = out.lanes();
        assert_eq!(out.n(), n, "lane matrix row count must match the engine");
        assert_eq!(
            lane_values.len(),
            n * lanes,
            "lane buffer must be n × lanes"
        );
        if self.fault.is_disruptive() {
            // `collect_samples_on` re-checks the fault plan and takes its
            // single-sourced faulty loop; buckets align with the active ids.
            let nested = self.collect_samples_on(active, 1, |t, _| LaneRow {
                source: t as u32,
                values: lane_values[t * lanes..(t + 1) * lanes].to_vec(),
            });
            out.reset_sources();
            let (values, sources) = out.parts_mut();
            let ids = active.indices();
            for (rk, bucket) in nested.into_iter().enumerate() {
                if let Some(m) = bucket.into_iter().next() {
                    let v = ids[rk] as usize;
                    sources[v] = m.source;
                    values[v * lanes..(v + 1) * lanes].copy_from_slice(&m.values);
                }
            }
            return;
        }
        self.assert_active(active);
        out.reset_sources();
        self.metrics
            .record_round(RoundKind::Pull, active.len() as u64);
        self.round += 1;
        let round = self.round;
        let threads = self.threads;
        let failure = &self.failure;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let pool = &self.pool;
        let ids = active.indices();
        let (values, sources) = out.parts_mut();
        let delta = with_sampler!(self, sp => {
            let sampler = &sp;
            par::for_sparse_rows2(
                pool,
                values,
                lanes,
                sources,
                1,
                ids,
                threads,
                Metrics::default(),
                |ids, base, sub_v, sub_s| {
                    let mut local = Metrics::default();
                    for &vu in ids {
                        let v = vu as usize;
                        let rel = v - base;
                        local.record_attempt(RoundKind::Pull);
                        let mut rng = prefix.node(v as u64);
                        if !reliable && failure.fails(v, round, &mut rng) {
                            // The reset already marked the row undelivered.
                            local.record_failure();
                            continue;
                        }
                        let t = sampler.sample(&mut rng, v);
                        let row = &lane_values[t * lanes..(t + 1) * lanes];
                        local.record_delivery(crate::message::seq_message_bits(row));
                        sub_s[rel] = t as u32;
                        sub_v[rel * lanes..(rel + 1) * lanes].copy_from_slice(row);
                    }
                    local
                },
                |a, b| a + b,
            )
        });
        self.metrics = self.metrics + delta;
    }

    /// Computes, without executing anything, the pull target every node
    /// *would* draw in the given absolute round (the value [`Engine::round`]
    /// has **during** that round, i.e. `self.round() + 1` previews the next
    /// round). `out[v]` is `None` when `v`'s failure coin makes its pull fail
    /// that round (no target is drawn), `Some(t)` otherwise.
    ///
    /// Pull-target draws are keyed purely by `(seed, round, node)` on
    /// [`NodeRng::STREAM_ROUND`], so the preview is exact for any future (or
    /// past) round and is unaffected by sparse execution, payload contents, or
    /// thread count. Two caveats under a disruptive [`FaultPlan`]: a node
    /// that turns out to be crashed in that round draws nothing in reality
    /// (the preview still reports the target it would have drawn), and a
    /// contact that is lost in flight still had its target drawn exactly as
    /// previewed. Both make the preview a *superset* of realised contacts —
    /// what an incremental-recompute layer needs to bound which nodes a state
    /// change can influence.
    pub fn preview_pull_targets_at(&self, round: u64, out: &mut Vec<Option<NodeId>>) {
        let n = self.n();
        out.clear();
        out.reserve(n);
        let failure = &self.failure;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        with_sampler!(self, sp => {
            for v in 0..n {
                let mut rng = prefix.node(v as u64);
                if !reliable && failure.fails(v, round, &mut rng) {
                    out.push(None);
                } else {
                    out.push(Some(sp.sample(&mut rng, v)));
                }
            }
        });
    }

    // ------------------------------------------------------------------
    // Fault-aware round bodies.
    //
    // A disruptive [`FaultPlan`] (churn, message loss, or stragglers) routes
    // every primitive through the dedicated `_faulty` variant below instead
    // of threading extra branches through the hot loops: the fast and
    // failure-only loops above stay byte-identical (and so do their golden
    // trajectories), and all fault coins come from the dedicated RNG streams
    // (`STREAM_FAULT_*`), so the algorithm's own draws on `STREAM_ROUND` are
    // exactly the ones a fault-free run would make.
    //
    // Per-contact decision order (also documented on [`FaultPlan`]):
    // sender crashed → failure coin → target sampling → straggler coin
    // (push directions only) → loss coin → receiver crashed. Pull contacts
    // never straggle (a pull is a request/response within the round);
    // straggled pushes are buffered in `pending_delayed` and folded into the
    // first push-capable round at or after their due round, with the message
    // re-derived from the sender's state at arrival.
    // ------------------------------------------------------------------

    /// Advances the churn model to `round`: every currently-alive node draws
    /// its crash coin (from `STREAM_FAULT_CRASH`); nodes already down draw
    /// nothing until their rejoin round passes. Sequential `O(n)` — churn is
    /// an explicitly-opted-into fault mode, and the scan is a trivial
    /// fraction of a round's work.
    fn advance_churn(&mut self, round: u64) {
        let Some(churn) = self.fault.churn() else {
            return;
        };
        let p = churn.crash_probability();
        let rejoin = churn.rejoin_after();
        let n = self.states.len();
        if self.down_until.len() != n {
            self.down_until = vec![0; n];
        }
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_FAULT_CRASH);
        for (v, down) in self.down_until.iter_mut().enumerate() {
            if *down > round {
                continue;
            }
            let mut rng = prefix.node(v as u64);
            if rng.next_f64() < p {
                *down = rejoin.map_or(u64::MAX, |k| round.saturating_add(k));
            }
        }
    }

    /// Moves the straggled contacts due at `round` from `pending_delayed`
    /// into `due_scratch`, sorted receiver-major (stable: a receiver folds
    /// its late arrivals in send order). Contacts due to a crashed receiver
    /// are dropped here and counted as [`Metrics::messages_dropped`].
    fn collect_due(&mut self, round: u64) {
        self.due_scratch.clear();
        if self.pending_delayed.is_empty() {
            return;
        }
        let due = &mut self.due_scratch;
        let down = &self.down_until;
        let mut dropped = 0u64;
        self.pending_delayed.retain(|c| {
            if c.due > round {
                return true;
            }
            if down.is_empty() || down[c.receiver as usize] <= round {
                due.push((c.receiver, c.sender));
            } else {
                dropped += 1;
            }
            false
        });
        due.sort_by_key(|&(receiver, _)| receiver);
        for _ in 0..dropped {
            self.metrics.record_drop();
        }
    }

    /// [`Engine::pull_round`] under a disruptive fault plan.
    fn pull_round_faulty<SP, M, F, G>(&mut self, sampler: SP, serve: F, apply: G) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        self.metrics.record_round(RoundKind::Pull, self.n() as u64);
        self.round += 1;
        self.ensure_next();
        self.advance_churn(self.round);

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
        let ctx = &ctx;
        let delta = par::for_chunks(
            &self.pool,
            &mut self.next,
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let v = start + j;
                    // Crashed nodes keep their state (they resume from it on
                    // rejoin) but perform no operation.
                    slot.clone_from(&states[v]);
                    if !ctx.alive(v) {
                        local.record_crash();
                        continue;
                    }
                    let mut rng = prefix.node(v as u64);
                    local.record_attempt(RoundKind::Pull);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        apply(v, slot, None);
                        continue;
                    }
                    let t = sampler.sample(&mut rng, v);
                    if !ctx.alive(t) || ctx.lost(t, v) {
                        local.record_drop();
                        apply(v, slot, None);
                        continue;
                    }
                    let msg = serve(t, &states[t]);
                    local.record_delivery(msg.message_bits());
                    apply(v, slot, Some(msg));
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;
        std::mem::swap(&mut self.states, &mut self.next);
        delta.failed_operations as usize
    }

    /// [`Engine::push_round`] under a disruptive fault plan.
    fn push_round_faulty<SP, M, F, G, H>(
        &mut self,
        sampler: SP,
        make: F,
        fold: G,
        after: H,
    ) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
        H: Fn(NodeId, &mut S, bool) + Sync,
    {
        let n = self.n();
        self.metrics.record_round(RoundKind::Push, n as u64);
        self.round += 1;
        self.ensure_next();
        self.advance_churn(self.round);

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
        let ctx = &ctx;

        // Pass 1: as the reliable pass, plus the fault decisions. Straggled
        // pushes are collected per chunk and concatenated in chunk order by
        // the fold, so `pending_delayed` grows in ascending sender order at
        // any thread count.
        let (delta, mut new_pending) = par::for_chunks(
            &self.pool,
            &mut self.scratch_targets,
            threads,
            (Metrics::default(), Vec::new()),
            |start, chunk| {
                let mut local = Metrics::default();
                let mut pending: Vec<DelayedContact> = Vec::new();
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let v = start + j;
                    if !ctx.alive(v) {
                        *slot = TARGET_SILENT;
                        local.record_crash();
                        continue;
                    }
                    let msg = match make(v, &states[v]) {
                        Some(m) => m,
                        None => {
                            *slot = TARGET_SILENT;
                            continue;
                        }
                    };
                    local.record_attempt(RoundKind::Push);
                    let mut rng = prefix.node(v as u64);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        *slot = TARGET_FAILED;
                        continue;
                    }
                    let t = sampler.sample(&mut rng, v);
                    if let Some(d) = ctx.delay_of(v) {
                        pending.push(DelayedContact {
                            due: round + d,
                            receiver: t as u32,
                            sender: v as u32,
                        });
                        *slot = TARGET_DROPPED;
                        local.record_delay();
                        continue;
                    }
                    if !ctx.alive(t) || ctx.lost(v, t) {
                        *slot = TARGET_DROPPED;
                        local.record_drop();
                        continue;
                    }
                    local.record_delivery(msg.message_bits());
                    *slot = t as u32;
                }
                (local, pending)
            },
            |(ma, mut va), (mb, mut vb)| {
                va.append(&mut vb);
                (ma + mb, va)
            },
        );
        self.metrics = self.metrics + delta;
        // New entries are due strictly after `round`, so appending before the
        // drain is safe — they cannot be picked up by it.
        self.pending_delayed.append(&mut new_pending);
        self.collect_due(round);

        self.bucket_deliveries(n);
        let states = &self.states;
        let (targets, offsets, senders) = (
            &self.scratch_targets,
            &self.scratch_offsets,
            &self.scratch_senders,
        );
        let due = &self.due_scratch;
        let down = &self.down_until;
        let arrivals = par::for_chunks(
            &self.pool,
            &mut self.next,
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let u = start + j;
                    slot.clone_from(&states[u]);
                    let lo = offsets[u].load(Ordering::Relaxed) as usize;
                    let hi = offsets[u + 1].load(Ordering::Relaxed) as usize;
                    for s in &senders[lo..hi] {
                        let v = s.load(Ordering::Relaxed) as usize;
                        if let Some(msg) = make(v, &states[v]) {
                            fold(u, slot, msg);
                        }
                    }
                    if !due.is_empty() {
                        // Late arrivals land after this round's in-time
                        // deliveries, in send order; the message is
                        // re-derived from the sender's *current* state (a
                        // sender answering `None` now means the late message
                        // evaporates).
                        let dlo = due.partition_point(|&(r, _)| (r as usize) < u);
                        for &(_, s) in due[dlo..].iter().take_while(|&&(r, _)| (r as usize) == u) {
                            let v = s as usize;
                            if let Some(msg) = make(v, &states[v]) {
                                local.record_delivery(msg.message_bits());
                                fold(u, slot, msg);
                            }
                        }
                    }
                    // A crashed node performed nothing this round, so its
                    // `after` hook does not run.
                    if down.is_empty() || down[u] <= round {
                        after(u, slot, (targets[u] as usize) < n);
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + arrivals;
        std::mem::swap(&mut self.states, &mut self.next);
        delta.failed_operations as usize
    }

    /// [`Engine::push_pull_round`] under a disruptive fault plan.
    fn push_pull_round_faulty<SP, M, F, G>(&mut self, sampler: SP, serve: F, merge: G) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
    {
        let n = self.n();
        self.metrics.record_round(RoundKind::PushPull, n as u64);
        self.round += 1;
        self.ensure_next();
        self.advance_churn(self.round);

        let (round, threads) = (self.round, self.threads);
        let failure = &self.failure;
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
        let ctx = &ctx;

        // Pass 1: failure coin, pull target, push target — then the fault
        // decisions per direction. The two directions draw independent loss
        // coins (the pair key is ordered sender-then-receiver).
        let (delta, mut new_pending) = par::for_chunks2(
            &self.pool,
            &mut self.scratch_targets,
            &mut self.scratch_pull,
            threads,
            (Metrics::default(), Vec::new()),
            |start, push_chunk, pull_chunk| {
                let mut local = Metrics::default();
                let mut pending: Vec<DelayedContact> = Vec::new();
                for j in 0..push_chunk.len() {
                    let v = start + j;
                    if !ctx.alive(v) {
                        push_chunk[j] = TARGET_SILENT;
                        pull_chunk[j] = TARGET_SILENT;
                        local.record_crash();
                        continue;
                    }
                    local.record_attempt(RoundKind::PushPull);
                    let mut rng = prefix.node(v as u64);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        push_chunk[j] = TARGET_FAILED;
                        pull_chunk[j] = TARGET_FAILED;
                        continue;
                    }
                    let t_pull = sampler.sample(&mut rng, v);
                    let t_push = sampler.sample(&mut rng, v);
                    // Pull direction: the server `t_pull` answers `v`; pulls
                    // never straggle.
                    if !ctx.alive(t_pull) || ctx.lost(t_pull, v) {
                        local.record_drop();
                        pull_chunk[j] = TARGET_DROPPED;
                    } else {
                        pull_chunk[j] = t_pull as u32;
                    }
                    // Push direction: may straggle.
                    if let Some(d) = ctx.delay_of(v) {
                        pending.push(DelayedContact {
                            due: round + d,
                            receiver: t_push as u32,
                            sender: v as u32,
                        });
                        push_chunk[j] = TARGET_DROPPED;
                        local.record_delay();
                    } else if !ctx.alive(t_push) || ctx.lost(v, t_push) {
                        push_chunk[j] = TARGET_DROPPED;
                        local.record_drop();
                    } else {
                        push_chunk[j] = t_push as u32;
                    }
                }
                (local, pending)
            },
            |(ma, mut va), (mb, mut vb)| {
                va.append(&mut vb);
                (ma + mb, va)
            },
        );
        self.metrics = self.metrics + delta;
        self.pending_delayed.append(&mut new_pending);
        self.collect_due(round);

        self.bucket_deliveries(n);
        let states = &self.states;
        let (pulls, offsets, senders) = (
            &self.scratch_pull,
            &self.scratch_offsets,
            &self.scratch_senders,
        );
        let due = &self.due_scratch;
        let deliveries = par::for_chunks(
            &self.pool,
            &mut self.next,
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let u = start + j;
                    slot.clone_from(&states[u]);
                    let t_pull = pulls[u];
                    if (t_pull as usize) < n {
                        let t = t_pull as usize;
                        let msg = serve(t, &states[t]);
                        local.record_delivery(msg.message_bits());
                        merge(u, slot, msg);
                    }
                    let lo = offsets[u].load(Ordering::Relaxed) as usize;
                    let hi = offsets[u + 1].load(Ordering::Relaxed) as usize;
                    for s in &senders[lo..hi] {
                        let v = s.load(Ordering::Relaxed) as usize;
                        let msg = serve(v, &states[v]);
                        local.record_delivery(msg.message_bits());
                        merge(u, slot, msg);
                    }
                    if !due.is_empty() {
                        let dlo = due.partition_point(|&(r, _)| (r as usize) < u);
                        for &(_, s) in due[dlo..].iter().take_while(|&&(r, _)| (r as usize) == u) {
                            let v = s as usize;
                            let msg = serve(v, &states[v]);
                            local.record_delivery(msg.message_bits());
                            merge(u, slot, msg);
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + deliveries;
        std::mem::swap(&mut self.states, &mut self.next);
        delta.failed_operations as usize
    }

    /// [`Engine::collect_samples`] under a disruptive fault plan.
    fn collect_samples_faulty<SP, M, F>(&mut self, sampler: SP, k: usize, serve: F) -> Vec<Vec<M>>
    where
        SP: Sampler,
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        let n = self.n();
        let threads = self.threads;
        let mut collected: Vec<Vec<M>> = (0..n).map(|_| Vec::with_capacity(k)).collect();
        for _ in 0..k {
            self.metrics.record_round(RoundKind::Pull, n as u64);
            self.round += 1;
            self.advance_churn(self.round);
            let round = self.round;
            let (states, failure) = (&self.states, &self.failure);
            let sampler = &sampler;
            let reliable = failure.is_reliable();
            let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
            let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
            let ctx = &ctx;
            let delta = par::for_chunks(
                &self.pool,
                &mut collected,
                threads,
                Metrics::default(),
                |start, chunk| {
                    let mut local = Metrics::default();
                    for (j, bucket) in chunk.iter_mut().enumerate() {
                        let v = start + j;
                        if !ctx.alive(v) {
                            local.record_crash();
                            continue;
                        }
                        local.record_attempt(RoundKind::Pull);
                        let mut rng = prefix.node(v as u64);
                        if !reliable && failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            continue;
                        }
                        let t = sampler.sample(&mut rng, v);
                        if !ctx.alive(t) || ctx.lost(t, v) {
                            local.record_drop();
                            continue;
                        }
                        let msg = serve(t, &states[t]);
                        local.record_delivery(msg.message_bits());
                        bucket.push(msg);
                    }
                    local
                },
                |a, b| a + b,
            );
            self.metrics = self.metrics + delta;
        }
        collected
    }

    /// Counting-sorts senders into per-receiver CSR buckets: deliveries for
    /// receiver `u` end up in `senders[offsets[u]..offsets[u + 1]]`, in
    /// ascending sender order (the sort is stable). Entries of `targets` that
    /// are not valid node ids (the sentinels) are skipped.
    ///
    /// Below [`Engine::PAR_MIN_NODES`] (or at one thread) this is the
    /// sequential two-pass counting sort; above it, the parallel
    /// histogram/scan/placement pipeline of [`Engine::bucket_parallel`]. Both
    /// produce the identical `offsets`/`senders` contents, so the choice is
    /// invisible in results.
    fn bucket_deliveries(&mut self, n: usize) {
        let threads = self.threads.clamp(1, n);
        if threads > 1 && n >= Self::PAR_MIN_NODES {
            self.bucket_parallel(n, threads);
        } else {
            self.bucket_sequential(n);
        }
    }

    /// The sequential counting sort: two linear passes over `u32` buffers.
    /// (`get_mut` accesses — this thread owns the buffers exclusively.)
    fn bucket_sequential(&mut self, n: usize) {
        let offsets = &mut self.scratch_offsets[..=n];
        for o in offsets.iter_mut() {
            *o.get_mut() = 0;
        }
        for &t in &self.scratch_targets {
            if (t as usize) < n {
                *offsets[t as usize + 1].get_mut() += 1;
            }
        }
        for u in 0..n {
            let prev = *offsets[u].get_mut();
            *offsets[u + 1].get_mut() += prev;
        }
        for (cursor, offset) in self.scratch_cursors[..n].iter_mut().zip(offsets.iter_mut()) {
            *cursor.get_mut() = *offset.get_mut();
        }
        for (v, &t) in self.scratch_targets.iter().enumerate() {
            if (t as usize) < n {
                let c = self.scratch_cursors[t as usize].get_mut();
                let pos = *c;
                *c = pos + 1;
                *self.scratch_senders[pos as usize].get_mut() = v as u32;
            }
        }
    }

    /// Caps the parallel bucketing's sender-chunk count. The scan and cursor
    /// matrices are `chunks × n`, so the chunk count bounds both their memory
    /// and the scan's total work (`Θ(chunks · n)`) independently of the
    /// engine's (up to 256) worker threads; past ~8 chunks the bucketing is
    /// memory-bound anyway, so extra chunks would add scratch and scan
    /// traffic without adding speed.
    const MAX_CSR_CHUNKS: usize = 8;

    /// The parallel bucketing pipeline: per-chunk histograms, an exclusive
    /// prefix scan over power-of-two receiver ranges, and chunk-major
    /// placement.
    ///
    /// Stability argument: receiver `u`'s bucket is laid out as the
    /// concatenation of per-sender-chunk spans in ascending chunk order (the
    /// scan hands chunk `c` the cursor base `offsets[u] + Σ_{c' < c}
    /// hist[c'][u]`), and each chunk places its senders in ascending order
    /// within its span — so the bucket is globally ascending in sender id,
    /// exactly what the sequential counting sort produces.
    ///
    /// All cross-task buffers are `AtomicU32` with `Relaxed` accesses: within
    /// a pass every slot has exactly one writer, and the pool's quiescence
    /// barrier orders the passes.
    fn bucket_parallel(&mut self, n: usize, threads: usize) {
        let chunk_len = n.div_ceil(threads.min(Self::MAX_CSR_CHUNKS));
        let chunks = n.div_ceil(chunk_len);
        // Power-of-two receiver ranges, so the histogram pass can bin each
        // target into its range with a shift instead of a division.
        let range_len = chunk_len.next_power_of_two();
        let shift = range_len.trailing_zeros();
        let ranges = n.div_ceil(range_len);

        let hist_len = chunks * n;
        if self.scratch_hist.len() < hist_len {
            self.scratch_hist.resize(hist_len, 0);
        }
        if self.scratch_cursors.len() < hist_len {
            self.scratch_cursors
                .resize_with(hist_len, || AtomicU32::new(0));
        }

        // Pass A: per-chunk histograms (task `c` owns `hist[c·n .. (c+1)·n]`)
        // plus per-range subtotals for the scan bases, returned through the
        // chunk-order fold.
        let targets = &self.scratch_targets;
        let range_rows = par::for_chunks(
            &self.pool,
            &mut self.scratch_hist[..hist_len],
            chunks,
            Vec::new(),
            |start, hist_chunk| {
                let c = start / n;
                hist_chunk.fill(0);
                let mut row = vec![0u32; ranges];
                let lo = c * chunk_len;
                let hi = ((c + 1) * chunk_len).min(n);
                for &t in &targets[lo..hi] {
                    if (t as usize) < n {
                        hist_chunk[t as usize] += 1;
                        row[(t >> shift) as usize] += 1;
                    }
                }
                vec![row]
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );

        // Exclusive scan of the range totals — O(threads²) sequential work.
        let mut range_base = vec![0u32; ranges + 1];
        for r in 0..ranges {
            let total: u32 = range_rows.iter().map(|row| row[r]).sum();
            range_base[r + 1] = range_base[r] + total;
        }

        // Pass B: per-range exclusive scan, writing every receiver's bucket
        // offset and every (chunk, receiver) placement cursor. The loops run
        // chunk-column-major so every sweep touches a contiguous slice of the
        // chunk-major matrices (a receiver-major inner loop would make every
        // store a stride-`n` cache miss).
        let hist = &self.scratch_hist;
        let offsets = &self.scratch_offsets;
        let cursors = &self.scratch_cursors;
        let base = &range_base;
        self.pool.run(ranges, &|r| {
            let lo = r << shift;
            let hi = ((r + 1) << shift).min(n);
            // offsets[u] ← Σ_c hist[c][u], one contiguous sweep per chunk…
            for (offset, &h) in offsets[lo..hi].iter().zip(&hist[lo..hi]) {
                offset.store(h, Ordering::Relaxed);
            }
            for c in 1..chunks {
                for u in lo..hi {
                    let sum = offsets[u].load(Ordering::Relaxed) + hist[c * n + u];
                    offsets[u].store(sum, Ordering::Relaxed);
                }
            }
            // …then the exclusive scan over the range…
            let mut running = base[r];
            for offset in &offsets[lo..hi] {
                let total = offset.load(Ordering::Relaxed);
                offset.store(running, Ordering::Relaxed);
                running += total;
            }
            // …and the cursor columns: chunk c's base for receiver u is
            // offsets[u] + Σ_{c' < c} hist[c'][u].
            for u in lo..hi {
                cursors[u].store(offsets[u].load(Ordering::Relaxed), Ordering::Relaxed);
            }
            for c in 1..chunks {
                for u in lo..hi {
                    let prev =
                        cursors[(c - 1) * n + u].load(Ordering::Relaxed) + hist[(c - 1) * n + u];
                    cursors[c * n + u].store(prev, Ordering::Relaxed);
                }
            }
        });
        offsets[n].store(range_base[ranges], Ordering::Relaxed);

        // Pass C: chunk-major stable placement (task `c` advances only its
        // own cursor column and writes only its senders' reserved slots).
        let senders = &self.scratch_senders;
        self.pool.run(chunks, &|c| {
            let lo = c * chunk_len;
            let hi = ((c + 1) * chunk_len).min(n);
            for (dv, &t) in targets[lo..hi].iter().enumerate() {
                let (v, t) = (lo + dv, t as usize);
                if t < n {
                    let cursor = &cursors[c * n + t];
                    let pos = cursor.load(Ordering::Relaxed);
                    senders[pos as usize].store(v as u32, Ordering::Relaxed);
                    cursor.store(pos + 1, Ordering::Relaxed);
                }
            }
        });
    }
}

/// ## Sparse rounds: active sets and copy-on-write buffers
///
/// The `*_on` primitives are the participant-proportional counterparts of the
/// dense rounds: they take an [`ActiveSet`] and dispatch pool chunks over the
/// active indices only ([`crate::par::for_sparse`]), so a round over `a`
/// participants costs `O(a)` (plus `O(messages)` delivery work on the push
/// paths) instead of `O(n)`. Peer *targets* are still sampled from the full
/// topology neighbourhood — sparseness restricts who acts, not who can be
/// contacted.
///
/// Instead of the dense rounds' whole-buffer clone into `next`, sparse rounds
/// are **copy-on-write**: only the round's *written set* — the active nodes
/// (pull) or active ∪ receivers (push paths) — is cloned into the back
/// buffer, updated there against the immutable front buffer, and committed by
/// swapping exactly those slots back (an `O(|written|)` pass;
/// [`crate::par::for_sparse2`]). The front buffer therefore stays fully
/// current at all times — dense and sparse rounds interleave freely — and
/// untouched slots are never cloned, read, or written. (A design with an
/// `O(1)` whole-buffer swap plus per-node epoch stamps was rejected: resolving
/// stale slots through stamps makes peer reads alias the buffer being
/// written, which cannot be expressed under this crate's `deny(unsafe_code)`
/// discipline — and the slot-swap commit is already proportional to the
/// participants, which is the property that matters.)
///
/// Push deliveries are bucketed over the **sparse message set**: a
/// `(receiver, sender)` pair list sized by the number of messages, sorted
/// receiver-major (unique keys, so the unstable sort is deterministic and
/// yields the dense paths' ascending-sender fold order) — never the dense
/// `O(n)` CSR offsets array.
///
/// A sparse round over [`ActiveSet::full`] is **bit-identical** to its dense
/// counterpart — same RNG keys per node, same fold order, same metrics — as
/// pinned against the golden trajectories by `tests/sparse.rs`.
impl<S: Clone + Send + Sync> Engine<S> {
    /// [`Engine::pull_round`] restricted to an [`ActiveSet`]: only active
    /// nodes pull (each contacting a uniformly random neighbour and folding
    /// the served message through `apply`); every other node's state is
    /// carried over untouched. Cost: `O(|active|)`.
    ///
    /// Returns the number of active nodes whose pull failed.
    ///
    /// # Panics
    ///
    /// Panics if `active` was built for a different network size.
    pub fn pull_round_on<M, F, G>(&mut self, active: &ActiveSet, serve: F, apply: G) -> usize
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        with_sampler!(self, sp => self.pull_round_on_with(sp, active, serve, apply))
    }

    /// [`Engine::pull_round_on`], monomorphised over the sampler type.
    fn pull_round_on_with<SP, M, F, G>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        serve: F,
        apply: G,
    ) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        if self.fault.is_disruptive() {
            return self.pull_round_on_faulty(sampler, active, serve, apply);
        }
        self.assert_active(active);
        self.metrics
            .record_round(RoundKind::Pull, active.len() as u64);
        self.round += 1;
        self.ensure_next();

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let delta = par::for_sparse(
            &self.pool,
            &mut self.next,
            active.indices(),
            threads,
            Metrics::default(),
            |ids, base, sub| {
                let mut local = Metrics::default();
                if reliable {
                    for &id in ids {
                        let v = id as usize;
                        let slot = &mut sub[v - base];
                        slot.clone_from(&states[v]);
                        let mut rng = prefix.node(v as u64);
                        local.record_attempt(RoundKind::Pull);
                        let t = sampler.sample(&mut rng, v);
                        let msg = serve(t, &states[t]);
                        local.record_delivery(msg.message_bits());
                        apply(v, slot, Some(msg));
                    }
                } else {
                    for &id in ids {
                        let v = id as usize;
                        let slot = &mut sub[v - base];
                        slot.clone_from(&states[v]);
                        let mut rng = prefix.node(v as u64);
                        local.record_attempt(RoundKind::Pull);
                        if failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            apply(v, slot, None);
                        } else {
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            apply(v, slot, Some(msg));
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;
        self.commit_written(active.indices());
        delta.failed_operations as usize
    }

    /// [`Engine::push_round`] restricted to an [`ActiveSet`]: only active
    /// nodes derive and push messages; receivers (any node of the network)
    /// fold what they were sent, and `after` runs for the **active** nodes
    /// only. Cost: `O(|active| + messages)`.
    ///
    /// # Panics
    ///
    /// Panics if `active` was built for a different network size.
    pub fn push_round_on<M, F, G, H>(
        &mut self,
        active: &ActiveSet,
        make: F,
        fold: G,
        after: H,
    ) -> SparsePushOutcome
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
        H: Fn(NodeId, &mut S, bool) + Sync,
    {
        with_sampler!(self, sp => self.push_round_on_with(sp, active, make, fold, after))
    }

    /// [`Engine::push_round_on`], monomorphised over the sampler type.
    fn push_round_on_with<SP, M, F, G, H>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        make: F,
        fold: G,
        after: H,
    ) -> SparsePushOutcome
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
        H: Fn(NodeId, &mut S, bool) + Sync,
    {
        if self.fault.is_disruptive() {
            return self.push_round_on_faulty(sampler, active, make, fold, after);
        }
        self.assert_active(active);
        let n = self.n();
        let m = active.len();
        self.metrics.record_round(RoundKind::Push, m as u64);
        self.round += 1;
        self.ensure_next();
        if self.scratch_compact.len() < m {
            self.scratch_compact.resize(m, 0);
        }

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ids = active.indices();

        // Pass 1: every active sender decides its outcome (silent / failed /
        // target) into the compact scratch, aligned with the active indices.
        let delta = par::for_chunks(
            &self.pool,
            &mut self.scratch_compact[..m],
            threads,
            Metrics::default(),
            |start, chunk| {
                let mut local = Metrics::default();
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let v = ids[start + j] as usize;
                    let msg = match make(v, &states[v]) {
                        Some(m) => m,
                        None => {
                            *slot = TARGET_SILENT;
                            continue;
                        }
                    };
                    local.record_attempt(RoundKind::Push);
                    let mut rng = prefix.node(v as u64);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        *slot = TARGET_FAILED;
                    } else {
                        let t = sampler.sample(&mut rng, v);
                        local.record_delivery(msg.message_bits());
                        *slot = t as u32;
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;

        // Bucket the sparse message set and assemble the written set.
        let receivers = self.bucket_sparse(active);

        // Pass 2: clone every written node into the back buffer, fold its
        // deliveries (ascending sender order), and run `after` on the active
        // members.
        let states = &self.states;
        let (pairs, compact) = (&self.scratch_pairs, &self.scratch_compact[..m]);
        let dist = self.prefetch_dist;
        par::for_sparse(
            &self.pool,
            &mut self.next,
            &self.scratch_written,
            threads,
            (),
            |wids, base, sub| {
                for &id in wids {
                    let u = id as usize;
                    let slot = &mut sub[u - base];
                    slot.clone_from(&states[u]);
                    let lo = pairs.partition_point(|&(r, _)| r < id);
                    let hi = pairs.partition_point(|&(r, _)| r <= id);
                    for k in lo..hi {
                        // The pair list is sorted by receiver, so the sender
                        // column is a random gather; hint the read `dist`
                        // entries ahead (possibly past this receiver's run —
                        // a neighbouring run's sender is still a useful
                        // warm-up).
                        if dist > 0 && k + dist < pairs.len() {
                            crate::soa::prefetch_read(&states[pairs[k + dist].1 as usize]);
                        }
                        let v = pairs[k].1 as usize;
                        if let Some(msg) = make(v, &states[v]) {
                            fold(u, slot, msg);
                        }
                    }
                    if let Some(rank) = active.rank(u) {
                        after(u, slot, (compact[rank] as usize) < n);
                    }
                }
            },
            |(), ()| (),
        );
        let written = std::mem::take(&mut self.scratch_written);
        self.commit_written(&written);
        self.scratch_written = written;
        SparsePushOutcome {
            failed: delta.failed_operations as usize,
            receivers,
        }
    }

    /// [`Engine::push_pull_round`] restricted to an [`ActiveSet`]: only
    /// active nodes push **and** pull this round (one round on the meter,
    /// both directions); receivers of pushes fold the served messages as in
    /// the dense primitive. Cost: `O(|active| + messages)`.
    ///
    /// # Panics
    ///
    /// Panics if `active` was built for a different network size.
    pub fn push_pull_round_on<M, F, G>(
        &mut self,
        active: &ActiveSet,
        serve: F,
        merge: G,
    ) -> SparsePushOutcome
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
    {
        with_sampler!(self, sp => self.push_pull_round_on_with(sp, active, serve, merge))
    }

    /// [`Engine::push_pull_round_on`], monomorphised over the sampler type.
    fn push_pull_round_on_with<SP, M, F, G>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        serve: F,
        merge: G,
    ) -> SparsePushOutcome
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
    {
        if self.fault.is_disruptive() {
            return self.push_pull_round_on_faulty(sampler, active, serve, merge);
        }
        self.assert_active(active);
        let m = active.len();
        self.metrics.record_round(RoundKind::PushPull, m as u64);
        self.round += 1;
        self.ensure_next();
        if self.scratch_compact.len() < m {
            self.scratch_compact.resize(m, 0);
        }
        if self.scratch_compact2.len() < m {
            self.scratch_compact2.resize(m, 0);
        }

        let (round, threads) = (self.round, self.threads);
        let failure = &self.failure;
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ids = active.indices();

        // Pass 1: every active node draws its failure coin, pull target, push
        // target (the dense primitive's draw order), into the compact
        // scratches.
        let delta = par::for_chunks2(
            &self.pool,
            &mut self.scratch_compact[..m],
            &mut self.scratch_compact2[..m],
            threads,
            Metrics::default(),
            |start, push_chunk, pull_chunk| {
                let mut local = Metrics::default();
                if reliable {
                    for j in 0..push_chunk.len() {
                        let v = ids[start + j] as usize;
                        local.record_attempt(RoundKind::PushPull);
                        let mut rng = prefix.node(v as u64);
                        pull_chunk[j] = sampler.sample(&mut rng, v) as u32;
                        push_chunk[j] = sampler.sample(&mut rng, v) as u32;
                    }
                } else {
                    for j in 0..push_chunk.len() {
                        let v = ids[start + j] as usize;
                        local.record_attempt(RoundKind::PushPull);
                        let mut rng = prefix.node(v as u64);
                        if failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            push_chunk[j] = TARGET_FAILED;
                            pull_chunk[j] = TARGET_FAILED;
                        } else {
                            pull_chunk[j] = sampler.sample(&mut rng, v) as u32;
                            push_chunk[j] = sampler.sample(&mut rng, v) as u32;
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;

        let receivers = self.bucket_sparse(active);

        // Pass 2: clone every written node, merge its pulled message first
        // (active members only), then the pushed ones in ascending sender
        // order.
        let states = &self.states;
        let (pairs, pulls) = (&self.scratch_pairs, &self.scratch_compact2[..m]);
        let dist = self.prefetch_dist;
        let deliveries = par::for_sparse(
            &self.pool,
            &mut self.next,
            &self.scratch_written,
            threads,
            Metrics::default(),
            |wids, base, sub| {
                let mut local = Metrics::default();
                for &id in wids {
                    let u = id as usize;
                    let slot = &mut sub[u - base];
                    slot.clone_from(&states[u]);
                    if let Some(rank) = active.rank(u) {
                        let t_pull = pulls[rank];
                        if t_pull != TARGET_FAILED {
                            let t = t_pull as usize;
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            merge(u, slot, msg);
                        }
                    }
                    let lo = pairs.partition_point(|&(r, _)| r < id);
                    let hi = pairs.partition_point(|&(r, _)| r <= id);
                    for k in lo..hi {
                        if dist > 0 && k + dist < pairs.len() {
                            crate::soa::prefetch_read(&states[pairs[k + dist].1 as usize]);
                        }
                        let v = pairs[k].1 as usize;
                        let msg = serve(v, &states[v]);
                        local.record_delivery(msg.message_bits());
                        merge(u, slot, msg);
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + deliveries;
        let written = std::mem::take(&mut self.scratch_written);
        self.commit_written(&written);
        self.scratch_written = written;
        SparsePushOutcome {
            failed: delta.failed_operations as usize,
            receivers,
        }
    }

    /// [`Engine::collect_samples`] restricted to an [`ActiveSet`]: `k`
    /// consecutive pull rounds in which only the active nodes sample. Cost:
    /// `O(k·|active|)`.
    ///
    /// Returns one bucket per **active** node, aligned with
    /// [`ActiveSet::indices`] (use [`ActiveSet::rank`] to look a member's
    /// bucket up by node id); over the full set the layout coincides with the
    /// dense primitive's per-node vector. Node states are untouched.
    pub fn collect_samples_on<M, F>(
        &mut self,
        active: &ActiveSet,
        k: usize,
        serve: F,
    ) -> Vec<Vec<M>>
    where
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        with_sampler!(self, sp => self.collect_samples_on_with(sp, active, k, serve))
    }

    /// [`Engine::collect_samples_on`], monomorphised over the sampler type.
    fn collect_samples_on_with<SP, M, F>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        k: usize,
        serve: F,
    ) -> Vec<Vec<M>>
    where
        SP: Sampler,
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        if self.fault.is_disruptive() {
            return self.collect_samples_on_faulty(sampler, active, k, serve);
        }
        self.assert_active(active);
        let m = active.len();
        let threads = self.threads;
        let ids = active.indices();
        let mut collected: Vec<Vec<M>> = (0..m).map(|_| Vec::with_capacity(k)).collect();
        for _ in 0..k {
            self.metrics.record_round(RoundKind::Pull, m as u64);
            self.round += 1;
            let round = self.round;
            let (states, failure) = (&self.states, &self.failure);
            let sampler = &sampler;
            let reliable = failure.is_reliable();
            let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
            let delta = par::for_chunks(
                &self.pool,
                &mut collected,
                threads,
                Metrics::default(),
                |start, chunk| {
                    let mut local = Metrics::default();
                    if reliable {
                        for (j, bucket) in chunk.iter_mut().enumerate() {
                            let v = ids[start + j] as usize;
                            local.record_attempt(RoundKind::Pull);
                            let mut rng = prefix.node(v as u64);
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            bucket.push(msg);
                        }
                    } else {
                        for (j, bucket) in chunk.iter_mut().enumerate() {
                            let v = ids[start + j] as usize;
                            local.record_attempt(RoundKind::Pull);
                            let mut rng = prefix.node(v as u64);
                            if failure.fails(v, round, &mut rng) {
                                local.record_failure();
                                continue;
                            }
                            let t = sampler.sample(&mut rng, v);
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            bucket.push(msg);
                        }
                    }
                    local
                },
                |a, b| a + b,
            );
            self.metrics = self.metrics + delta;
        }
        collected
    }

    /// [`Engine::pull_round_on`] under a disruptive fault plan. Crash
    /// bookkeeping is restricted to the active members (a crashed *inactive*
    /// node does nothing either way, so nothing is counted for it).
    fn pull_round_on_faulty<SP, M, F, G>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        serve: F,
        apply: G,
    ) -> usize
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, Option<M>) + Sync,
    {
        self.assert_active(active);
        self.metrics
            .record_round(RoundKind::Pull, active.len() as u64);
        self.round += 1;
        self.ensure_next();
        self.advance_churn(self.round);

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
        let ctx = &ctx;
        let delta = par::for_sparse(
            &self.pool,
            &mut self.next,
            active.indices(),
            threads,
            Metrics::default(),
            |ids, base, sub| {
                let mut local = Metrics::default();
                for &id in ids {
                    let v = id as usize;
                    let slot = &mut sub[v - base];
                    slot.clone_from(&states[v]);
                    if !ctx.alive(v) {
                        local.record_crash();
                        continue;
                    }
                    let mut rng = prefix.node(v as u64);
                    local.record_attempt(RoundKind::Pull);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        apply(v, slot, None);
                        continue;
                    }
                    let t = sampler.sample(&mut rng, v);
                    if !ctx.alive(t) || ctx.lost(t, v) {
                        local.record_drop();
                        apply(v, slot, None);
                        continue;
                    }
                    let msg = serve(t, &states[t]);
                    local.record_delivery(msg.message_bits());
                    apply(v, slot, Some(msg));
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + delta;
        self.commit_written(active.indices());
        delta.failed_operations as usize
    }

    /// [`Engine::push_round_on`] under a disruptive fault plan.
    fn push_round_on_faulty<SP, M, F, G, H>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        make: F,
        fold: G,
        after: H,
    ) -> SparsePushOutcome
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
        H: Fn(NodeId, &mut S, bool) + Sync,
    {
        self.assert_active(active);
        let n = self.n();
        let m = active.len();
        self.metrics.record_round(RoundKind::Push, m as u64);
        self.round += 1;
        self.ensure_next();
        self.advance_churn(self.round);
        if self.scratch_compact.len() < m {
            self.scratch_compact.resize(m, 0);
        }

        let (round, threads) = (self.round, self.threads);
        let (states, failure) = (&self.states, &self.failure);
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ids = active.indices();
        let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
        let ctx = &ctx;

        let (delta, mut new_pending) = par::for_chunks(
            &self.pool,
            &mut self.scratch_compact[..m],
            threads,
            (Metrics::default(), Vec::new()),
            |start, chunk| {
                let mut local = Metrics::default();
                let mut pending: Vec<DelayedContact> = Vec::new();
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let v = ids[start + j] as usize;
                    if !ctx.alive(v) {
                        *slot = TARGET_SILENT;
                        local.record_crash();
                        continue;
                    }
                    let msg = match make(v, &states[v]) {
                        Some(m) => m,
                        None => {
                            *slot = TARGET_SILENT;
                            continue;
                        }
                    };
                    local.record_attempt(RoundKind::Push);
                    let mut rng = prefix.node(v as u64);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        *slot = TARGET_FAILED;
                        continue;
                    }
                    let t = sampler.sample(&mut rng, v);
                    if let Some(d) = ctx.delay_of(v) {
                        pending.push(DelayedContact {
                            due: round + d,
                            receiver: t as u32,
                            sender: v as u32,
                        });
                        *slot = TARGET_DROPPED;
                        local.record_delay();
                        continue;
                    }
                    if !ctx.alive(t) || ctx.lost(v, t) {
                        *slot = TARGET_DROPPED;
                        local.record_drop();
                        continue;
                    }
                    local.record_delivery(msg.message_bits());
                    *slot = t as u32;
                }
                (local, pending)
            },
            |(ma, mut va), (mb, mut vb)| {
                va.append(&mut vb);
                (ma + mb, va)
            },
        );
        self.metrics = self.metrics + delta;
        self.pending_delayed.append(&mut new_pending);
        self.collect_due(round);

        let receivers = self.bucket_sparse(active);
        let receivers = self.merge_due_receivers(receivers);

        let states = &self.states;
        let (pairs, compact) = (&self.scratch_pairs, &self.scratch_compact[..m]);
        let due = &self.due_scratch;
        let down = &self.down_until;
        let arrivals = par::for_sparse(
            &self.pool,
            &mut self.next,
            &self.scratch_written,
            threads,
            Metrics::default(),
            |wids, base, sub| {
                let mut local = Metrics::default();
                for &id in wids {
                    let u = id as usize;
                    let slot = &mut sub[u - base];
                    slot.clone_from(&states[u]);
                    let lo = pairs.partition_point(|&(r, _)| r < id);
                    let hi = pairs.partition_point(|&(r, _)| r <= id);
                    for &(_, s) in &pairs[lo..hi] {
                        let v = s as usize;
                        if let Some(msg) = make(v, &states[v]) {
                            fold(u, slot, msg);
                        }
                    }
                    if !due.is_empty() {
                        let dlo = due.partition_point(|&(r, _)| r < id);
                        for &(_, s) in due[dlo..].iter().take_while(|&&(r, _)| r == id) {
                            let v = s as usize;
                            if let Some(msg) = make(v, &states[v]) {
                                local.record_delivery(msg.message_bits());
                                fold(u, slot, msg);
                            }
                        }
                    }
                    if let Some(rank) = active.rank(u) {
                        if down.is_empty() || down[u] <= round {
                            after(u, slot, (compact[rank] as usize) < n);
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + arrivals;
        let written = std::mem::take(&mut self.scratch_written);
        self.commit_written(&written);
        self.scratch_written = written;
        SparsePushOutcome {
            failed: delta.failed_operations as usize,
            receivers,
        }
    }

    /// [`Engine::push_pull_round_on`] under a disruptive fault plan.
    fn push_pull_round_on_faulty<SP, M, F, G>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        serve: F,
        merge: G,
    ) -> SparsePushOutcome
    where
        SP: Sampler,
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync,
        G: Fn(NodeId, &mut S, M) + Sync,
    {
        self.assert_active(active);
        let n = self.n();
        let m = active.len();
        self.metrics.record_round(RoundKind::PushPull, m as u64);
        self.round += 1;
        self.ensure_next();
        self.advance_churn(self.round);
        if self.scratch_compact.len() < m {
            self.scratch_compact.resize(m, 0);
        }
        if self.scratch_compact2.len() < m {
            self.scratch_compact2.resize(m, 0);
        }

        let (round, threads) = (self.round, self.threads);
        let failure = &self.failure;
        let sampler = &sampler;
        let reliable = failure.is_reliable();
        let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
        let ids = active.indices();
        let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
        let ctx = &ctx;

        let (delta, mut new_pending) = par::for_chunks2(
            &self.pool,
            &mut self.scratch_compact[..m],
            &mut self.scratch_compact2[..m],
            threads,
            (Metrics::default(), Vec::new()),
            |start, push_chunk, pull_chunk| {
                let mut local = Metrics::default();
                let mut pending: Vec<DelayedContact> = Vec::new();
                for j in 0..push_chunk.len() {
                    let v = ids[start + j] as usize;
                    if !ctx.alive(v) {
                        push_chunk[j] = TARGET_SILENT;
                        pull_chunk[j] = TARGET_SILENT;
                        local.record_crash();
                        continue;
                    }
                    local.record_attempt(RoundKind::PushPull);
                    let mut rng = prefix.node(v as u64);
                    if !reliable && failure.fails(v, round, &mut rng) {
                        local.record_failure();
                        push_chunk[j] = TARGET_FAILED;
                        pull_chunk[j] = TARGET_FAILED;
                        continue;
                    }
                    let t_pull = sampler.sample(&mut rng, v);
                    let t_push = sampler.sample(&mut rng, v);
                    if !ctx.alive(t_pull) || ctx.lost(t_pull, v) {
                        local.record_drop();
                        pull_chunk[j] = TARGET_DROPPED;
                    } else {
                        pull_chunk[j] = t_pull as u32;
                    }
                    if let Some(d) = ctx.delay_of(v) {
                        pending.push(DelayedContact {
                            due: round + d,
                            receiver: t_push as u32,
                            sender: v as u32,
                        });
                        push_chunk[j] = TARGET_DROPPED;
                        local.record_delay();
                    } else if !ctx.alive(t_push) || ctx.lost(v, t_push) {
                        push_chunk[j] = TARGET_DROPPED;
                        local.record_drop();
                    } else {
                        push_chunk[j] = t_push as u32;
                    }
                }
                (local, pending)
            },
            |(ma, mut va), (mb, mut vb)| {
                va.append(&mut vb);
                (ma + mb, va)
            },
        );
        self.metrics = self.metrics + delta;
        self.pending_delayed.append(&mut new_pending);
        self.collect_due(round);

        let receivers = self.bucket_sparse(active);
        let receivers = self.merge_due_receivers(receivers);

        let states = &self.states;
        let (pairs, pulls) = (&self.scratch_pairs, &self.scratch_compact2[..m]);
        let due = &self.due_scratch;
        let deliveries = par::for_sparse(
            &self.pool,
            &mut self.next,
            &self.scratch_written,
            threads,
            Metrics::default(),
            |wids, base, sub| {
                let mut local = Metrics::default();
                for &id in wids {
                    let u = id as usize;
                    let slot = &mut sub[u - base];
                    slot.clone_from(&states[u]);
                    if let Some(rank) = active.rank(u) {
                        let t_pull = pulls[rank];
                        if (t_pull as usize) < n {
                            let t = t_pull as usize;
                            let msg = serve(t, &states[t]);
                            local.record_delivery(msg.message_bits());
                            merge(u, slot, msg);
                        }
                    }
                    let lo = pairs.partition_point(|&(r, _)| r < id);
                    let hi = pairs.partition_point(|&(r, _)| r <= id);
                    for &(_, s) in &pairs[lo..hi] {
                        let v = s as usize;
                        let msg = serve(v, &states[v]);
                        local.record_delivery(msg.message_bits());
                        merge(u, slot, msg);
                    }
                    if !due.is_empty() {
                        let dlo = due.partition_point(|&(r, _)| r < id);
                        for &(_, s) in due[dlo..].iter().take_while(|&&(r, _)| r == id) {
                            let v = s as usize;
                            let msg = serve(v, &states[v]);
                            local.record_delivery(msg.message_bits());
                            merge(u, slot, msg);
                        }
                    }
                }
                local
            },
            |a, b| a + b,
        );
        self.metrics = self.metrics + deliveries;
        let written = std::mem::take(&mut self.scratch_written);
        self.commit_written(&written);
        self.scratch_written = written;
        SparsePushOutcome {
            failed: delta.failed_operations as usize,
            receivers,
        }
    }

    /// [`Engine::collect_samples_on`] under a disruptive fault plan.
    fn collect_samples_on_faulty<SP, M, F>(
        &mut self,
        sampler: SP,
        active: &ActiveSet,
        k: usize,
        serve: F,
    ) -> Vec<Vec<M>>
    where
        SP: Sampler,
        M: MessageSize + Send,
        F: Fn(NodeId, &S) -> M + Sync,
    {
        self.assert_active(active);
        let m = active.len();
        let threads = self.threads;
        let ids = active.indices();
        let mut collected: Vec<Vec<M>> = (0..m).map(|_| Vec::with_capacity(k)).collect();
        for _ in 0..k {
            self.metrics.record_round(RoundKind::Pull, m as u64);
            self.round += 1;
            self.advance_churn(self.round);
            let round = self.round;
            let (states, failure) = (&self.states, &self.failure);
            let sampler = &sampler;
            let reliable = failure.is_reliable();
            let prefix = NodeRng::key_prefix(self.seed, round, NodeRng::STREAM_ROUND);
            let ctx = FaultCtx::new(self.seed, round, &self.down_until, &self.fault);
            let ctx = &ctx;
            let delta = par::for_chunks(
                &self.pool,
                &mut collected,
                threads,
                Metrics::default(),
                |start, chunk| {
                    let mut local = Metrics::default();
                    for (j, bucket) in chunk.iter_mut().enumerate() {
                        let v = ids[start + j] as usize;
                        if !ctx.alive(v) {
                            local.record_crash();
                            continue;
                        }
                        local.record_attempt(RoundKind::Pull);
                        let mut rng = prefix.node(v as u64);
                        if !reliable && failure.fails(v, round, &mut rng) {
                            local.record_failure();
                            continue;
                        }
                        let t = sampler.sample(&mut rng, v);
                        if !ctx.alive(t) || ctx.lost(t, v) {
                            local.record_drop();
                            continue;
                        }
                        let msg = serve(t, &states[t]);
                        local.record_delivery(msg.message_bits());
                        bucket.push(msg);
                    }
                    local
                },
                |a, b| a + b,
            );
            self.metrics = self.metrics + delta;
        }
        collected
    }

    /// Extends the sparse round's written set and receiver list with the
    /// receivers of straggled messages due this round (`due_scratch`), so
    /// pass 2 clones and commits them like any other receiver. No-op without
    /// due arrivals.
    fn merge_due_receivers(&mut self, receivers: Vec<NodeId>) -> Vec<NodeId> {
        if self.due_scratch.is_empty() {
            return receivers;
        }
        let mut due_recv: Vec<u32> = Vec::with_capacity(self.due_scratch.len());
        for &(r, _) in &self.due_scratch {
            if due_recv.last() != Some(&r) {
                due_recv.push(r);
            }
        }
        let prev = std::mem::take(&mut self.scratch_written);
        let mut merged = Vec::with_capacity(prev.len() + due_recv.len());
        merge_sorted_into(&prev, &due_recv, &mut merged);
        self.scratch_written = merged;
        let mut out = Vec::with_capacity(receivers.len() + due_recv.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < receivers.len() && j < due_recv.len() {
            let b = due_recv[j] as usize;
            match receivers[i].cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push(receivers[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(receivers[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&receivers[i..]);
        out.extend(due_recv[j..].iter().map(|&r| r as usize));
        out
    }

    /// Buckets the current sparse round's deliveries: reads the compact
    /// per-active targets, builds the `(receiver, sender)` pair list sorted
    /// receiver-major with ascending senders, assembles the written set
    /// (active ∪ receivers) into `scratch_written`, and returns the sorted
    /// receiver list. `O(messages log messages + |active|)` — never `O(n)`.
    fn bucket_sparse(&mut self, active: &ActiveSet) -> Vec<NodeId> {
        let n = self.n();
        self.scratch_pairs.clear();
        for (j, &id) in active.indices().iter().enumerate() {
            let t = self.scratch_compact[j];
            if (t as usize) < n {
                self.scratch_pairs.push((t, id));
            }
        }
        // Keys are unique (one push per sender), so the unstable sort is
        // deterministic; receiver-major lexicographic order gives each
        // receiver its senders ascending — the dense fold order.
        self.scratch_pairs.sort_unstable();
        // Dedup into the reusable u32 scratch; the only per-round allocation
        // is the receiver list handed back to the caller.
        self.scratch_receivers.clear();
        for &(r, _) in &self.scratch_pairs {
            if self.scratch_receivers.last() != Some(&r) {
                self.scratch_receivers.push(r);
            }
        }
        let mut written = std::mem::take(&mut self.scratch_written);
        merge_sorted_into(active.indices(), &self.scratch_receivers, &mut written);
        self.scratch_written = written;
        self.scratch_receivers.iter().map(|&r| r as usize).collect()
    }

    /// The copy-on-write commit: swaps every written slot between the back
    /// and front buffers, so the front buffer is fully current again after an
    /// `O(|written|)` pass (the sparse counterpart of the dense rounds'
    /// `O(1)` whole-vector swap).
    ///
    /// By default maximal runs of consecutive ids are swapped with one
    /// [`slice::swap_with_slice`] each ([`crate::soa::swap_runs`]) — active
    /// sets and receiver lists are sorted, so dense stretches collapse into
    /// block moves. [`Engine::set_batch_commit`] restores the per-slot loop
    /// (the A/B control; both orders touch each slot exactly once, so the
    /// result is bit-identical).
    fn commit_written(&mut self, written: &[u32]) {
        let threads = self.threads;
        let batch = self.batch_commit;
        par::for_sparse2(
            &self.pool,
            &mut self.states,
            &mut self.next,
            written,
            threads,
            |ids, base, front, back| {
                if batch {
                    crate::soa::swap_runs(ids, base, front, back);
                } else {
                    for &id in ids {
                        let i = id as usize - base;
                        std::mem::swap(&mut front[i], &mut back[i]);
                    }
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn engine_with(n: usize, seed: u64) -> Engine<u64> {
        Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed))
    }

    #[test]
    fn rejects_fewer_than_two_nodes() {
        let err = Engine::<u64>::try_from_states(vec![1], EngineConfig::default()).unwrap_err();
        assert_eq!(err, GossipError::TooFewNodes { requested: 1 });
    }

    #[test]
    fn pull_round_never_contacts_self() {
        let mut e = engine_with(8, 3);
        for _ in 0..200 {
            e.pull_round(
                |t, _| t as u64,
                |v, _, pulled| {
                    if let Some(t) = pulled {
                        assert_ne!(t, v as u64, "node pulled from itself");
                    }
                },
            );
        }
    }

    #[test]
    fn preview_pull_targets_matches_executed_rounds() {
        // The preview and the execution must agree target-for-target, with
        // failure coins included, on the complete graph and on a restricted
        // topology.
        let configs = [
            EngineConfig::with_seed(21),
            EngineConfig::with_seed(22).failure(FailureModel::uniform(0.3).unwrap()),
            EngineConfig::with_seed(23).topology(Topology::ring(4)),
        ];
        for config in configs {
            let mut e = Engine::from_states(vec![0u64; 64], config);
            let mut preview = Vec::new();
            for _ in 0..5 {
                e.preview_pull_targets_at(e.round() + 1, &mut preview);
                // Serving the target's id makes each node's bucket record who
                // it actually contacted this round.
                let got = e.collect_samples(1, |t, _| t as u64);
                for (v, bucket) in got.iter().enumerate() {
                    match preview[v] {
                        Some(t) => assert_eq!(bucket.as_slice(), &[t as u64], "node {v}"),
                        None => assert!(bucket.is_empty(), "node {v} should have failed"),
                    }
                }
            }
        }
    }

    #[test]
    fn preview_pull_targets_is_round_addressable() {
        // Previews are pure functions of (seed, round): asking for round 3
        // before or after executing rounds 1–2 gives the same answer.
        let e = engine_with(32, 77);
        let mut early = Vec::new();
        e.preview_pull_targets_at(3, &mut early);
        let mut e2 = engine_with(32, 77);
        for _ in 0..2 {
            e2.collect_samples(1, |_, &s| s);
        }
        let mut late = Vec::new();
        e2.preview_pull_targets_at(e2.round() + 1, &mut late);
        assert_eq!(e2.round(), 2);
        assert_eq!(early, late);
    }

    #[test]
    fn pull_round_uses_pre_round_snapshot() {
        // All nodes simultaneously become the value they pull; because serving
        // is from the snapshot, the multiset of values after one round is a
        // sub-multiset of the original values (no partially-updated value can
        // be observed).
        let mut e = engine_with(64, 9);
        let before: HashSet<u64> = e.states().iter().copied().collect();
        e.pull_round(|_, &s| s, |_, state, pulled| *state = pulled.unwrap());
        assert!(e.states().iter().all(|v| before.contains(v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut e = engine_with(100, seed);
            for _ in 0..2 {
                e.pull_round(
                    |_, &s| s,
                    |_, st, p| {
                        if let Some(p) = p {
                            *st = (*st).max(p);
                        }
                    },
                );
            }
            e.into_states()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The real cross-primitive matrix lives in tests/determinism.rs; this
        // is the fast unit-level check on the pull path.
        let run = |threads: usize| {
            let mut e = engine_with(500, 42);
            e.set_threads(threads);
            for _ in 0..8 {
                e.pull_round(
                    |_, &s| s,
                    |_, st, p| {
                        if let Some(p) = p {
                            *st = (*st).max(p);
                        }
                    },
                );
            }
            let metrics = e.metrics();
            (e.into_states(), metrics)
        };
        let (states_1t, _) = run(1);
        for threads in [2, 3, 8] {
            let (states, _) = run(threads);
            assert_eq!(
                states, states_1t,
                "thread count {threads} changed the execution"
            );
        }
    }

    #[test]
    fn metrics_count_rounds_messages_and_bits() {
        let mut e = engine_with(10, 1);
        e.pull_round(|_, &s| s, |_, _, _| {});
        e.push_round(|_, &s| Some(s), |_, _, _| {}, |_, _, _| {});
        let m = e.metrics();
        assert_eq!(m.rounds, 2);
        assert_eq!(m.pulls_attempted, 10);
        assert_eq!(m.pushes_attempted, 10);
        assert_eq!(m.messages_delivered, 20);
        assert_eq!(m.bits_delivered, 20 * 64);
        assert_eq!(m.max_message_bits, 64);
        assert_eq!(m.failed_operations, 0);
    }

    #[test]
    fn push_round_delivers_every_non_failed_message_exactly_once() {
        let mut e = Engine::from_states(vec![0u64; 50], EngineConfig::with_seed(11));
        // Count how many messages each node receives.
        e.push_round(|v, _| Some(v as u64), |_, st, _msg| *st += 1, |_, _, _| {});
        let total: u64 = e.states().iter().sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn push_round_folds_in_ascending_sender_order() {
        let mut e = Engine::from_states(vec![Vec::<u64>::new(); 40], EngineConfig::with_seed(7));
        e.push_round(
            |v, _| Some(v as u64),
            |_, st, msg| st.push(msg),
            |_, _, _| {},
        );
        for received in e.states() {
            let mut sorted = received.clone();
            sorted.sort_unstable();
            assert_eq!(received, &sorted);
        }
    }

    #[test]
    fn push_round_none_means_silent() {
        let mut e = Engine::from_states(vec![0u64; 20], EngineConfig::with_seed(2));
        e.push_round(
            |v, _| if v % 2 == 0 { Some(1u64) } else { None },
            |_, st, m| *st += m,
            |_, _, _| {},
        );
        let total: u64 = e.states().iter().sum();
        assert_eq!(total, 10);
        assert_eq!(e.metrics().pushes_attempted, 10);
    }

    #[test]
    fn never_firing_failure_models_normalize_to_none_at_construction() {
        // The enum variants are public, so a literal `Uniform(0.0)` (which
        // `FailureModel::uniform` would have canonicalised) must still land
        // on the engine's no-failure fast loops.
        let config = EngineConfig::with_seed(1).failure(FailureModel::Uniform(0.0));
        let e = Engine::from_states(vec![0u64; 4], config);
        assert!(e.failure_model().is_reliable());
        let per_node = FailureModel::per_node(vec![0.0; 4]).unwrap();
        let e = Engine::from_states(vec![0u64; 4], EngineConfig::with_seed(1).failure(per_node));
        assert!(e.failure_model().is_reliable());
        // A model that can fire survives normalisation.
        let config = EngineConfig::with_seed(1).failure(FailureModel::uniform(0.5).unwrap());
        let e = Engine::from_states(vec![0u64; 4], config);
        assert!(!e.failure_model().is_reliable());
    }

    #[test]
    fn failures_reduce_deliveries() {
        let config = EngineConfig::with_seed(3).failure(FailureModel::uniform(0.5).unwrap());
        let mut e = Engine::from_states(vec![1u64; 1000], config);
        e.pull_round(|_, &s| s, |_, _, _| {});
        let m = e.metrics();
        assert_eq!(m.pulls_attempted, 1000);
        assert!(
            m.failed_operations > 350 && m.failed_operations < 650,
            "{}",
            m.failed_operations
        );
        assert_eq!(m.messages_delivered + m.failed_operations, 1000);
    }

    #[test]
    fn total_failure_schedule_blocks_everything() {
        let config = EngineConfig::with_seed(3).failure(FailureModel::schedule(|_, _| 1.0));
        let mut e = Engine::from_states(vec![1u64, 2, 3, 4], config);
        let failed = e.pull_round(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = p;
                }
            },
        );
        assert_eq!(failed, 4);
        assert_eq!(e.states(), &[1, 2, 3, 4]);
    }

    #[test]
    fn push_pull_round_spreads_max_quickly() {
        let mut e = engine_with(1024, 17);
        let mut rounds = 0;
        while e.states().iter().any(|&v| v != 1023) {
            e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
            rounds += 1;
            assert!(rounds < 64, "rumor spreading too slow");
        }
        // Push-pull rumor spreading completes in O(log n) rounds; for n=1024,
        // comfortably under 30.
        assert!(rounds <= 30, "took {rounds} rounds");
    }

    #[test]
    fn collect_samples_returns_k_samples_without_failures() {
        let mut e = engine_with(32, 23);
        let samples = e.collect_samples(3, |_, &s| s);
        assert_eq!(samples.len(), 32);
        assert!(samples.iter().all(|s| s.len() == 3));
        assert_eq!(e.metrics().rounds, 3);
        // Node states are untouched by sampling.
        assert_eq!(e.states(), (0..32u64).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn collect_samples_with_failures_returns_fewer() {
        let config = EngineConfig::with_seed(5).failure(FailureModel::uniform(0.4).unwrap());
        let mut e = Engine::from_states((0..500u64).collect(), config);
        let samples = e.collect_samples(4, |_, &s| s);
        let total: usize = samples.iter().map(Vec::len).sum();
        assert!(total < 2000);
        assert!(total > 500);
    }

    #[test]
    fn local_step_touches_every_node_and_costs_no_round() {
        let mut e = engine_with(10, 0);
        e.local_step(|v, s, _rng| *s = v as u64 * 2);
        assert_eq!(e.round(), 0);
        assert_eq!(e.metrics().rounds, 0);
        assert_eq!(e.states()[7], 14);
    }

    #[test]
    fn local_step_rng_is_per_node_and_per_epoch() {
        use rand::Rng;
        // The closure is `Fn + Sync` (it runs on the pool), so each node
        // records its draw in its own state slot rather than in a captured
        // mutable buffer.
        let mut e = engine_with(16, 4);
        e.local_step(|_, st, rng| *st = rng.gen::<u64>());
        let first = e.states().to_vec();
        e.local_step(|_, st, rng| *st = rng.gen::<u64>());
        let second = e.states().to_vec();
        // Distinct across nodes and across epochs…
        let unique: HashSet<u64> = first.iter().chain(second.iter()).copied().collect();
        assert_eq!(unique.len(), 32);
        // …and reproducible: a fresh engine with the same seed replays them.
        let mut e2 = engine_with(16, 4);
        e2.local_step(|_, st, rng| *st = rng.gen::<u64>());
        assert_eq!(e2.states(), first.as_slice());
    }

    #[test]
    fn local_step_is_thread_count_invariant() {
        use rand::Rng;
        let run = |threads: usize| {
            let mut e = engine_with(300, 9);
            e.set_threads(threads);
            for _ in 0..4 {
                e.local_step(|v, st, rng| {
                    *st = st.wrapping_add(rng.gen::<u64>() ^ v as u64);
                });
            }
            e.into_states()
        };
        let baseline = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), baseline, "{threads} threads diverged");
        }
    }

    #[test]
    fn complete_peer_sampling_is_roughly_uniform() {
        let sampler = Topology::Complete
            .materialize(5, &AdjacencyCache::default())
            .expect("valid");
        let mut rng = NodeRng::keyed(77, 0, 2, NodeRng::STREAM_ROUND);
        let n = 5;
        let mut counts = vec![0u32; n];
        for _ in 0..40_000 {
            let t = sampler.sample(&mut rng, 2);
            counts[t] += 1;
        }
        assert_eq!(counts[2], 0);
        for (i, &c) in counts.iter().enumerate() {
            if i != 2 {
                assert!((c as f64 - 10_000.0).abs() < 500.0, "node {i}: {c}");
            }
        }
    }

    #[test]
    fn ring_topology_pulls_only_from_neighbours() {
        let config = EngineConfig::with_seed(5).topology(Topology::ring(1));
        let mut e = Engine::from_states((0..32u64).collect(), config);
        assert_eq!(e.topology(), &Topology::ring(1));
        for _ in 0..50 {
            e.pull_round(
                |t, _| t as u64,
                |v, _, pulled| {
                    let t = pulled.expect("no failures configured") as i64;
                    let d = (t - v as i64).rem_euclid(32);
                    assert!(d == 1 || d == 31, "node {v} pulled non-neighbour {t}");
                },
            );
        }
    }

    #[test]
    fn invalid_topology_is_rejected_at_construction() {
        let config = EngineConfig::with_seed(1).topology(Topology::ring(40));
        let err = Engine::try_from_states(vec![0u64; 16], config).unwrap_err();
        assert!(matches!(
            err,
            GossipError::InvalidParameter { name: "k", .. }
        ));
    }

    #[test]
    fn sub_config_inherits_the_topology() {
        let config = EngineConfig::with_seed(1).topology(Topology::Torus2D);
        assert_eq!(config.sub(9).topology, Topology::Torus2D);
    }

    // ---- fault-plan behaviour -------------------------------------------

    use crate::fault::{ChurnModel, LossModel, StragglerModel};

    fn faulty_engine(n: usize, seed: u64, fault: FaultPlan) -> Engine<u64> {
        Engine::from_states(
            (0..n as u64).collect(),
            EngineConfig::with_seed(seed).fault(fault),
        )
    }

    #[test]
    fn zero_intensity_fault_plan_normalizes_away_at_construction() {
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::crash_stop(0.0).unwrap())
            .with_loss(LossModel::uniform(0.0).unwrap())
            .with_stragglers(StragglerModel::uniform(0.0, 4).unwrap());
        let e = faulty_engine(16, 1, plan);
        assert!(e.fault_plan().is_none());
        // And the golden-pinned fast loops therefore produce identical
        // trajectories: same fingerprint inputs as a plain engine.
        let mut a = faulty_engine(64, 9, FaultPlan::none());
        let mut b = Engine::from_states((0..64u64).collect(), EngineConfig::with_seed(9));
        for _ in 0..4 {
            a.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
            b.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
        }
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn per_node_failure_length_is_validated_against_n() {
        let per_node = FailureModel::per_node(vec![0.1; 8]).unwrap();
        let err =
            Engine::try_from_states(vec![0u64; 16], EngineConfig::with_seed(1).failure(per_node))
                .unwrap_err();
        assert!(matches!(
            err,
            GossipError::InvalidParameter {
                name: "failure",
                ..
            }
        ));
    }

    #[test]
    fn crash_stop_churn_is_permanent_and_monotone() {
        let plan = FaultPlan::none().with_churn(ChurnModel::crash_stop(0.05).unwrap());
        let mut e = faulty_engine(400, 3, plan);
        let mut prev: Vec<NodeId> = Vec::new();
        for _ in 0..12 {
            e.pull_round(|_, &s| s, |_, _, _| {});
            let crashed = e.crashed_nodes();
            // Crash-stop: once down, forever down — the crashed set only grows.
            assert!(prev.iter().all(|v| crashed.contains(v)));
            // Ascending order.
            assert!(crashed.windows(2).all(|w| w[0] < w[1]));
            prev = crashed;
        }
        assert!(!prev.is_empty(), "p=0.05 over 12 rounds on 400 nodes");
        assert!(e.metrics().crashed_operations > 0);
        // Crashed nodes perform no operation at all.
        let m = e.metrics();
        assert!(m.pulls_attempted < 12 * 400);
        assert_eq!(
            m.pulls_attempted + m.crashed_operations,
            12 * 400,
            "every node either attempts or is counted crashed"
        );
    }

    #[test]
    fn churn_with_rejoin_brings_nodes_back_after_k_rounds() {
        let plan = FaultPlan::none().with_churn(ChurnModel::with_rejoin(0.5, 2).unwrap());
        let mut e = faulty_engine(200, 7, plan);
        e.pull_round(|_, &s| s, |_, _, _| {});
        let first = e.crashed_nodes();
        assert!(!first.is_empty(), "p=0.5 on 200 nodes");
        // A node crashed in round r (down_until = r + 2) is down for rounds
        // r and r+1 and eligible again in r+2. Run two more rounds: every
        // node from `first` has either rejoined or re-crashed; none can be
        // down *because of* the round-1 coin any more.
        e.pull_round(|_, &s| s, |_, _, _| {});
        let second = e.crashed_nodes();
        // Still down one round later (down_until = 1 + 2 = 3 > 2).
        assert!(first.iter().all(|v| second.contains(v)));
        e.pull_round(|_, &s| s, |_, _, _| {});
        e.pull_round(|_, &s| s, |_, _, _| {});
        // With p = 0.5 and rejoin, the population never collapses: some
        // nodes must be alive and attempting in every round.
        let m = e.metrics();
        assert!(m.pulls_attempted > 0);
        assert!(m.crashed_operations > 0);
    }

    #[test]
    fn uniform_loss_drops_messages_and_conserves_the_push_ledger() {
        let plan = FaultPlan::none().with_loss(LossModel::uniform(0.3).unwrap());
        let mut e = faulty_engine(1000, 5, plan);
        e.push_round(|v, _| Some(v as u64), |_, st, _| *st += 1, |_, _, _| {});
        let m = e.metrics();
        assert_eq!(m.pushes_attempted, 1000);
        assert!(m.messages_dropped > 150 && m.messages_dropped < 450);
        // No churn, no stragglers, no failure model: every attempted push
        // is either delivered or dropped.
        assert_eq!(m.messages_delivered + m.messages_dropped, 1000);
        assert_eq!(e.delayed_in_flight(), 0);
    }

    #[test]
    fn loss_is_deterministic_per_contact() {
        let plan = || FaultPlan::none().with_loss(LossModel::uniform(0.4).unwrap());
        let mut a = faulty_engine(300, 21, plan());
        let mut b = faulty_engine(300, 21, plan());
        b.set_threads(4);
        for _ in 0..5 {
            a.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
            b.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
        }
        assert_eq!(a.states(), b.states());
        assert_eq!(a.metrics().messages_dropped, b.metrics().messages_dropped);
    }

    #[test]
    fn stragglers_buffer_across_rounds_and_drain_on_push_capable_rounds() {
        let plan = FaultPlan::none().with_stragglers(StragglerModel::uniform(0.5, 3).unwrap());
        let mut e = faulty_engine(500, 13, plan);
        e.push_round(|v, _| Some(v as u64), |_, st, _| *st += 1, |_, _, _| {});
        let in_flight = e.delayed_in_flight();
        assert!(in_flight > 100, "p=0.5 on 500 pushes, got {in_flight}");
        assert_eq!(e.metrics().messages_delayed as usize, in_flight);
        // Pull rounds are not push-capable: nothing drains there.
        e.pull_round(|_, &s| s, |_, _, _| {});
        assert!(e.delayed_in_flight() >= in_flight.saturating_sub(0));
        let before_drain = e.delayed_in_flight();
        // Every pending contact has delay <= 3; three push rounds later the
        // original batch has fully drained (new stragglers may be pending).
        let delivered_before = e.metrics().messages_delivered;
        for _ in 0..3 {
            e.push_round(|v, _| Some(v as u64), |_, st, _| *st += 1, |_, _, _| {});
        }
        assert!(e.metrics().messages_delivered > delivered_before);
        assert!(before_drain > 0);
    }

    #[test]
    fn straggled_contacts_sent_during_final_rounds_stay_in_flight() {
        let plan = FaultPlan::none().with_stragglers(StragglerModel::uniform(0.99, 5).unwrap());
        let mut e = faulty_engine(50, 2, plan);
        e.push_round(|v, _| Some(v as u64), |_, st, _| *st += 1, |_, _, _| {});
        // Nearly everything straggles; with no loss or churn the ledger is
        // exact: attempted = delivered in-round + delayed in-flight.
        let m = e.metrics();
        assert_eq!(m.messages_delivered + m.messages_delayed, 50);
        assert_eq!(e.delayed_in_flight() as u64, m.messages_delayed);
        assert!(m.messages_delayed >= 40, "{}", m.messages_delayed);
    }

    #[test]
    fn combined_plan_matches_itself_across_thread_counts() {
        let plan = || {
            FaultPlan::none()
                .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
                .with_loss(LossModel::uniform(0.2).unwrap())
                .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap())
                .with_failure(FailureModel::uniform(0.1).unwrap())
        };
        let mut fingerprints = Vec::new();
        for threads in [1usize, 3, 8] {
            let mut e = faulty_engine(600, 31, plan());
            e.set_threads(threads);
            for _ in 0..6 {
                e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
            }
            let m = e.metrics();
            fingerprints.push((
                e.states().to_vec(),
                e.crashed_nodes(),
                e.delayed_in_flight(),
                m.messages_dropped,
                m.messages_delayed,
                m.crashed_operations,
                m.failed_operations,
            ));
        }
        assert_eq!(fingerprints[0], fingerprints[1]);
        assert_eq!(fingerprints[0], fingerprints[2]);
    }

    #[test]
    fn clone_preserves_churn_and_straggler_state_but_sub_resets() {
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::crash_stop(0.2).unwrap())
            .with_stragglers(StragglerModel::uniform(0.5, 4).unwrap());
        let config = EngineConfig::with_seed(19).fault(plan);
        let mut e = Engine::from_states((0..300u64).collect(), config.clone());
        for _ in 0..3 {
            e.push_round(|v, _| Some(v as u64), |_, st, _| *st += 1, |_, _, _| {});
        }
        assert!(!e.crashed_nodes().is_empty());
        let clone = e.clone();
        assert_eq!(clone.crashed_nodes(), e.crashed_nodes());
        assert_eq!(clone.delayed_in_flight(), e.delayed_in_flight());
        // A sub-engine built from the config starts with everyone alive.
        let sub = Engine::from_states(vec![0u64; 10], config.sub(77));
        assert!(sub.crashed_nodes().is_empty());
        assert_eq!(sub.delayed_in_flight(), 0);
        // The clone continues deterministically in lockstep with the original.
        let mut clone = clone;
        e.push_round(|v, _| Some(v as u64), |_, st, _| *st += 1, |_, _, _| {});
        clone.push_round(|v, _| Some(v as u64), |_, st, _| *st += 1, |_, _, _| {});
        assert_eq!(e.states(), clone.states());
        assert_eq!(e.crashed_nodes(), clone.crashed_nodes());
    }

    #[test]
    fn collect_samples_under_faults_still_reports_inner_rounds() {
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::with_rejoin(0.2, 1).unwrap())
            .with_loss(LossModel::uniform(0.3).unwrap());
        let mut e = faulty_engine(400, 23, plan);
        let samples = e.collect_samples(3, |_, &s| s);
        assert_eq!(samples.len(), 400);
        assert_eq!(e.metrics().rounds, 3);
        // Faults thin the samples but cannot invent them.
        let total: usize = samples.iter().map(Vec::len).sum();
        assert!(total < 3 * 400);
        assert!(total > 0);
        assert!(samples.iter().all(|s| s.len() <= 3));
    }
}
