//! Round, message and failure accounting.
//!
//! Every algorithm in the reproduction is measured through the same
//! [`Metrics`] struct, so round counts reported in EXPERIMENTS.md are directly
//! comparable across the paper's algorithms and the baselines.

/// What kind of communication a round performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundKind {
    /// Every active node pulled a message from a uniformly random node.
    Pull,
    /// Every active node pushed a message to a uniformly random node.
    Push,
    /// A round in which both a push and a pull were performed by every node
    /// (used by rumor-spreading subroutines).
    PushPull,
}

impl std::fmt::Display for RoundKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RoundKind::Pull => "pull",
            RoundKind::Push => "push",
            RoundKind::PushPull => "push-pull",
        };
        f.write_str(s)
    }
}

/// Cumulative communication statistics of a simulation.
///
/// All counters are cumulative over the life of an [`crate::Engine`]; use
/// [`Metrics::snapshot_delta`] to measure a phase of an algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Rounds that were pull rounds (includes `collect_samples` rounds).
    pub pull_rounds: u64,
    /// Rounds that were push rounds.
    pub push_rounds: u64,
    /// Rounds that were push–pull rounds (both directions, one round).
    pub push_pull_rounds: u64,
    /// Total participants across all rounds: a dense round contributes `n`,
    /// a sparse `*_on` round contributes the size of its
    /// [`ActiveSet`](crate::ActiveSet). `active_nodes_total / rounds` is the
    /// mean per-round activity.
    pub active_nodes_total: u64,
    /// Largest single-round participant count observed.
    pub max_active: u64,
    /// Participants in pull rounds (includes `collect_samples` rounds).
    pub active_pull_nodes: u64,
    /// Participants in push rounds.
    pub active_push_nodes: u64,
    /// Participants in push–pull rounds.
    pub active_push_pull_nodes: u64,
    /// Number of pull operations attempted (one per active node per pull round).
    pub pulls_attempted: u64,
    /// Number of push operations attempted.
    pub pushes_attempted: u64,
    /// Number of operations that failed due to the failure model.
    pub failed_operations: u64,
    /// Operations skipped because the node was crashed (down under a
    /// [`ChurnModel`](crate::fault::ChurnModel)) that round. A crashed node
    /// performs nothing: no attempt is recorded for it.
    pub crashed_operations: u64,
    /// Messages dropped in flight: a per-contact loss coin fired, the contact
    /// targeted a crashed node, or a delayed message could not be delivered
    /// at arrival. Distinct from `failed_operations` (the sender never acted)
    /// — here the sender acted and this one delivery was lost.
    pub messages_dropped: u64,
    /// Push contacts that straggled: buffered by a
    /// [`StragglerModel`](crate::fault::StragglerModel) to land in a later
    /// round. Counted at send time; a delayed message that is eventually
    /// delivered also counts in `messages_delivered` (at arrival), and one
    /// dropped at arrival counts in `messages_dropped`.
    pub messages_delayed: u64,
    /// Number of messages successfully delivered.
    pub messages_delivered: u64,
    /// Total payload size of successfully delivered messages, in bits.
    pub bits_delivered: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: u64,
    /// Full worker-pool dispatch hand-offs this engine paid (one per
    /// non-inline parallel map outside a round program, one per fused
    /// program — see the crate docs' "round programs"). A **scheduling**
    /// counter: it measures execution cost, not communication, and is
    /// therefore excluded from `==` (see [`Metrics`]'s `PartialEq`).
    /// With a shared pool (`EngineConfig::pool`), dispatches by other
    /// sharers during this engine's lifetime are included.
    pub pool_dispatches: u64,
    /// Worker threads woken by those dispatches (plus parked resident
    /// workers woken by program phases, best-effort). Scheduling-only and
    /// excluded from `==`, like `pool_dispatches`; inherently
    /// nondeterministic across hosts and thread counts.
    pub worker_wakeups: u64,
}

/// Counter-wise equality over the **trajectory** counters only.
///
/// `pool_dispatches` and `worker_wakeups` are deliberately excluded: they
/// describe how the simulation was scheduled (thread count, pool sharing,
/// program fusion), not what it computed, and the engine's determinism
/// contract — bit-identical results at any thread count, pinned by
/// `tests/determinism.rs` comparing `(states, metrics)` tuples — must not
/// depend on them.
impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring (no `..`): adding a counter to `Metrics`
        // refuses to compile until it is classified here as trajectory
        // (compared) or scheduling (bound to `_`), so a new field can never
        // silently weaken the determinism tests.
        let Metrics {
            rounds,
            pull_rounds,
            push_rounds,
            push_pull_rounds,
            active_nodes_total,
            max_active,
            active_pull_nodes,
            active_push_nodes,
            active_push_pull_nodes,
            pulls_attempted,
            pushes_attempted,
            failed_operations,
            crashed_operations,
            messages_dropped,
            messages_delayed,
            messages_delivered,
            bits_delivered,
            max_message_bits,
            pool_dispatches: _,
            worker_wakeups: _,
        } = *self;
        rounds == other.rounds
            && pull_rounds == other.pull_rounds
            && push_rounds == other.push_rounds
            && push_pull_rounds == other.push_pull_rounds
            && active_nodes_total == other.active_nodes_total
            && max_active == other.max_active
            && active_pull_nodes == other.active_pull_nodes
            && active_push_nodes == other.active_push_nodes
            && active_push_pull_nodes == other.active_push_pull_nodes
            && pulls_attempted == other.pulls_attempted
            && pushes_attempted == other.pushes_attempted
            && failed_operations == other.failed_operations
            && crashed_operations == other.crashed_operations
            && messages_dropped == other.messages_dropped
            && messages_delayed == other.messages_delayed
            && messages_delivered == other.messages_delivered
            && bits_delivered == other.bits_delivered
            && max_message_bits == other.max_message_bits
    }
}

impl Metrics {
    /// Creates an all-zero metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the start of a round of the given kind with `active`
    /// participating nodes (`n` for a dense round, the active-set size for a
    /// sparse one).
    pub(crate) fn record_round(&mut self, kind: RoundKind, active: u64) {
        self.rounds += 1;
        self.active_nodes_total += active;
        if active > self.max_active {
            self.max_active = active;
        }
        match kind {
            RoundKind::Pull => {
                self.pull_rounds += 1;
                self.active_pull_nodes += active;
            }
            RoundKind::Push => {
                self.push_rounds += 1;
                self.active_push_nodes += active;
            }
            RoundKind::PushPull => {
                self.push_pull_rounds += 1;
                self.active_push_pull_nodes += active;
            }
        }
    }

    /// Total participants in rounds of the given kind.
    pub fn active_of(&self, kind: RoundKind) -> u64 {
        match kind {
            RoundKind::Pull => self.active_pull_nodes,
            RoundKind::Push => self.active_push_nodes,
            RoundKind::PushPull => self.active_push_pull_nodes,
        }
    }

    /// Mean participants per round, or 0 with no rounds.
    pub fn mean_active(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.active_nodes_total as f64 / self.rounds as f64
        }
    }

    /// Rounds executed of the given kind.
    pub fn rounds_of(&self, kind: RoundKind) -> u64 {
        match kind {
            RoundKind::Pull => self.pull_rounds,
            RoundKind::Push => self.push_rounds,
            RoundKind::PushPull => self.push_pull_rounds,
        }
    }

    /// The round budget broken down per primitive, in declaration order —
    /// what `analysis::report` renders as per-kind round columns.
    pub fn rounds_by_kind(&self) -> [(RoundKind, u64); 3] {
        [
            (RoundKind::Pull, self.pull_rounds),
            (RoundKind::Push, self.push_rounds),
            (RoundKind::PushPull, self.push_pull_rounds),
        ]
    }

    /// Records an extra round for the same logical operation (e.g. push–pull
    /// rounds count as a single round even though both directions are used).
    pub(crate) fn record_attempt(&mut self, kind: RoundKind) {
        match kind {
            RoundKind::Pull => self.pulls_attempted += 1,
            RoundKind::Push => self.pushes_attempted += 1,
            RoundKind::PushPull => {
                self.pulls_attempted += 1;
                self.pushes_attempted += 1;
            }
        }
    }

    /// Records a failed operation (the failing node performed nothing this round).
    pub(crate) fn record_failure(&mut self) {
        self.failed_operations += 1;
    }

    /// Records an operation skipped because the node was crashed.
    pub(crate) fn record_crash(&mut self) {
        self.crashed_operations += 1;
    }

    /// Records a message dropped in flight (loss coin, crashed target, or an
    /// undeliverable delayed message).
    pub(crate) fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Records a push contact buffered to land in a later round.
    pub(crate) fn record_delay(&mut self) {
        self.messages_delayed += 1;
    }

    /// Records a successfully delivered message of the given size.
    pub(crate) fn record_delivery(&mut self, bits: u64) {
        self.messages_delivered += 1;
        self.bits_delivered += bits;
        if bits > self.max_message_bits {
            self.max_message_bits = bits;
        }
    }

    /// Returns the difference `self - earlier`, counter by counter.
    ///
    /// `earlier` must be a snapshot taken from the same engine at an earlier
    /// point in time; counters are assumed to be monotone.
    pub fn snapshot_delta(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds - earlier.rounds,
            pull_rounds: self.pull_rounds - earlier.pull_rounds,
            push_rounds: self.push_rounds - earlier.push_rounds,
            push_pull_rounds: self.push_pull_rounds - earlier.push_pull_rounds,
            active_nodes_total: self.active_nodes_total - earlier.active_nodes_total,
            max_active: self.max_active.max(earlier.max_active),
            active_pull_nodes: self.active_pull_nodes - earlier.active_pull_nodes,
            active_push_nodes: self.active_push_nodes - earlier.active_push_nodes,
            active_push_pull_nodes: self.active_push_pull_nodes - earlier.active_push_pull_nodes,
            pulls_attempted: self.pulls_attempted - earlier.pulls_attempted,
            pushes_attempted: self.pushes_attempted - earlier.pushes_attempted,
            failed_operations: self.failed_operations - earlier.failed_operations,
            crashed_operations: self.crashed_operations - earlier.crashed_operations,
            messages_dropped: self.messages_dropped - earlier.messages_dropped,
            messages_delayed: self.messages_delayed - earlier.messages_delayed,
            messages_delivered: self.messages_delivered - earlier.messages_delivered,
            bits_delivered: self.bits_delivered - earlier.bits_delivered,
            max_message_bits: self.max_message_bits.max(earlier.max_message_bits),
            pool_dispatches: self.pool_dispatches - earlier.pool_dispatches,
            worker_wakeups: self.worker_wakeups - earlier.worker_wakeups,
        }
    }

    /// Mean payload bits delivered per round, or 0 with no rounds.
    ///
    /// This is the round-level bandwidth figure of merit: in the
    /// congested-clique reading of the gossip model, each round gives every
    /// node one `O(log n)`-bit contact, so a multi-query layer that packs `q`
    /// comparisons into one contact shows up here as a ~`q×` larger per-round
    /// payload over a ~`q×` smaller number of rounds.
    pub fn bits_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.bits_delivered as f64 / self.rounds as f64
        }
    }

    /// Mean payload bits delivered **per participating node per round**, or 0
    /// with no activity.
    ///
    /// Sparse (`_on`) rounds divide by their active-set size, not `n`, so the
    /// figure stays comparable between dense and sparse executions of the
    /// same algorithm.
    pub fn mean_bits_per_node_round(&self) -> f64 {
        if self.active_nodes_total == 0 {
            0.0
        } else {
            self.bits_delivered as f64 / self.active_nodes_total as f64
        }
    }

    /// Average number of bits per delivered message, or 0 if nothing was delivered.
    pub fn mean_message_bits(&self) -> f64 {
        if self.messages_delivered == 0 {
            0.0
        } else {
            self.bits_delivered as f64 / self.messages_delivered as f64
        }
    }

    /// Fraction of attempted operations that failed.
    pub fn failure_rate(&self) -> f64 {
        let attempts = self.pulls_attempted + self.pushes_attempted;
        if attempts == 0 {
            0.0
        } else {
            self.failed_operations as f64 / attempts as f64
        }
    }

    /// Fraction of attempted operations whose delivery did not happen on
    /// time: failure-model skips, in-flight drops, and straggled contacts,
    /// over attempts. This is the *measured* `μ̂` that an adaptive round
    /// budget (the paper's `O(1/(1−μ))` compensation, driven by observation
    /// instead of assumption) divides by. Crashed nodes make no attempts, so
    /// they are invisible here — track them via `crashed_operations`.
    pub fn disturbance_rate(&self) -> f64 {
        let attempts = self.pulls_attempted + self.pushes_attempted;
        if attempts == 0 {
            0.0
        } else {
            let disturbed = self.failed_operations + self.messages_dropped + self.messages_delayed;
            disturbed as f64 / attempts as f64
        }
    }
}

impl std::ops::Add for Metrics {
    type Output = Metrics;

    fn add(self, rhs: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds + rhs.rounds,
            pull_rounds: self.pull_rounds + rhs.pull_rounds,
            push_rounds: self.push_rounds + rhs.push_rounds,
            push_pull_rounds: self.push_pull_rounds + rhs.push_pull_rounds,
            active_nodes_total: self.active_nodes_total + rhs.active_nodes_total,
            max_active: self.max_active.max(rhs.max_active),
            active_pull_nodes: self.active_pull_nodes + rhs.active_pull_nodes,
            active_push_nodes: self.active_push_nodes + rhs.active_push_nodes,
            active_push_pull_nodes: self.active_push_pull_nodes + rhs.active_push_pull_nodes,
            pulls_attempted: self.pulls_attempted + rhs.pulls_attempted,
            pushes_attempted: self.pushes_attempted + rhs.pushes_attempted,
            failed_operations: self.failed_operations + rhs.failed_operations,
            crashed_operations: self.crashed_operations + rhs.crashed_operations,
            messages_dropped: self.messages_dropped + rhs.messages_dropped,
            messages_delayed: self.messages_delayed + rhs.messages_delayed,
            messages_delivered: self.messages_delivered + rhs.messages_delivered,
            bits_delivered: self.bits_delivered + rhs.bits_delivered,
            max_message_bits: self.max_message_bits.max(rhs.max_message_bits),
            pool_dispatches: self.pool_dispatches + rhs.pool_dispatches,
            worker_wakeups: self.worker_wakeups + rhs.worker_wakeups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_delta() {
        let mut m = Metrics::new();
        m.record_round(RoundKind::Pull, 10);
        m.record_attempt(RoundKind::Pull);
        m.record_delivery(64);
        let snapshot = m;
        m.record_round(RoundKind::Push, 10);
        m.record_attempt(RoundKind::Push);
        m.record_failure();
        m.record_delivery(128);

        let delta = m.snapshot_delta(&snapshot);
        assert_eq!(delta.rounds, 1);
        assert_eq!(delta.pulls_attempted, 0);
        assert_eq!(delta.pushes_attempted, 1);
        assert_eq!(delta.failed_operations, 1);
        assert_eq!(delta.messages_delivered, 1);
        assert_eq!(delta.bits_delivered, 128);
        assert_eq!(delta.max_message_bits, 128);
    }

    #[test]
    fn mean_and_failure_rate() {
        let mut m = Metrics::new();
        assert_eq!(m.mean_message_bits(), 0.0);
        assert_eq!(m.failure_rate(), 0.0);
        m.record_attempt(RoundKind::Pull);
        m.record_attempt(RoundKind::Pull);
        m.record_failure();
        m.record_delivery(10);
        m.record_delivery(30);
        assert_eq!(m.mean_message_bits(), 20.0);
        assert_eq!(m.failure_rate(), 0.5);
    }

    #[test]
    fn add_combines_counters() {
        let mut a = Metrics::new();
        a.record_round(RoundKind::Pull, 10);
        a.record_delivery(8);
        let mut b = Metrics::new();
        b.record_round(RoundKind::Push, 10);
        b.record_delivery(16);
        let c = a + b;
        assert_eq!(c.rounds, 2);
        assert_eq!(c.messages_delivered, 2);
        assert_eq!(c.bits_delivered, 24);
        assert_eq!(c.max_message_bits, 16);
    }

    #[test]
    fn push_pull_attempt_counts_both_directions() {
        let mut m = Metrics::new();
        m.record_attempt(RoundKind::PushPull);
        assert_eq!(m.pulls_attempted, 1);
        assert_eq!(m.pushes_attempted, 1);
    }

    #[test]
    fn rounds_are_counted_per_kind() {
        let mut m = Metrics::new();
        m.record_round(RoundKind::Pull, 10);
        m.record_round(RoundKind::Pull, 10);
        m.record_round(RoundKind::Push, 10);
        m.record_round(RoundKind::PushPull, 10);
        assert_eq!(m.rounds, 4);
        assert_eq!(m.rounds_of(RoundKind::Pull), 2);
        assert_eq!(m.rounds_of(RoundKind::Push), 1);
        assert_eq!(m.rounds_of(RoundKind::PushPull), 1);
        let total: u64 = m.rounds_by_kind().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, m.rounds);
        // The per-kind counters survive delta and addition like `rounds` does.
        let snapshot = m;
        m.record_round(RoundKind::Push, 10);
        assert_eq!(m.snapshot_delta(&snapshot).push_rounds, 1);
        assert_eq!((m + m).push_pull_rounds, 2);
    }

    #[test]
    fn active_counts_accumulate_per_round_and_per_kind() {
        let mut m = Metrics::new();
        m.record_round(RoundKind::Pull, 1000);
        m.record_round(RoundKind::Push, 30);
        m.record_round(RoundKind::PushPull, 500);
        m.record_round(RoundKind::Push, 0);
        assert_eq!(m.active_nodes_total, 1530);
        assert_eq!(m.max_active, 1000);
        assert_eq!(m.active_of(RoundKind::Pull), 1000);
        assert_eq!(m.active_of(RoundKind::Push), 30);
        assert_eq!(m.active_of(RoundKind::PushPull), 500);
        assert_eq!(m.mean_active(), 1530.0 / 4.0);
        // Delta subtracts totals but keeps the max (like max_message_bits).
        let snapshot = m;
        m.record_round(RoundKind::Pull, 200);
        let delta = m.snapshot_delta(&snapshot);
        assert_eq!(delta.active_nodes_total, 200);
        assert_eq!(delta.max_active, 1000);
        // Addition sums totals and maxes the maxima.
        let sum = m + m;
        assert_eq!(sum.active_nodes_total, 2 * m.active_nodes_total);
        assert_eq!(sum.max_active, 1000);
        assert_eq!(Metrics::new().mean_active(), 0.0);
    }

    #[test]
    fn fault_counters_survive_delta_addition_and_rates() {
        let mut m = Metrics::new();
        m.record_attempt(RoundKind::Pull);
        m.record_attempt(RoundKind::Push);
        m.record_attempt(RoundKind::Push);
        m.record_attempt(RoundKind::Push);
        m.record_crash();
        m.record_drop();
        m.record_drop();
        m.record_delay();
        m.record_failure();
        assert_eq!(m.crashed_operations, 1);
        assert_eq!(m.messages_dropped, 2);
        assert_eq!(m.messages_delayed, 1);
        // 1 failed + 2 dropped + 1 delayed over 4 attempts.
        assert_eq!(m.disturbance_rate(), 1.0);
        assert_eq!(m.failure_rate(), 0.25);
        let snapshot = m;
        m.record_drop();
        m.record_delay();
        m.record_crash();
        let delta = m.snapshot_delta(&snapshot);
        assert_eq!(delta.messages_dropped, 1);
        assert_eq!(delta.messages_delayed, 1);
        assert_eq!(delta.crashed_operations, 1);
        let sum = m + m;
        assert_eq!(sum.messages_dropped, 6);
        assert_eq!(sum.messages_delayed, 4);
        assert_eq!(sum.crashed_operations, 4);
        assert_eq!(Metrics::new().disturbance_rate(), 0.0);
    }

    #[test]
    fn per_round_and_per_node_round_bit_rates() {
        let mut m = Metrics::new();
        assert_eq!(m.bits_per_round(), 0.0);
        assert_eq!(m.mean_bits_per_node_round(), 0.0);
        // A dense round of 10 nodes delivering 8 messages of 64 bits…
        m.record_round(RoundKind::Pull, 10);
        for _ in 0..8 {
            m.record_delivery(64);
        }
        assert_eq!(m.bits_per_round(), 512.0);
        assert_eq!(m.mean_bits_per_node_round(), 51.2);
        // …then a sparse round of 2 nodes delivering 2 more.
        m.record_round(RoundKind::Pull, 2);
        m.record_delivery(64);
        m.record_delivery(64);
        assert_eq!(m.bits_per_round(), 640.0 / 2.0);
        assert_eq!(m.mean_bits_per_node_round(), 640.0 / 12.0);
    }

    #[test]
    fn scheduling_counters_are_excluded_from_equality() {
        // Two runs of the same algorithm at different thread counts (or
        // fused vs looped) produce identical trajectories but different
        // scheduling counters — they must still compare equal.
        let mut a = Metrics::new();
        a.record_round(RoundKind::Pull, 10);
        let mut b = a;
        b.pool_dispatches = 500;
        b.worker_wakeups = 1500;
        assert_eq!(a, b);
        // Any trajectory counter still breaks equality.
        b.record_delivery(8);
        assert_ne!(a, b);
    }

    #[test]
    fn scheduling_counters_survive_delta_and_addition() {
        let mut m = Metrics::new();
        m.pool_dispatches = 10;
        m.worker_wakeups = 30;
        let snapshot = m;
        m.pool_dispatches = 17;
        m.worker_wakeups = 51;
        let delta = m.snapshot_delta(&snapshot);
        assert_eq!(delta.pool_dispatches, 7);
        assert_eq!(delta.worker_wakeups, 21);
        let sum = m + delta;
        assert_eq!(sum.pool_dispatches, 24);
        assert_eq!(sum.worker_wakeups, 72);
    }

    #[test]
    fn round_kind_display() {
        assert_eq!(RoundKind::Pull.to_string(), "pull");
        assert_eq!(RoundKind::Push.to_string(), "push");
        assert_eq!(RoundKind::PushPull.to_string(), "push-pull");
    }
}
