//! Struct-of-arrays state storage and the memory-layout primitives of the
//! engine's hot data path.
//!
//! Dense rounds at n = 10⁶ are **memory-bound**: one round of the pull
//! primitive streams both state buffers (a write pass over `next`, a
//! sequential read of `states` and a random gather of contact targets), so
//! throughput is set by bytes moved and by how much of the gather latency the
//! core can hide — not by RNG or dispatch cost. This module collects the
//! layout-level tools the engine and the algorithm crates use to squeeze the
//! per-byte cost:
//!
//! * [`Columns`] / [`ColumnStore`] — struct-of-arrays storage for per-node
//!   algorithm state. A `Columns` implementation (hand-written, or generated
//!   by [`columns!`](crate::columns)) mirrors a per-node struct as parallel
//!   flat `Vec`s, one per field, so whole-population passes ("divide every
//!   `s` by its `w`", "count the `good` flags") run over contiguous
//!   same-typed arrays that autovectorise, instead of striding over
//!   interleaved structs. `ColumnStore` keeps the engine-compatible
//!   `states()` / per-slot accessor API on top.
//! * [`SampleMatrix`] — the flat result of
//!   [`Engine::collect_samples_flat`](crate::Engine::collect_samples_flat):
//!   `k` rounds of samples for `n` nodes in **one** column-major allocation
//!   (sample `r` of node `v` at `r·n + v`), where the nested
//!   `Vec<Vec<M>>` of `collect_samples` costs `n` little heap allocations
//!   per call and scatters the write pass across the heap. Each sampling
//!   round writes one contiguous column.
//! * [`clone_block`] — the cache-blocked back-buffer refresh: a tight
//!   per-slot `clone_from` loop over one block, which the compiler lowers to
//!   a memcpy for `Copy` states, issued block-by-block so the freshly copied
//!   slots are still in L1/L2 when the round's `apply`/`fold` pass reads
//!   them.
//! * [`swap_runs`] — the batched copy-on-write commit of the sparse rounds:
//!   maximal contiguous id runs are swapped with `swap_with_slice` instead
//!   of slot-by-slot `mem::swap`.
//! * [`prefetch_read`] — a best-effort software prefetch, used by the
//!   delivery gathers (pull targets, CSR sender states, sparse pair lists)
//!   to issue the random-access loads [`prefetch_dist`] iterations ahead of
//!   their use.
//!
//! ## Tuning knobs
//!
//! Two environment variables tune the layout machinery (read once, at first
//! use; per-engine overrides exist for tests and benches —
//! [`Engine::set_copy_block`](crate::Engine::set_copy_block),
//! [`Engine::set_prefetch_dist`](crate::Engine::set_prefetch_dist)):
//!
//! * `GOSSIP_COPY_BLOCK` — slots per refresh block (default
//!   [`DEFAULT_COPY_BLOCK`], sized so a block of `u64`-sized states stays
//!   comfortably inside L2 alongside the front-buffer line stream).
//! * `GOSSIP_PREFETCH_DIST` — how many gather targets ahead to prefetch
//!   (default [`DEFAULT_PREFETCH_DIST`]; `0` disables prefetching).
//!
//! **None of these affect results.** Block sizes and prefetch distances
//! change only the order in which cache lines are touched, never the order
//! in which per-node closures observe state — the property tests pin the
//! blocked paths bit-identical to the per-slot reference for arbitrary
//! block sizes and active sets.

use std::sync::OnceLock;

/// Default refresh block: 2048 slots ≈ 16 KiB of `u64` states per buffer, so
/// one block's front + back halves fit in L1d on common cores and several
/// blocks fit in L2 for fatter states.
pub const DEFAULT_COPY_BLOCK: usize = 2048;

/// Default prefetch lookahead for the random gathers. Far enough that the
/// line arrives before use at typical DRAM latencies (~64 in-flight slots at
/// a few ns per loop iteration), near enough not to thrash L1.
pub const DEFAULT_PREFETCH_DIST: usize = 32;

/// Gather arrays at or below this size are treated as cache-resident and
/// skip the target-batch + prefetch machinery entirely: every random read
/// hits L1/L2 anyway, so the extra bookkeeping is pure overhead (measured
/// ~10% on 32 KiB state arrays). 64 KiB sits between typical L1d (32–48
/// KiB, where the overhead loses) and the 128 KiB arrays where batching
/// already wins. Like the other knobs, the gate never affects results.
pub const PREFETCH_MIN_BYTES: usize = 64 * 1024;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
}

/// The process-wide refresh block size: `GOSSIP_COPY_BLOCK`, or
/// [`DEFAULT_COPY_BLOCK`]. Clamped to at least 1. Read once.
pub fn copy_block() -> usize {
    static BLOCK: OnceLock<usize> = OnceLock::new();
    *BLOCK.get_or_init(|| env_usize("GOSSIP_COPY_BLOCK", DEFAULT_COPY_BLOCK).max(1))
}

/// The process-wide prefetch distance: `GOSSIP_PREFETCH_DIST`, or
/// [`DEFAULT_PREFETCH_DIST`]. `0` disables software prefetching. Read once.
pub fn prefetch_dist() -> usize {
    static DIST: OnceLock<usize> = OnceLock::new();
    *DIST.get_or_init(|| env_usize("GOSSIP_PREFETCH_DIST", DEFAULT_PREFETCH_DIST))
}

/// Issues a best-effort prefetch of the cache line holding `*p` into the
/// nearest cache level. A pure scheduling hint: it performs no observable
/// memory access, faults on nothing (prefetch instructions ignore invalid
/// addresses), and compiles to nothing on architectures without a hint.
///
/// This is the crate's second sanctioned `unsafe` exception (after the
/// worker pool's lifetime erasure, see [`crate::pool`]): the intrinsics are
/// `unsafe fn` only because all architecture intrinsics are; a prefetch hint
/// has no safety obligations.
#[inline(always)]
#[allow(unsafe_code)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint with no architectural side effects;
    // it cannot fault and accesses no memory observably.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(p as *const i8, _MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is the AArch64 prefetch hint; like `_mm_prefetch` it has
    // no architectural side effects and cannot fault.
    unsafe {
        std::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Refreshes one back-buffer block from the front buffer: a tight per-slot
/// `clone_from` loop that the compiler lowers to a memcpy for `Copy` states
/// (and that reuses existing heap capacity for states that own buffers).
///
/// The engine's round passes call this block-by-block (block size
/// [`copy_block`] / [`crate::Engine::set_copy_block`]) instead of cloning
/// each slot immediately before serving it, so (a) the copy runs at
/// streaming bandwidth with no interleaved random reads, and (b) the block
/// is still cache-hot when the serve/apply pass comes back over it.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn clone_block<S: Clone>(dst: &mut [S], src: &[S]) {
    assert_eq!(dst.len(), src.len(), "clone_block slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        d.clone_from(s);
    }
}

/// Swaps the slots named by the sorted id list `ids` (global ids, offset by
/// `base` into the two equal-length slices), batching maximal contiguous id
/// runs into `swap_with_slice` calls — the sparse rounds' copy-on-write
/// commit. Dense-ish active sets (the common "all ids in a range" case)
/// become a handful of block swaps at memcpy speed; a fully scattered set
/// degenerates to the per-slot swap it replaces.
///
/// `ids` must be sorted ascending and duplicate-free (the [`crate::ActiveSet`]
/// / written-set invariant), and every `id - base` must index into the
/// slices.
#[inline]
pub fn swap_runs<S>(ids: &[u32], base: usize, a: &mut [S], b: &mut [S]) {
    let mut i = 0;
    while i < ids.len() {
        let run_start = ids[i] as usize - base;
        // Singleton runs are the common case for fragmented active sets;
        // a direct swap skips the slice machinery entirely.
        if i + 1 >= ids.len() || ids[i + 1] != ids[i] + 1 {
            let (lo, hi) = (&mut a[run_start], &mut b[run_start]);
            std::mem::swap(lo, hi);
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < ids.len() && ids[j] == ids[j - 1] + 1 {
            j += 1;
        }
        let run_end = run_start + (j - i);
        a[run_start..run_end].swap_with_slice(&mut b[run_start..run_end]);
        i = j;
    }
}

/// A per-node state type mirrored as parallel flat columns, one per field.
///
/// Implementations are usually generated by the [`columns!`](crate::columns)
/// macro for plain-old-data states (every field lands in its own
/// `Vec<field type>`); generic states hand-implement the trait (see
/// `RobustColumns` in the `quantile-gossip` crate for the pattern). The
/// contract: all columns always have equal length, and
/// `get(i)`/`set(i, _)` round-trip states losslessly.
pub trait Columns: Default {
    /// The row type: one node's state, materialised from the columns.
    type State;

    /// Appends one state, pushing each field onto its column.
    fn push(&mut self, state: &Self::State);

    /// Number of rows (states) stored.
    fn len(&self) -> usize;

    /// Whether the store holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises row `i` as a state value.
    fn get(&self, i: usize) -> Self::State;

    /// Overwrites row `i` from a state value.
    fn set(&mut self, i: usize, state: &Self::State);

    /// Builds columns from a slice of states.
    fn from_states(states: &[Self::State]) -> Self {
        let mut cols = Self::default();
        for s in states {
            cols.push(s);
        }
        cols
    }

    /// Materialises every row back into a `Vec` of states (the layout the
    /// [`Engine`](crate::Engine) consumes).
    fn to_states(&self) -> Vec<Self::State> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// An [`Engine`](crate::Engine)-compatible column-backed state buffer.
///
/// Holds a [`Columns`] implementation and keeps the engine's familiar
/// API shape on top of it: [`states`](ColumnStore::states) materialises the
/// row vector an engine is constructed from, [`get`](ColumnStore::get) /
/// [`set`](ColumnStore::set) are per-slot accessor views, and
/// [`for_each`](ColumnStore::for_each) is the `local_step`-shaped whole-
/// population update (each closure invocation sees one node's state as a
/// struct view; the mutation is written back to the columns). Column slices
/// themselves are reachable via [`columns`](ColumnStore::columns) for the
/// flat passes that are the point of the exercise.
///
/// ```
/// use gossip_net::soa::{Columns, ColumnStore};
///
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// struct Pair { s: f64, w: f64 }
/// gossip_net::columns! {
///     /// Columns of `Pair`.
///     struct PairColumns for Pair { s: f64, w: f64 }
/// }
///
/// let states = vec![Pair { s: 1.0, w: 2.0 }, Pair { s: 3.0, w: 4.0 }];
/// let mut store = ColumnStore::<PairColumns>::from_states(&states);
/// store.for_each(|_, p| p.s *= 10.0);
/// assert_eq!(store.columns().s, vec![10.0, 30.0]);     // flat column pass
/// assert_eq!(store.get(1), Pair { s: 30.0, w: 4.0 });  // struct view
/// assert_eq!(store.states().len(), 2);                 // engine-shaped
/// ```
#[derive(Debug, Clone, Default)]
pub struct ColumnStore<C: Columns> {
    cols: C,
}

impl<C: Columns> ColumnStore<C> {
    /// Builds the store from a slice of per-node states.
    pub fn from_states(states: &[C::State]) -> Self {
        ColumnStore {
            cols: C::from_states(states),
        }
    }

    /// Wraps already-built columns.
    pub fn from_columns(cols: C) -> Self {
        ColumnStore { cols }
    }

    /// Number of nodes stored.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Materialises node `i`'s state (the accessor view).
    pub fn get(&self, i: usize) -> C::State {
        self.cols.get(i)
    }

    /// Overwrites node `i`'s state from a struct value.
    pub fn set(&mut self, i: usize, state: &C::State) {
        self.cols.set(i, state);
    }

    /// Materialises all states in engine layout (`Vec<State>`, indexed by
    /// node id) — feed this to [`Engine::from_states`](crate::Engine::from_states).
    pub fn states(&self) -> Vec<C::State> {
        self.cols.to_states()
    }

    /// Applies a `local_step`-shaped update to every node: the closure gets
    /// `(node id, &mut state view)`; mutations are written back to the
    /// columns.
    pub fn for_each(&mut self, mut f: impl FnMut(usize, &mut C::State)) {
        for i in 0..self.cols.len() {
            let mut state = self.cols.get(i);
            f(i, &mut state);
            self.cols.set(i, &state);
        }
    }

    /// The underlying columns (flat field arrays).
    pub fn columns(&self) -> &C {
        &self.cols
    }

    /// Mutable access to the underlying columns.
    pub fn columns_mut(&mut self) -> &mut C {
        &mut self.cols
    }

    /// Consumes the store, returning the columns.
    pub fn into_columns(self) -> C {
        self.cols
    }
}

/// Generates a struct-of-arrays mirror of a plain-old-data state struct and
/// its [`Columns`](crate::soa::Columns) implementation.
///
/// Each listed field becomes a public `Vec<field type>` column; the
/// generated type derives `Debug`, `Clone` and `Default` and round-trips
/// states through `get`/`set`/`push` field by field. The state type must be
/// constructible from its listed fields (i.e. list **all** fields, in any
/// order).
///
/// ```
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// pub struct Point { x: f64, tag: u64 }
/// gossip_net::columns! {
///     /// Flat columns of [`Point`].
///     pub struct PointColumns for Point { x: f64, tag: u64 }
/// }
/// use gossip_net::soa::Columns;
/// let cols = PointColumns::from_states(&[Point { x: 0.5, tag: 7 }]);
/// assert_eq!(cols.x, vec![0.5]);
/// assert_eq!(cols.tag, vec![7]);
/// assert_eq!(cols.get(0), Point { x: 0.5, tag: 7 });
/// ```
#[macro_export]
macro_rules! columns {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident for $state:path { $($field:ident : $ty:ty),+ $(,)? }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Default)]
        $vis struct $name {
            $(
                #[doc = concat!("The `", stringify!($field), "` column.")]
                $vis $field: Vec<$ty>,
            )+
        }

        impl $crate::soa::Columns for $name {
            type State = $state;

            fn push(&mut self, state: &Self::State) {
                $( self.$field.push(state.$field.clone()); )+
            }

            fn len(&self) -> usize {
                let lens = [ $( self.$field.len() ),+ ];
                debug_assert!(
                    lens.iter().all(|&l| l == lens[0]),
                    "column lengths diverged"
                );
                lens[0]
            }

            fn get(&self, i: usize) -> Self::State {
                $state {
                    $( $field: self.$field[i].clone(), )+
                }
            }

            fn set(&mut self, i: usize, state: &Self::State) {
                $( self.$field[i] = state.$field.clone(); )+
            }
        }
    };
}

/// The flat, column-major result of
/// [`Engine::collect_samples_flat`](crate::Engine::collect_samples_flat):
/// sample `r` (of `k`) for node `v` lives at index `r·n + v`, `None` marking
/// a failed pull. One allocation for the whole matrix — each of the `k`
/// sampling rounds writes one contiguous column — where the nested
/// `Vec<Vec<M>>` of `collect_samples` costs `n` per-node allocations and a
/// pointer chase per access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleMatrix<M> {
    n: usize,
    k: usize,
    data: Vec<Option<M>>,
}

impl<M> SampleMatrix<M> {
    /// An empty matrix for `n` nodes and `k` sampling rounds (all entries
    /// "failed" until a round fills its column).
    pub fn empty(n: usize, k: usize) -> Self {
        let mut data = Vec::new();
        data.resize_with(n * k, || None);
        SampleMatrix { n, k, data }
    }

    /// Number of nodes (rows).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sampling rounds (columns).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sample node `v` collected in round `r`, if that pull succeeded.
    pub fn get(&self, v: usize, r: usize) -> Option<&M> {
        assert!(v < self.n && r < self.k, "sample index out of range");
        self.data[r * self.n + v].as_ref()
    }

    /// Node `v`'s successfully collected samples, in round order — the
    /// equivalent of `collect_samples(..)[v].iter()`.
    pub fn row(&self, v: usize) -> impl Iterator<Item = &M> + '_ {
        assert!(v < self.n, "node id out of range");
        (0..self.k).filter_map(move |r| self.data[r * self.n + v].as_ref())
    }

    /// Number of successful samples node `v` holds.
    pub fn count(&self, v: usize) -> usize {
        self.row(v).count()
    }

    /// Mutable access to round `r`'s contiguous column (the engine's fill
    /// pass).
    pub(crate) fn column_mut(&mut self, r: usize) -> &mut [Option<M>] {
        let n = self.n;
        &mut self.data[r * n..(r + 1) * n]
    }
}

impl<M: Copy> SampleMatrix<M> {
    /// The sample node `v` collected in round `r`, by value.
    pub fn sample(&self, v: usize, r: usize) -> Option<M> {
        self.get(v, r).copied()
    }
}

impl<M> From<Vec<Vec<M>>> for SampleMatrix<M> {
    /// Converts the nested `collect_samples` layout (each inner vector the
    /// successful samples of one node, in round order). Round provenance is
    /// not recorded in the nested layout, so samples are packed into the
    /// earliest columns; [`SampleMatrix::row`] yields identical sequences
    /// either way.
    fn from(nested: Vec<Vec<M>>) -> Self {
        let n = nested.len();
        let k = nested.iter().map(Vec::len).max().unwrap_or(0);
        let mut m = SampleMatrix::empty(n, k);
        for (v, bucket) in nested.into_iter().enumerate() {
            for (r, msg) in bucket.into_iter().enumerate() {
                m.data[r * n + v] = Some(msg);
            }
        }
        m
    }
}

/// The flat, lane-major delivery buffer of
/// [`Engine::collect_lanes`](crate::Engine::collect_lanes): one pull round in
/// which every node receives its sampled peer's `lanes`-wide row of values.
///
/// Layout: the row delivered to node `v` occupies `values[v·lanes ..
/// (v+1)·lanes]`, and the realised source id sits in a parallel width-1
/// column (`sources[v]`, with [`LaneMatrix::NO_SOURCE`] marking a failed or
/// skipped pull). Where the nested `collect_samples(1, ..)` layout costs one
/// heap `Vec` per node per round, a `LaneMatrix` is two construction-time
/// allocations reused round after round.
///
/// Contract: rows whose source is `NO_SOURCE` are *undefined* — the buffer
/// is reused across rounds without clearing values, so such rows hold stale
/// data. Readers must gate every row access on the source column, which is
/// what [`LaneMatrix::row`] does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMatrix<V> {
    lanes: usize,
    values: Vec<V>,
    sources: Vec<u32>,
}

impl<V> LaneMatrix<V> {
    /// The source-column sentinel for "nothing delivered this round".
    pub const NO_SOURCE: u32 = u32::MAX;

    /// Number of nodes (rows).
    pub fn n(&self) -> usize {
        self.sources.len()
    }

    /// Number of lanes (row width).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The id of the peer whose row node `v` received, if the pull succeeded.
    pub fn source(&self, v: usize) -> Option<u32> {
        let s = self.sources[v];
        (s != Self::NO_SOURCE).then_some(s)
    }

    /// The row delivered to node `v`, if the pull succeeded.
    pub fn row(&self, v: usize) -> Option<&[V]> {
        self.source(v)
            .map(|_| &self.values[v * self.lanes..(v + 1) * self.lanes])
    }

    /// The whole value buffer, lane-major (row `v` at `v·lanes..`). Rows
    /// without a source hold stale data — gate on [`LaneMatrix::sources`].
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The source column; [`LaneMatrix::NO_SOURCE`] marks undelivered rows.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Marks every row undelivered (values are left stale, per the type's
    /// contract) — the collector's per-round reset.
    pub(crate) fn reset_sources(&mut self) {
        self.sources.fill(Self::NO_SOURCE);
    }

    /// The value buffer and source column, mutably — the engine's fill pass.
    pub(crate) fn parts_mut(&mut self) -> (&mut [V], &mut [u32]) {
        (&mut self.values, &mut self.sources)
    }
}

impl<V: Clone> LaneMatrix<V> {
    /// An empty matrix for `n` nodes and `lanes` lanes, every row
    /// undelivered. `fill` initialises the (undefined) value slots so the
    /// buffer is fully materialised up front.
    pub fn empty(n: usize, lanes: usize, fill: V) -> Self {
        assert!(lanes > 0, "a lane matrix needs at least one lane");
        LaneMatrix {
            lanes,
            values: vec![fill; n * lanes],
            sources: vec![Self::NO_SOURCE; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Demo {
        a: u64,
        b: f64,
    }

    crate::columns! {
        /// Test columns.
        struct DemoColumns for Demo { a: u64, b: f64 }
    }

    fn demo_states() -> Vec<Demo> {
        (0..10)
            .map(|i| Demo {
                a: i,
                b: i as f64 / 2.0,
            })
            .collect()
    }

    #[test]
    fn columns_round_trip_states() {
        let states = demo_states();
        let cols = DemoColumns::from_states(&states);
        assert_eq!(cols.len(), states.len());
        assert_eq!(cols.a, (0..10).collect::<Vec<u64>>());
        assert_eq!(cols.to_states(), states);
    }

    #[test]
    fn column_store_accessor_views() {
        let mut store = ColumnStore::<DemoColumns>::from_states(&demo_states());
        assert_eq!(store.len(), 10);
        assert!(!store.is_empty());
        store.set(3, &Demo { a: 99, b: -1.0 });
        assert_eq!(store.get(3), Demo { a: 99, b: -1.0 });
        store.for_each(|i, st| st.a += i as u64);
        assert_eq!(store.columns().a[3], 99 + 3);
        assert_eq!(store.states()[0], Demo { a: 0, b: 0.0 });
        // Column mutation is visible through the struct views.
        store.columns_mut().b[0] = 7.5;
        assert_eq!(store.get(0).b, 7.5);
        assert_eq!(store.into_columns().a.len(), 10);
    }

    #[test]
    fn clone_block_matches_per_slot_clone() {
        let src: Vec<u64> = (0..1000).map(|i| i * 31).collect();
        let mut dst = vec![0u64; 1000];
        clone_block(&mut dst, &src);
        assert_eq!(dst, src);
        // Non-Copy states clone too.
        let src: Vec<Vec<u8>> = (0..50).map(|i| vec![i as u8; i]).collect();
        let mut dst: Vec<Vec<u8>> = vec![Vec::new(); 50];
        clone_block(&mut dst, &src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn clone_block_rejects_length_mismatch() {
        clone_block(&mut [0u64; 2], &[1u64; 3]);
    }

    #[test]
    fn swap_runs_matches_per_slot_swap() {
        for ids in [
            vec![],
            vec![0u32],
            vec![0, 1, 2, 3],
            vec![2, 5, 6, 7, 11],
            vec![0, 2, 4, 6, 8],
            (0..64u32).collect(),
        ] {
            let n = 64usize;
            let mut a: Vec<u64> = (0..n as u64).collect();
            let mut b: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
            let (mut ra, mut rb) = (a.clone(), b.clone());
            for &id in &ids {
                std::mem::swap(&mut ra[id as usize], &mut rb[id as usize]);
            }
            swap_runs(&ids, 0, &mut a, &mut b);
            assert_eq!(a, ra, "ids {ids:?}");
            assert_eq!(b, rb, "ids {ids:?}");
        }
    }

    #[test]
    fn swap_runs_honours_base_offset() {
        let ids = [10u32, 11, 13];
        let mut a = vec![1u64, 2, 3, 4];
        let mut b = vec![9u64, 8, 7, 6];
        swap_runs(&ids, 10, &mut a, &mut b);
        assert_eq!(a, vec![9, 8, 3, 6]);
        assert_eq!(b, vec![1, 2, 7, 4]);
    }

    #[test]
    fn sample_matrix_layout_and_accessors() {
        let mut m: SampleMatrix<u64> = SampleMatrix::empty(3, 2);
        assert_eq!((m.n(), m.k()), (3, 2));
        m.column_mut(0).copy_from_slice(&[Some(10), None, Some(30)]);
        m.column_mut(1).copy_from_slice(&[Some(11), Some(21), None]);
        assert_eq!(m.sample(0, 0), Some(10));
        assert_eq!(m.sample(1, 0), None);
        assert_eq!(m.row(0).copied().collect::<Vec<_>>(), vec![10, 11]);
        assert_eq!(m.row(1).copied().collect::<Vec<_>>(), vec![21]);
        assert_eq!(m.row(2).copied().collect::<Vec<_>>(), vec![30]);
        assert_eq!(m.count(1), 1);
    }

    #[test]
    fn sample_matrix_from_nested_preserves_rows() {
        let nested = vec![vec![1u64, 2], vec![], vec![5]];
        let m = SampleMatrix::from(nested);
        assert_eq!((m.n(), m.k()), (3, 2));
        assert_eq!(m.row(0).copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(m.count(1), 0);
        assert_eq!(m.row(2).copied().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn lane_matrix_rows_are_gated_on_the_source_column() {
        let mut m = LaneMatrix::empty(3, 2, 0u64);
        assert_eq!((m.n(), m.lanes()), (3, 2));
        assert!((0..3).all(|v| m.row(v).is_none()));
        {
            let (values, sources) = m.parts_mut();
            values[2..4].copy_from_slice(&[10, 11]);
            sources[1] = 7;
        }
        assert_eq!(m.source(1), Some(7));
        assert_eq!(m.row(1), Some(&[10u64, 11][..]));
        assert_eq!(m.row(0), None);
        m.reset_sources();
        assert!((0..3).all(|v| m.row(v).is_none()));
    }

    #[test]
    fn prefetch_is_a_no_op_semantically() {
        let v = [42u64; 8];
        prefetch_read(&v[7]);
        prefetch_read(std::ptr::null::<u64>()); // hints may not fault
        assert_eq!(v[7], 42);
    }

    #[test]
    fn env_knobs_have_sane_defaults() {
        // The OnceLocks are process-wide; in the test binary no env override
        // is set, so the defaults (or a caller-set override) must be
        // positive / finite.
        assert!(copy_block() >= 1);
        let _ = prefetch_dist(); // any usize is valid; 0 disables
    }
}
