//! Deterministic seed derivation for reproducible experiments.
//!
//! Every experiment in EXPERIMENTS.md runs many independent trials; each trial
//! needs its own random stream that is (a) independent of the others and
//! (b) reproducible from a single master seed. [`SeedSequence`] provides this
//! with a SplitMix64 stream, the standard way to expand one 64-bit seed into
//! many.

use serde::{Deserialize, Serialize};

/// Expands a master seed into an arbitrary number of independent 64-bit seeds.
///
/// ```
/// use gossip_net::SeedSequence;
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// // The same master seed always yields the same sequence.
/// assert_eq!(SeedSequence::new(42).next_seed(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master_seed: u64) -> Self {
        SeedSequence { state: master_seed }
    }

    /// Returns the next derived seed, advancing the sequence.
    pub fn next_seed(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush when used as a
        // stream and is the recommended way to seed other generators.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the `i`-th derived seed without mutating the sequence.
    pub fn seed_at(&self, i: u64) -> u64 {
        let mut copy = *self;
        copy.state = copy.state.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i));
        copy.next_seed()
    }

    /// Derives a labelled sub-sequence (e.g. one per experiment phase), so that
    /// adding trials to one phase does not perturb another phase's randomness.
    pub fn fork(&self, label: u64) -> SeedSequence {
        let mut copy = *self;
        copy.state ^= label.wrapping_mul(0xA24B_AED4_963E_E407);
        copy.next_seed();
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_master_seed() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_master_seeds_diverge() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(8);
        let same = (0..100).filter(|_| a.next_seed() == b.next_seed()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seq = SeedSequence::new(123);
        let seeds: HashSet<u64> = (0..10_000).map(|_| seq.next_seed()).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn seed_at_matches_sequential_advance() {
        let seq = SeedSequence::new(99);
        let mut seq2 = SeedSequence::new(99);
        let _ = seq2.next_seed(); // advance once => index 1
        assert_eq!(seq.seed_at(1), seq2.next_seed());
    }

    #[test]
    fn forks_are_independent() {
        let base = SeedSequence::new(5);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let overlap = (0..100).filter(|_| f1.next_seed() == f2.next_seed()).count();
        assert_eq!(overlap, 0);
    }
}
