//! Deterministic randomness: seed derivation for experiments and the
//! counter-based per-node streams that make parallel rounds reproducible.
//!
//! Two tools live here:
//!
//! * [`SeedSequence`] expands one master seed into many independent seeds —
//!   one per trial of an experiment — with a SplitMix64 stream.
//! * [`NodeRng`] is a **counter-based** generator keyed by
//!   `(seed, round, node, stream)`. Every node in every round gets its own
//!   stream whose output depends only on the key, never on how many draws
//!   other nodes made or on which thread executed them. This is what lets the
//!   [`Engine`](crate::Engine) run rounds data-parallel while staying
//!   bit-identical to a sequential run: contact selection, failure coin-flips
//!   and algorithm-local coins are all drawn from `NodeRng` streams.
//!
//! Both are built on the SplitMix64 finalizer (Steele, Lea, Flood 2014),
//! which passes BigCrush when used as a stream and is the standard way to
//! expand one 64-bit seed into many.

/// The SplitMix64 additive constant (the "golden gamma").
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a strong 64-bit mixing function.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a master seed into an arbitrary number of independent 64-bit seeds.
///
/// ```
/// use gossip_net::SeedSequence;
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// // The same master seed always yields the same sequence.
/// assert_eq!(SeedSequence::new(42).next_seed(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master_seed: u64) -> Self {
        SeedSequence { state: master_seed }
    }

    /// Returns the next derived seed, advancing the sequence.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Returns the `i`-th derived seed without mutating the sequence.
    pub fn seed_at(&self, i: u64) -> u64 {
        let mut copy = *self;
        copy.state = copy.state.wrapping_add(GOLDEN_GAMMA.wrapping_mul(i));
        copy.next_seed()
    }

    /// Derives a labelled sub-sequence (e.g. one per experiment phase), so that
    /// adding trials to one phase does not perturb another phase's randomness.
    pub fn fork(&self, label: u64) -> SeedSequence {
        let mut copy = *self;
        copy.state ^= label.wrapping_mul(0xA24B_AED4_963E_E407);
        copy.next_seed();
        copy
    }
}

/// A deterministic per-node random stream, keyed by `(seed, round, node, stream)`.
///
/// The key fully determines the stream: two `NodeRng`s with the same key
/// produce the same outputs regardless of thread count, iteration order, or
/// how much randomness any *other* node consumed. The [`Engine`](crate::Engine)
/// hands one to each node per round (for contact selection and failure coins)
/// and to each node per [`local_step`](crate::Engine::local_step) (for
/// algorithm-local coins such as the probability-δ branch of Algorithm 1).
///
/// `NodeRng` implements [`rand::RngCore`], so all of [`rand::Rng`]'s sampling
/// methods (`gen`, `gen_range`, `gen_bool`) are available on it.
///
/// ```
/// use gossip_net::rng::NodeRng;
/// use rand::Rng;
///
/// let mut a = NodeRng::keyed(7, 3, 41, NodeRng::STREAM_ROUND);
/// let mut b = NodeRng::keyed(7, 3, 41, NodeRng::STREAM_ROUND);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());           // same key, same stream
/// let mut c = NodeRng::keyed(7, 3, 42, NodeRng::STREAM_ROUND);
/// assert_ne!(a.gen::<u64>(), c.gen::<u64>());           // different node
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRng {
    state: u64,
}

impl NodeRng {
    /// Stream id for the engine's own draws in a communication round
    /// (failure coin, then contact target(s), in that order).
    pub const STREAM_ROUND: u64 = 1;
    /// Stream id for algorithm-local coins handed out by
    /// [`local_step`](crate::Engine::local_step).
    pub const STREAM_LOCAL: u64 = 2;
    /// Stream id for topology construction (the seeded random-regular graph
    /// builder of [`crate::topology`]); disjoint from the round and local
    /// streams so graph construction never perturbs round randomness.
    pub const STREAM_TOPOLOGY: u64 = 3;
    /// Stream id for **participation coins**: algorithm-level draws that
    /// decide *whether* a node takes part in a sparse phase (e.g. the
    /// probability-δ final iteration of the tournament schedules) before any
    /// round of the phase runs. Disjoint from the round/local streams so
    /// membership selection never perturbs the rounds' randomness, and keyed
    /// per `(seed, phase-index, node)` so a run replays identically at any
    /// thread count.
    pub const STREAM_PARTICIPATION: u64 = 4;
    /// Stream id for **crash coins**: the per-`(node, round)` draws of a
    /// [`ChurnModel`](crate::fault::ChurnModel) deciding whether a node
    /// crashes this round. Disjoint from every other stream so enabling churn
    /// never perturbs the algorithm's own randomness — a
    /// [`FaultPlan::none()`](crate::fault::FaultPlan::none) run is
    /// bit-identical to a run without the fault layer at all.
    pub const STREAM_FAULT_CRASH: u64 = 5;
    /// Stream id for **per-contact loss coins**: one draw per
    /// `(sender, receiver, round)` deciding whether a delivery is dropped in
    /// flight ([`LossModel`](crate::fault::LossModel)). Keyed by a packed
    /// `(sender, receiver)` pair so the two directions of a push–pull round
    /// get independent coins.
    pub const STREAM_FAULT_LOSS: u64 = 6;
    /// Stream id for **straggler coins**: the per-`(sender, round)` draws of a
    /// [`StragglerModel`](crate::fault::StragglerModel) deciding whether a
    /// push lands late and by how many rounds.
    pub const STREAM_FAULT_DELAY: u64 = 7;

    /// Creates the stream for the given key.
    ///
    /// The key words are absorbed one at a time through the SplitMix64
    /// finalizer, each multiplied by a distinct odd constant first so that
    /// structured keys (small consecutive rounds and node ids) land far apart
    /// in state space.
    #[inline]
    pub fn keyed(seed: u64, round: u64, node: u64, stream: u64) -> NodeRng {
        Self::key_prefix(seed, round, stream).node(node)
    }

    /// Precomputes the node-independent `(seed, round, stream)` part of a
    /// [`NodeRng::keyed`] key.
    ///
    /// The first two of `keyed`'s three finalizer applications depend only on
    /// the seed, the stream id and the round, so a round loop can absorb them
    /// once and derive each node's stream with [`KeyPrefix::node`] — one
    /// xor-multiply plus one finalizer per node instead of three finalizers.
    /// `NodeRng::key_prefix(s, r, st).node(v)` is `NodeRng::keyed(s, r, v,
    /// st)` *by construction* (`keyed` is implemented on top of it).
    #[inline]
    pub fn key_prefix(seed: u64, round: u64, stream: u64) -> KeyPrefix {
        let mut state = mix64(seed ^ GOLDEN_GAMMA.wrapping_mul(stream));
        state = mix64(state ^ round.wrapping_mul(0xA24B_AED4_963E_E407));
        KeyPrefix { prefix: state }
    }

    /// Returns the next 64 random bits of this stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, bound)` (multiply-shift; bias `O(bound/2^64)`).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl rand::RngCore for NodeRng {
    fn next_u64(&mut self) -> u64 {
        NodeRng::next_u64(self)
    }
}

/// The loop-invariant `(seed, round, stream)` prefix of a [`NodeRng`] key,
/// produced by [`NodeRng::key_prefix`].
///
/// Hot round loops hold one `KeyPrefix` per round and key each node's stream
/// with [`KeyPrefix::node`], skipping the two finalizer applications that the
/// full [`NodeRng::keyed`] would redo per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPrefix {
    prefix: u64,
}

impl KeyPrefix {
    /// The per-node stream for this prefix — identical to
    /// [`NodeRng::keyed`] with the same `(seed, round, stream)` and `node`.
    #[inline]
    pub fn node(self, node: u64) -> NodeRng {
        NodeRng {
            state: mix64(self.prefix ^ node.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_master_seed() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_master_seeds_diverge() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(8);
        let same = (0..100).filter(|_| a.next_seed() == b.next_seed()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seq = SeedSequence::new(123);
        let seeds: HashSet<u64> = (0..10_000).map(|_| seq.next_seed()).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn seed_at_matches_sequential_advance() {
        let seq = SeedSequence::new(99);
        let mut seq2 = SeedSequence::new(99);
        let _ = seq2.next_seed(); // advance once => index 1
        assert_eq!(seq.seed_at(1), seq2.next_seed());
    }

    #[test]
    fn forks_are_independent() {
        let base = SeedSequence::new(5);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let overlap = (0..100)
            .filter(|_| f1.next_seed() == f2.next_seed())
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn key_prefix_matches_full_keying() {
        // The hoisted two-stage keying must be bit-identical to keyed() for
        // every key shape the engine uses (including extreme word values).
        for seed in [0u64, 1, 42, u64::MAX] {
            for round in [0u64, 1, 3, 1 << 40] {
                for stream in [NodeRng::STREAM_ROUND, NodeRng::STREAM_LOCAL, 77] {
                    let prefix = NodeRng::key_prefix(seed, round, stream);
                    for node in [0u64, 1, 999, u64::MAX - 1] {
                        assert_eq!(prefix.node(node), NodeRng::keyed(seed, round, node, stream));
                    }
                }
            }
        }
    }

    #[test]
    fn node_rng_depends_on_every_key_word() {
        let base = NodeRng::keyed(1, 2, 3, 4);
        for (s, r, n, st) in [(2, 2, 3, 4), (1, 3, 3, 4), (1, 2, 4, 4), (1, 2, 3, 5)] {
            assert_ne!(NodeRng::keyed(s, r, n, st), base);
        }
        assert_eq!(NodeRng::keyed(1, 2, 3, 4), base);
    }

    #[test]
    fn node_streams_have_no_pairwise_collisions_at_simulation_scale() {
        // First outputs of 100k distinct (round, node) keys are all distinct —
        // a birthday-bound sanity check on the keying.
        let mut seen = HashSet::new();
        for round in 0..10u64 {
            for node in 0..10_000u64 {
                seen.insert(NodeRng::keyed(77, round, node, NodeRng::STREAM_ROUND).next_u64());
            }
        }
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn next_below_is_roughly_uniform_and_in_range() {
        let mut rng = NodeRng::keyed(5, 0, 0, 1);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let x = rng.next_below(7) as usize;
            counts[x] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "count {c}");
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = NodeRng::keyed(9, 1, 2, 3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn node_rng_works_with_the_rand_traits() {
        use rand::Rng;
        let mut rng = NodeRng::keyed(3, 1, 4, 1);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let y = rng.gen_range(0..100usize);
        assert!(y < 100);
    }
}
