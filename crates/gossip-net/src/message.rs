//! Message size accounting.
//!
//! The gossip model in the paper restricts messages to `O(log n)` bits.
//! Rather than enforcing a hard limit (which would make it impossible to
//! implement and measure the larger-message baselines of Appendix A), the
//! simulator *accounts* for the number of bits every exchanged message would
//! occupy on the wire. Experiment E8 of the reproduction is generated from
//! these counters.

/// Types that know how many bits they would occupy when sent as a gossip
/// message.
///
/// The accounting is intentionally simple and deterministic: fixed-width
/// encodings for scalars, and the sum of element sizes (plus a 32-bit length
/// prefix) for vectors. This is what a straightforward binary wire format
/// would use and is what the paper's `O(log n)`-bit budget refers to.
pub trait MessageSize {
    /// Number of bits this message occupies on the wire.
    fn message_bits(&self) -> u64;
}

macro_rules! impl_message_size_fixed {
    ($($t:ty => $bits:expr),* $(,)?) => {
        $(
            impl MessageSize for $t {
                fn message_bits(&self) -> u64 {
                    $bits
                }
            }
        )*
    };
}

impl_message_size_fixed! {
    u8 => 8, u16 => 16, u32 => 32, u64 => 64, u128 => 128, usize => 64,
    i8 => 8, i16 => 16, i32 => 32, i64 => 64, i128 => 128, isize => 64,
    f32 => 32, f64 => 64, bool => 1,
}

impl MessageSize for () {
    fn message_bits(&self) -> u64 {
        0
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn message_bits(&self) -> u64 {
        self.0.message_bits() + self.1.message_bits()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn message_bits(&self) -> u64 {
        self.0.message_bits() + self.1.message_bits() + self.2.message_bits()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn message_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, MessageSize::message_bits)
    }
}

/// The wire footprint of a variable-length sequence: a 32-bit length prefix
/// plus the elements.
///
/// This is the formula behind `Vec<T>`'s [`MessageSize`] impl, exposed so
/// allocation-free paths (e.g. the engine's lane-matrix collector, which
/// serves a borrowed row instead of building a `Vec`) charge exactly the
/// same bits as the vector message they replace.
pub fn seq_message_bits<T: MessageSize>(items: &[T]) -> u64 {
    32 + items.iter().map(MessageSize::message_bits).sum::<u64>()
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn message_bits(&self) -> u64 {
        seq_message_bits(self)
    }
}

impl<T: MessageSize> MessageSize for &T {
    fn message_bits(&self) -> u64 {
        (**self).message_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(42u64.message_bits(), 64);
        assert_eq!(42u32.message_bits(), 32);
        assert_eq!(1.5f64.message_bits(), 64);
        assert_eq!(true.message_bits(), 1);
        assert_eq!(().message_bits(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u64, 2u64).message_bits(), 128);
        assert_eq!((1u64, 2u64, 3u32).message_bits(), 160);
        assert_eq!(Some(7u64).message_bits(), 65);
        assert_eq!(None::<u64>.message_bits(), 1);
    }

    #[test]
    fn vec_size_includes_length_prefix() {
        let v = vec![1u64, 2, 3];
        assert_eq!(v.message_bits(), 32 + 3 * 64);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.message_bits(), 32);
    }

    #[test]
    fn reference_forwards_to_value() {
        let x = 9u64;
        assert_eq!(x.message_bits(), 64);
    }
}
