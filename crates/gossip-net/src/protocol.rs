//! Per-node protocol abstraction.
//!
//! Most algorithms in this repository are expressed directly against
//! [`Engine`] rounds, which is both faithful to the model and
//! fast at millions of nodes. For users who want to plug in their own gossip
//! dynamics — and for the engine-fidelity ablation (`engine_ablation` bench) —
//! this module provides a small per-node state-machine interface: a
//! [`NodeProtocol`] describes what a single node serves and how it reacts to
//! pulled (or pushed) values, and [`ProtocolRunner`] drives one instance per
//! node through synchronous rounds — pull rounds by default, push rounds via
//! [`ProtocolRunner::step_push`] / [`ProtocolRunner::run_push`].
//!
//! The runner inherits everything from its [`EngineConfig`], including the
//! communication [`Topology`]: a protocol written once runs
//! unchanged on the complete graph, an expander, a ring or a torus.

use crate::active::ActiveSet;
use crate::engine::{Engine, EngineConfig, SparsePushOutcome};
use crate::message::MessageSize;
use crate::metrics::Metrics;
use crate::topology::Topology;

/// The behaviour of a single node in a gossip protocol.
///
/// One instance exists per node. In every pull round, the runner asks each
/// node what it [serves](NodeProtocol::serve), delivers to each non-failed
/// node the message served by a uniformly random neighbour, and then asks
/// whether the node considers itself [finished](NodeProtocol::is_finished).
/// In a push round (see [`ProtocolRunner::step_push`]) the direction flips:
/// each node's served message is delivered to a uniformly random neighbour,
/// which receives it through [`on_push`](NodeProtocol::on_push).
///
/// Because rounds execute data-parallel (see the
/// [engine docs](crate::engine)), protocol instances must be
/// `Clone + Send + Sync` to be driven by [`ProtocolRunner`], and
/// [`serve`](NodeProtocol::serve) must be a pure function of the node's state.
pub trait NodeProtocol {
    /// The message type exchanged by the protocol.
    type Message: MessageSize + Clone;
    /// The value a node outputs once the protocol has finished.
    type Output;

    /// The message this node would serve to anyone contacting it this round
    /// (and the message it pushes in a push round).
    fn serve(&self) -> Self::Message;

    /// Handles the message pulled this round; `None` means this node's pull
    /// failed (see [`FailureModel`](crate::FailureModel)).
    fn on_pull(&mut self, round: u64, pulled: Option<Self::Message>);

    /// Handles one message pushed to this node this round (invoked once per
    /// delivered message, in ascending sender order).
    ///
    /// The default ignores pushed messages; override it when driving the
    /// protocol with [`ProtocolRunner::step_push`] / [`run_push`]
    /// (a protocol that ignores pushes never converges under them).
    ///
    /// [`run_push`]: ProtocolRunner::run_push
    fn on_push(&mut self, round: u64, pushed: Self::Message) {
        let _ = (round, pushed);
    }

    /// Whether this node has converged. The runner stops once every node has.
    fn is_finished(&self) -> bool {
        false
    }

    /// The node's final output.
    fn output(&self) -> Self::Output;
}

/// The result of driving a protocol to completion.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Rounds actually executed.
    pub rounds: u64,
    /// Communication metrics of the run.
    pub metrics: Metrics,
    /// Whether every node reported `is_finished` before the round budget ran out.
    pub converged: bool,
}

/// What one `step_*_reporting` round did under the engine's fault plan: which
/// nodes sat the round out crashed, and the round's metrics delta (fault
/// counters included) — enough for a driver loop to implement retry or
/// budget-inflation logic per round instead of per run.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Nodes that were down (crashed under the fault plan's churn model)
    /// during the round, in ascending id order. Empty without churn.
    pub crashed: Vec<crate::NodeId>,
    /// The round's metrics delta: attempts, deliveries, and the
    /// [`Metrics::failed_operations`] / [`Metrics::crashed_operations`] /
    /// [`Metrics::messages_dropped`] / [`Metrics::messages_delayed`] fault
    /// counters it incurred.
    pub delta: Metrics,
}

/// Drives one [`NodeProtocol`] instance per node through synchronous rounds.
#[derive(Debug)]
pub struct ProtocolRunner<P> {
    engine: Engine<P>,
}

impl<P: NodeProtocol + Clone + Send + Sync> ProtocolRunner<P> {
    /// Creates a runner over the given per-node protocol instances.
    ///
    /// The configuration's [`Topology`] decides which neighbours nodes
    /// contact; the default is the complete graph.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two instances are supplied or the configured
    /// topology cannot be realised on this network size; use
    /// [`ProtocolRunner::try_new`] for a fallible constructor.
    pub fn new(nodes: Vec<P>, config: EngineConfig) -> Self {
        ProtocolRunner {
            engine: Engine::from_states(nodes, config),
        }
    }

    /// Fallible variant of [`ProtocolRunner::new`].
    ///
    /// # Errors
    ///
    /// Propagates the [`Engine::try_from_states`] errors (too few nodes,
    /// unrealisable topology).
    pub fn try_new(nodes: Vec<P>, config: EngineConfig) -> crate::Result<Self> {
        Ok(ProtocolRunner {
            engine: Engine::try_from_states(nodes, config)?,
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.engine.n()
    }

    /// The communication topology the runner's rounds sample peers from.
    pub fn topology(&self) -> &Topology {
        self.engine.topology()
    }

    /// Communication metrics accumulated **so far** — readable mid-run, so a
    /// driver loop can meter round/message budgets while the protocol is
    /// still converging (the final snapshot is also on the
    /// [`ProtocolOutcome`]).
    pub fn metrics(&self) -> Metrics {
        self.engine.metrics()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.engine.round()
    }

    /// Runs one synchronous pull round.
    pub fn step(&mut self) {
        let round = self.engine.round() + 1;
        self.engine.pull_round(
            |_, node| node.serve(),
            |_, node, pulled| node.on_pull(round, pulled),
        );
    }

    /// Runs one synchronous push round: every node's served message is
    /// delivered to a uniformly random neighbour, which folds it in through
    /// [`NodeProtocol::on_push`] (ascending sender order).
    pub fn step_push(&mut self) {
        let round = self.engine.round() + 1;
        self.engine.push_round(
            |_, node| Some(node.serve()),
            |_, node, pushed| node.on_push(round, pushed),
            |_, _, _| {},
        );
    }

    /// [`ProtocolRunner::step`] with a per-round fault report: which nodes
    /// were crashed during the round, and the round's metrics delta. Use this
    /// from driver loops that need to react to faults round-by-round (retry
    /// a round's worth of work, inflate a budget, exclude churned nodes).
    pub fn step_reporting(&mut self) -> StepReport {
        let before = self.engine.metrics();
        self.step();
        StepReport {
            crashed: self.engine.crashed_nodes(),
            delta: self.engine.metrics().snapshot_delta(&before),
        }
    }

    /// [`ProtocolRunner::step_push`] with a per-round fault report (see
    /// [`ProtocolRunner::step_reporting`]).
    pub fn step_push_reporting(&mut self) -> StepReport {
        let before = self.engine.metrics();
        self.step_push();
        StepReport {
            crashed: self.engine.crashed_nodes(),
            delta: self.engine.metrics().snapshot_delta(&before),
        }
    }

    /// Runs one **sparse** push round: only the members of `active` push
    /// (their served messages are delivered through
    /// [`NodeProtocol::on_push`]); engine cost is proportional to the
    /// active-set size, not `n`. Returns the round's
    /// [`SparsePushOutcome`], whose `receivers` list lets a driver loop grow
    /// its active set the way single-rumor spreading does
    /// ([`ActiveSet::union_sorted`]).
    ///
    /// # Panics
    ///
    /// Panics if `active` was built for a different network size.
    pub fn step_push_on(&mut self, active: &ActiveSet) -> SparsePushOutcome {
        let round = self.engine.round() + 1;
        self.engine.push_round_on(
            active,
            |_, node| Some(node.serve()),
            |_, node, pushed| node.on_push(round, pushed),
            |_, _, _| {},
        )
    }

    /// Runs pull rounds until every node is finished or `max_rounds` have
    /// elapsed.
    pub fn run(self, max_rounds: u64) -> ProtocolOutcome<P::Output> {
        self.run_with(max_rounds, ProtocolRunner::step)
    }

    /// Runs **push** rounds until every node is finished or `max_rounds`
    /// have elapsed.
    pub fn run_push(self, max_rounds: u64) -> ProtocolOutcome<P::Output> {
        self.run_with(max_rounds, ProtocolRunner::step_push)
    }

    fn run_with(mut self, max_rounds: u64, step: impl Fn(&mut Self)) -> ProtocolOutcome<P::Output> {
        // The whole convergence loop is one fused round program: the pool is
        // woken once and each round dispatches as a resident phase, with the
        // convergence scan (`all_finished`) running on the session thread
        // between rounds. Bit-identical to stepping unfused — the schedule
        // here is data-dependent (it ends at convergence), which is why this
        // records nothing and fuses the live loop instead.
        let pool = std::sync::Arc::clone(self.engine.pool());
        let mut converged = self.all_finished();
        pool.run_program(|| {
            while !converged && self.engine.round() < max_rounds {
                step(&mut self);
                converged = self.all_finished();
            }
        });
        let rounds = self.engine.round();
        let metrics = self.engine.metrics();
        let outputs = self
            .engine
            .into_states()
            .iter()
            .map(NodeProtocol::output)
            .collect();
        ProtocolOutcome {
            outputs,
            rounds,
            metrics,
            converged,
        }
    }

    fn all_finished(&self) -> bool {
        self.engine.states().iter().all(NodeProtocol::is_finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: every node tracks the maximum value it has seen.
    #[derive(Debug, Clone)]
    struct MaxSpread {
        current: u64,
        target: u64,
    }

    impl NodeProtocol for MaxSpread {
        type Message = u64;
        type Output = u64;

        fn serve(&self) -> u64 {
            self.current
        }

        fn on_pull(&mut self, _round: u64, pulled: Option<u64>) {
            if let Some(p) = pulled {
                self.current = self.current.max(p);
            }
        }

        fn on_push(&mut self, _round: u64, pushed: u64) {
            self.current = self.current.max(pushed);
        }

        fn is_finished(&self) -> bool {
            self.current == self.target
        }

        fn output(&self) -> u64 {
            self.current
        }
    }

    fn max_spread_nodes(n: usize) -> Vec<MaxSpread> {
        (0..n)
            .map(|v| MaxSpread {
                current: v as u64,
                target: (n - 1) as u64,
            })
            .collect()
    }

    #[test]
    fn protocol_runner_spreads_max_to_all_nodes() {
        let n = 512;
        let runner = ProtocolRunner::new(max_spread_nodes(n), EngineConfig::with_seed(13));
        let outcome = runner.run(200);
        assert!(outcome.converged);
        assert!(outcome.outputs.iter().all(|&v| v == (n - 1) as u64));
        // Pull-only spreading of a single rumor takes O(log n) rounds.
        assert!(outcome.rounds <= 60, "rounds = {}", outcome.rounds);
        assert_eq!(outcome.metrics.rounds, outcome.rounds);
    }

    #[test]
    fn push_rounds_also_spread_the_max() {
        let n = 512;
        let runner = ProtocolRunner::new(max_spread_nodes(n), EngineConfig::with_seed(29));
        let outcome = runner.run_push(200);
        assert!(outcome.converged);
        assert!(outcome.outputs.iter().all(|&v| v == (n - 1) as u64));
        // Push-only single-rumor spreading is Θ(log n) too (coupon phase).
        assert!(outcome.rounds <= 80, "rounds = {}", outcome.rounds);
        assert_eq!(outcome.metrics.push_rounds, outcome.rounds);
        assert_eq!(outcome.metrics.pull_rounds, 0);
    }

    #[test]
    fn sparse_push_steps_spread_a_rumor_from_one_source() {
        // Single-rumor spreading through the runner's sparse driver: the
        // informed set is the active set, grown per round from the reported
        // receivers. Engine activity tracks the informed curve, not n.
        let n = 512;
        let nodes: Vec<MaxSpread> = (0..n)
            .map(|v| MaxSpread {
                current: u64::from(v == 0),
                target: 1,
            })
            .collect();
        let mut runner = ProtocolRunner::new(nodes, EngineConfig::with_seed(41));
        let mut informed = ActiveSet::from_members(n, [0]).unwrap();
        let mut rounds = 0;
        while informed.len() < n && rounds < 200 {
            let out = runner.step_push_on(&informed);
            informed.union_sorted(&out.receivers);
            rounds += 1;
        }
        assert_eq!(informed.len(), n, "rumor did not spread");
        assert!(rounds <= 80, "rounds = {rounds}");
        let m = runner.metrics();
        assert_eq!(m.push_rounds, rounds);
        // Total activity is the area under the informed curve — well below
        // the dense cost of rounds × n.
        assert!(m.active_push_nodes < rounds * n as u64 * 3 / 4);
    }

    #[test]
    fn metrics_are_readable_mid_run() {
        let mut runner = ProtocolRunner::new(max_spread_nodes(64), EngineConfig::with_seed(3));
        assert_eq!(runner.metrics().rounds, 0);
        runner.step();
        runner.step_push();
        let mid = runner.metrics();
        assert_eq!(mid.rounds, 2);
        assert_eq!(mid.pull_rounds, 1);
        assert_eq!(mid.push_rounds, 1);
        assert_eq!(runner.rounds(), 2);
        assert_eq!(mid.pulls_attempted, 64);
        assert_eq!(mid.pushes_attempted, 64);
    }

    #[test]
    fn reporting_steps_surface_crashes_and_fault_deltas() {
        use crate::fault::{ChurnModel, FaultPlan, LossModel};
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::with_rejoin(0.2, 2).unwrap())
            .with_loss(LossModel::uniform(0.3).unwrap());
        let config = EngineConfig::with_seed(17).fault(plan);
        let mut runner = ProtocolRunner::new(max_spread_nodes(256), config);
        let mut saw_crash = false;
        let mut saw_drop = false;
        for i in 0..12 {
            let report = if i % 2 == 0 {
                runner.step_reporting()
            } else {
                runner.step_push_reporting()
            };
            assert_eq!(report.delta.rounds, 1);
            assert_eq!(report.crashed.len() as u64, report.delta.crashed_operations);
            assert!(report.crashed.windows(2).all(|w| w[0] < w[1]));
            // Crashed nodes make no attempts.
            assert_eq!(
                report.delta.pulls_attempted + report.delta.pushes_attempted,
                256 - report.delta.crashed_operations
            );
            saw_crash |= !report.crashed.is_empty();
            saw_drop |= report.delta.messages_dropped > 0;
        }
        assert!(saw_crash, "20% churn over 12 rounds produced no crash");
        assert!(saw_drop, "30% loss over 12 rounds dropped nothing");
        // The mid-run cumulative metrics carry the fault counters too.
        let m = runner.metrics();
        assert!(m.crashed_operations > 0);
        assert!(m.messages_dropped > 0);
    }

    #[test]
    fn reporting_steps_without_faults_report_nothing() {
        let mut runner = ProtocolRunner::new(max_spread_nodes(64), EngineConfig::with_seed(5));
        let report = runner.step_reporting();
        assert!(report.crashed.is_empty());
        assert_eq!(report.delta.crashed_operations, 0);
        assert_eq!(report.delta.messages_dropped, 0);
        assert_eq!(report.delta.messages_delayed, 0);
        assert_eq!(report.delta.pulls_attempted, 64);
    }

    #[test]
    fn runner_honours_the_configured_topology() {
        use crate::Topology;
        let n = 64;
        let config = EngineConfig::with_seed(7).topology(Topology::ring(1));
        let runner = ProtocolRunner::new(max_spread_nodes(n), config);
        assert_eq!(runner.topology(), &Topology::ring(1));
        let outcome = runner.run(3 * n as u64);
        // On a k=1 ring information moves one hop per round: the max needs
        // ≥ n/2 rounds to reach everyone — far above the complete graph's
        // O(log n) — but it does converge within the diameter-bound budget.
        assert!(outcome.converged);
        assert!(
            outcome.rounds >= (n / 2) as u64,
            "ring spread faster than its diameter: {}",
            outcome.rounds
        );
        // And the unrealisable case fails cleanly through try_new.
        let bad = EngineConfig::with_seed(7).topology(Topology::ring(40));
        assert!(ProtocolRunner::try_new(max_spread_nodes(16), bad).is_err());
    }

    #[test]
    fn protocol_runner_respects_round_budget() {
        let nodes: Vec<MaxSpread> = (0..16)
            .map(|v| MaxSpread {
                current: v as u64,
                target: u64::MAX,
            })
            .collect();
        let outcome = ProtocolRunner::new(nodes, EngineConfig::with_seed(1)).run(5);
        assert!(!outcome.converged);
        assert_eq!(outcome.rounds, 5);
    }

    #[test]
    fn already_finished_protocol_runs_zero_rounds() {
        let nodes: Vec<MaxSpread> = (0..4)
            .map(|_| MaxSpread {
                current: 9,
                target: 9,
            })
            .collect();
        let outcome = ProtocolRunner::new(nodes, EngineConfig::with_seed(1)).run(100);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds, 0);
    }
}
