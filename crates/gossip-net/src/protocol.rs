//! Per-node protocol abstraction.
//!
//! Most algorithms in this repository are expressed directly against
//! [`Engine`] rounds, which is both faithful to the model and
//! fast at millions of nodes. For users who want to plug in their own gossip
//! dynamics — and for the engine-fidelity ablation (`engine_ablation` bench) —
//! this module provides a small per-node state-machine interface: a
//! [`NodeProtocol`] describes what a single node serves and how it reacts to a
//! pulled value, and [`ProtocolRunner`] drives one instance per node through
//! synchronous pull rounds.

use crate::engine::{Engine, EngineConfig};
use crate::message::MessageSize;
use crate::metrics::Metrics;

/// The behaviour of a single node in a pull-based gossip protocol.
///
/// One instance exists per node. In every round, the runner asks each node
/// what it [serves](NodeProtocol::serve), delivers to each non-failed node the
/// message served by a uniformly random other node, and then asks whether the
/// node considers itself [finished](NodeProtocol::is_finished).
///
/// Because rounds execute data-parallel (see the
/// [engine docs](crate::engine)), protocol instances must be
/// `Clone + Send + Sync` to be driven by [`ProtocolRunner`], and
/// [`serve`](NodeProtocol::serve) must be a pure function of the node's state.
pub trait NodeProtocol {
    /// The message type exchanged by the protocol.
    type Message: MessageSize + Clone;
    /// The value a node outputs once the protocol has finished.
    type Output;

    /// The message this node would serve to anyone contacting it this round.
    fn serve(&self) -> Self::Message;

    /// Handles the message pulled this round; `None` means this node's pull
    /// failed (see [`FailureModel`](crate::FailureModel)).
    fn on_pull(&mut self, round: u64, pulled: Option<Self::Message>);

    /// Whether this node has converged. The runner stops once every node has.
    fn is_finished(&self) -> bool {
        false
    }

    /// The node's final output.
    fn output(&self) -> Self::Output;
}

/// The result of driving a protocol to completion.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Rounds actually executed.
    pub rounds: u64,
    /// Communication metrics of the run.
    pub metrics: Metrics,
    /// Whether every node reported `is_finished` before the round budget ran out.
    pub converged: bool,
}

/// Drives one [`NodeProtocol`] instance per node through synchronous pull rounds.
#[derive(Debug)]
pub struct ProtocolRunner<P> {
    engine: Engine<P>,
}

impl<P: NodeProtocol + Clone + Send + Sync> ProtocolRunner<P> {
    /// Creates a runner over the given per-node protocol instances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two instances are supplied.
    pub fn new(nodes: Vec<P>, config: EngineConfig) -> Self {
        ProtocolRunner {
            engine: Engine::from_states(nodes, config),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.engine.n()
    }

    /// Runs one synchronous pull round.
    pub fn step(&mut self) {
        let round = self.engine.round() + 1;
        self.engine.pull_round(
            |_, node| node.serve(),
            |_, node, pulled| node.on_pull(round, pulled),
        );
    }

    /// Runs until every node is finished or `max_rounds` have elapsed.
    pub fn run(mut self, max_rounds: u64) -> ProtocolOutcome<P::Output> {
        let mut converged = self.all_finished();
        while !converged && self.engine.round() < max_rounds {
            self.step();
            converged = self.all_finished();
        }
        let rounds = self.engine.round();
        let metrics = self.engine.metrics();
        let outputs = self
            .engine
            .into_states()
            .iter()
            .map(NodeProtocol::output)
            .collect();
        ProtocolOutcome {
            outputs,
            rounds,
            metrics,
            converged,
        }
    }

    fn all_finished(&self) -> bool {
        self.engine.states().iter().all(NodeProtocol::is_finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: every node tracks the maximum value it has seen.
    #[derive(Debug, Clone)]
    struct MaxSpread {
        current: u64,
        target: u64,
    }

    impl NodeProtocol for MaxSpread {
        type Message = u64;
        type Output = u64;

        fn serve(&self) -> u64 {
            self.current
        }

        fn on_pull(&mut self, _round: u64, pulled: Option<u64>) {
            if let Some(p) = pulled {
                self.current = self.current.max(p);
            }
        }

        fn is_finished(&self) -> bool {
            self.current == self.target
        }

        fn output(&self) -> u64 {
            self.current
        }
    }

    #[test]
    fn protocol_runner_spreads_max_to_all_nodes() {
        let n = 512;
        let nodes: Vec<MaxSpread> = (0..n)
            .map(|v| MaxSpread {
                current: v as u64,
                target: (n - 1) as u64,
            })
            .collect();
        let runner = ProtocolRunner::new(nodes, EngineConfig::with_seed(13));
        let outcome = runner.run(200);
        assert!(outcome.converged);
        assert!(outcome.outputs.iter().all(|&v| v == (n - 1) as u64));
        // Pull-only spreading of a single rumor takes O(log n) rounds.
        assert!(outcome.rounds <= 60, "rounds = {}", outcome.rounds);
        assert_eq!(outcome.metrics.rounds, outcome.rounds);
    }

    #[test]
    fn protocol_runner_respects_round_budget() {
        let nodes: Vec<MaxSpread> = (0..16)
            .map(|v| MaxSpread {
                current: v as u64,
                target: u64::MAX,
            })
            .collect();
        let outcome = ProtocolRunner::new(nodes, EngineConfig::with_seed(1)).run(5);
        assert!(!outcome.converged);
        assert_eq!(outcome.rounds, 5);
    }

    #[test]
    fn already_finished_protocol_runs_zero_rounds() {
        let nodes: Vec<MaxSpread> = (0..4)
            .map(|_| MaxSpread {
                current: 9,
                target: 9,
            })
            .collect();
        let outcome = ProtocolRunner::new(nodes, EngineConfig::with_seed(1)).run(100);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds, 0);
    }
}
