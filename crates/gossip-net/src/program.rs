//! Recorded round schedules replayed as one fused pool dispatch.
//!
//! The paper's algorithms are round-dominated: a tournament schedule runs
//! hundreds of short rounds, and each one dispatched through
//! [`WorkerPool::run`](crate::WorkerPool::run) pays a full wake/quiesce
//! hand-off — the dominant cost at small `n`. A [`RoundProgram`] records the
//! schedule up front (each step holds its closures), and
//! [`Engine::run_program`] replays the whole sequence inside one
//! [`Engine::fused`] block: the workers are woken once, stay resident
//! across every step, and synchronise between rounds on the pool's
//! spin-then-park phase barrier.
//!
//! Replay calls exactly the same engine primitives, in the same order, with
//! the same closures as the hand-written loop would — the program layer adds
//! no scheduling semantics of its own — so results are **bit-identical** to
//! the unfused loop (pinned by `tests/program.rs` against the golden
//! fingerprints, and by the determinism matrix at 1/2/8 threads).
//!
//! Steps with data-dependent structure (an active set computed from a
//! counter-based participation coin, a collect whose samples feed the same
//! step's local update) are recorded with [`RoundProgram::step`], whose body
//! gets `&mut Engine` and full freedom; the sugar methods cover the common
//! dense/sparse pull / push / push-pull / local / collect+local shapes.
//! Sequential work inside a step body runs on the session thread (executor
//! 0) while the workers hold at the barrier.
//!
//! ```
//! use gossip_net::{Engine, EngineConfig, RoundProgram};
//!
//! let mut engine = Engine::from_states(vec![0u64; 64], EngineConfig::with_seed(1));
//! let mut program: RoundProgram<'_, u64> = RoundProgram::new();
//! for _ in 0..8 {
//!     program.pull(|_, &v| v, |_, st, got| *st = (*st).max(got.unwrap_or(0)));
//!     program.local_step(|_, st, _| *st += 1);
//! }
//! engine.run_program(&mut program); // 16 rounds, one pool dispatch
//! assert_eq!(engine.metrics().rounds, 8);
//! ```

use crate::active::ActiveSet;
use crate::engine::Engine;
use crate::message::MessageSize;
use crate::rng::NodeRng;
use crate::soa::SampleMatrix;
use crate::NodeId;

/// What shape of round a recorded step performs — descriptive metadata for
/// reporting and debugging; execution is entirely driven by the step's body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// A dense or sparse pull round.
    Pull,
    /// A dense or sparse push round.
    Push,
    /// A dense or sparse push–pull round.
    PushPull,
    /// A communication-free local step.
    Local,
    /// A `k`-sample collect feeding a local update.
    Collect,
    /// An arbitrary recorded body (data-dependent structure).
    Custom,
}

impl std::fmt::Display for StepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StepKind::Pull => "pull",
            StepKind::Push => "push",
            StepKind::PushPull => "push-pull",
            StepKind::Local => "local",
            StepKind::Collect => "collect",
            StepKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A recorded step body: exclusive access to the engine, inside the session.
type StepBody<'a, S> = Box<dyn FnMut(&mut Engine<S>) + 'a>;

struct Step<'a, S> {
    kind: StepKind,
    body: StepBody<'a, S>,
}

/// A recorded sequence of round descriptors, replayed by
/// [`Engine::run_program`] as one fused pool dispatch.
///
/// Build with the sugar methods ([`pull`](Self::pull), [`push`](Self::push),
/// [`push_pull`](Self::push_pull), [`local_step`](Self::local_step),
/// [`collect_local`](Self::collect_local), and their `_on` active-set
/// variants) or record arbitrary bodies with [`step`](Self::step). A program
/// borrows what its closures capture (`'a`), can be replayed repeatedly, and
/// is engine-agnostic: the same program can run on several engines.
pub struct RoundProgram<'a, S> {
    steps: Vec<Step<'a, S>>,
}

impl<S> std::fmt::Debug for RoundProgram<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundProgram")
            .field("steps", &self.len())
            .field("kinds", &self.kinds().collect::<Vec<_>>())
            .finish()
    }
}

impl<S> Default for RoundProgram<'_, S> {
    fn default() -> Self {
        RoundProgram::new()
    }
}

impl<'a, S> RoundProgram<'a, S> {
    /// An empty program.
    pub fn new() -> Self {
        RoundProgram { steps: Vec::new() }
    }

    /// Number of recorded steps. A step is one schedule entry; most execute
    /// exactly one engine round ([`collect_local`](Self::collect_local)
    /// executes `k` collect rounds plus a local step, custom steps whatever
    /// their body does).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps have been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The recorded step kinds, in execution order.
    pub fn kinds(&self) -> impl Iterator<Item = StepKind> + '_ {
        self.steps.iter().map(|s| s.kind)
    }

    /// Records an arbitrary step: `body` runs with exclusive access to the
    /// engine, inside the fused session. Use this for data-dependent
    /// structure the sugar methods cannot express — participation sets drawn
    /// per iteration, collects feeding the same step's update, convergence
    /// bookkeeping on the session thread.
    pub fn step(&mut self, kind: StepKind, body: impl FnMut(&mut Engine<S>) + 'a) -> &mut Self {
        self.steps.push(Step {
            kind,
            body: Box::new(body),
        });
        self
    }

    fn replay(&mut self, engine: &mut Engine<S>) {
        for step in &mut self.steps {
            (step.body)(engine);
        }
    }
}

impl<'a, S: Send> RoundProgram<'a, S> {
    /// Records a dense local step ([`Engine::local_step`]).
    pub fn local_step(
        &mut self,
        f: impl Fn(NodeId, &mut S, &mut NodeRng) + Sync + 'a,
    ) -> &mut Self {
        self.step(StepKind::Local, move |e| e.local_step(&f))
    }

    /// Records a sparse local step ([`Engine::local_step_on`]) over `active`.
    pub fn local_step_on(
        &mut self,
        active: ActiveSet,
        f: impl Fn(NodeId, &mut S, &mut NodeRng) + Sync + 'a,
    ) -> &mut Self {
        self.step(StepKind::Local, move |e| e.local_step_on(&active, &f))
    }
}

impl<'a, S: Clone + Send + Sync> RoundProgram<'a, S> {
    /// Records a dense pull round ([`Engine::pull_round`]).
    pub fn pull<M, F, G>(&mut self, serve: F, apply: G) -> &mut Self
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync + 'a,
        G: Fn(NodeId, &mut S, Option<M>) + Sync + 'a,
    {
        self.step(StepKind::Pull, move |e| {
            e.pull_round(&serve, &apply);
        })
    }

    /// Records a sparse pull round ([`Engine::pull_round_on`]) over `active`.
    pub fn pull_on<M, F, G>(&mut self, active: ActiveSet, serve: F, apply: G) -> &mut Self
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync + 'a,
        G: Fn(NodeId, &mut S, Option<M>) + Sync + 'a,
    {
        self.step(StepKind::Pull, move |e| {
            e.pull_round_on(&active, &serve, &apply);
        })
    }

    /// Records a dense push round ([`Engine::push_round`]).
    pub fn push<M, F, G, H>(&mut self, make: F, fold: G, after: H) -> &mut Self
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync + 'a,
        G: Fn(NodeId, &mut S, M) + Sync + 'a,
        H: Fn(NodeId, &mut S, bool) + Sync + 'a,
    {
        self.step(StepKind::Push, move |e| {
            e.push_round(&make, &fold, &after);
        })
    }

    /// Records a sparse push round ([`Engine::push_round_on`]) over `active`.
    /// The [`SparsePushOutcome`](crate::SparsePushOutcome) is discarded;
    /// record a [`step`](Self::step) to consume it (e.g. to grow the next
    /// round's active set on the session thread).
    pub fn push_on<M, F, G, H>(
        &mut self,
        active: ActiveSet,
        make: F,
        fold: G,
        after: H,
    ) -> &mut Self
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> Option<M> + Sync + 'a,
        G: Fn(NodeId, &mut S, M) + Sync + 'a,
        H: Fn(NodeId, &mut S, bool) + Sync + 'a,
    {
        self.step(StepKind::Push, move |e| {
            e.push_round_on(&active, &make, &fold, &after);
        })
    }

    /// Records a dense push–pull round ([`Engine::push_pull_round`]).
    pub fn push_pull<M, F, G>(&mut self, serve: F, merge: G) -> &mut Self
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync + 'a,
        G: Fn(NodeId, &mut S, M) + Sync + 'a,
    {
        self.step(StepKind::PushPull, move |e| {
            e.push_pull_round(&serve, &merge);
        })
    }

    /// Records a sparse push–pull round ([`Engine::push_pull_round_on`])
    /// over `active`.
    pub fn push_pull_on<M, F, G>(&mut self, active: ActiveSet, serve: F, merge: G) -> &mut Self
    where
        M: MessageSize,
        F: Fn(NodeId, &S) -> M + Sync + 'a,
        G: Fn(NodeId, &mut S, M) + Sync + 'a,
    {
        self.step(StepKind::PushPull, move |e| {
            e.push_pull_round_on(&active, &serve, &merge);
        })
    }

    /// Records `k` sampling rounds feeding a local update: the step runs
    /// [`Engine::collect_samples_flat`]`(k, serve)` and immediately applies
    /// `apply` as a dense local step with each node's
    /// [`SampleMatrix`] in hand — the tournament-iteration shape
    /// (collect two samples, replace the value with their extremum).
    pub fn collect_local<M, F, A>(&mut self, k: usize, serve: F, apply: A) -> &mut Self
    where
        M: MessageSize + Send + Sync,
        F: Fn(NodeId, &S) -> M + Sync + 'a,
        A: Fn(NodeId, &mut S, &mut NodeRng, &SampleMatrix<M>) + Sync + 'a,
    {
        self.step(StepKind::Collect, move |e| {
            let samples = e.collect_samples_flat(k, &serve);
            e.local_step(|v, st, rng| apply(v, st, rng, &samples));
        })
    }
}

impl<S> Engine<S> {
    /// Replays `program`'s steps, in order, as one fused pool dispatch (an
    /// [`Engine::fused`] block): the workers are woken once for the whole
    /// schedule and synchronise between rounds on the resident phase
    /// barrier. Bit-identical to executing the same steps as individual
    /// calls — only the dispatch cost (and the scheduling counters in
    /// [`Engine::metrics`]) changes.
    ///
    /// The program is replayable: running it again executes the same
    /// schedule from the engine's new state (rounds are keyed by the
    /// engine's monotone round counter, so the two replays draw fresh,
    /// deterministic randomness).
    pub fn run_program(&mut self, program: &mut RoundProgram<'_, S>) {
        self.fused(|e| program.replay(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine(n: usize, seed: u64) -> Engine<u64> {
        Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed))
    }

    #[test]
    fn builder_records_kinds_in_order() {
        let mut p: RoundProgram<'_, u64> = RoundProgram::new();
        assert!(p.is_empty());
        p.pull(|_, &v| v, |_, _, _| {});
        p.push(|_, &v| Some(v), |_, _, _| {}, |_, _, _| {});
        p.push_pull(|_, &v| v, |_, _, _| {});
        p.local_step(|_, _, _| {});
        p.collect_local(2, |_, &v| v, |_, _, _, _| {});
        p.step(StepKind::Custom, |_| {});
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.kinds().collect::<Vec<_>>(),
            [
                StepKind::Pull,
                StepKind::Push,
                StepKind::PushPull,
                StepKind::Local,
                StepKind::Collect,
                StepKind::Custom,
            ]
        );
        let dbg = format!("{p:?}");
        assert!(dbg.contains("steps: 6"), "{dbg}");
    }

    #[test]
    fn program_matches_the_equivalent_loop() {
        // The same 3-round schedule, recorded and hand-rolled, from the same
        // start: states and trajectory metrics must match exactly.
        let mut fused = engine(300, 42);
        let mut program: RoundProgram<'_, u64> = RoundProgram::new();
        program
            .pull(|_, &v| v, |_, st, got| *st = (*st).max(got.unwrap_or(0)))
            .local_step(|_, st, _| *st = st.wrapping_mul(3).wrapping_add(1))
            .push_pull(|_, &v| v, |_, st, got| *st = (*st).min(got));
        fused.run_program(&mut program);

        let mut looped = engine(300, 42);
        looped.pull_round(|_, &v| v, |_, st, got| *st = (*st).max(got.unwrap_or(0)));
        looped.local_step(|_, st, _| *st = st.wrapping_mul(3).wrapping_add(1));
        looped.push_pull_round(|_, &v| v, |_, st, got| *st = (*st).min(got));

        assert_eq!(fused.states(), looped.states());
        assert_eq!(fused.metrics(), looped.metrics());
        assert_eq!(fused.round(), looped.round());
    }

    #[test]
    fn program_is_replayable_and_advances_rounds() {
        let mut e = engine(200, 7);
        let mut p: RoundProgram<'_, u64> = RoundProgram::new();
        p.pull(|_, &v| v, |_, st, got| *st ^= got.unwrap_or(0));
        e.run_program(&mut p);
        e.run_program(&mut p);
        assert_eq!(e.metrics().rounds, 2);
        // The two replays must not repeat randomness: a replayed round is a
        // fresh round of the engine's counter-keyed streams.
        let mut looped = engine(200, 7);
        looped.pull_round(|_, &v| v, |_, st, got| *st ^= got.unwrap_or(0));
        looped.pull_round(|_, &v| v, |_, st, got| *st ^= got.unwrap_or(0));
        assert_eq!(e.states(), looped.states());
    }

    #[test]
    fn sparse_steps_replay_their_active_sets() {
        let n = 400;
        let active = ActiveSet::from_fn(n, |v| v % 3 == 0);
        let mut fused = engine(n, 11);
        let mut p: RoundProgram<'_, u64> = RoundProgram::new();
        p.pull_on(
            active.clone(),
            |_, &v| v,
            |_, st, got| *st = (*st).max(got.unwrap_or(0)),
        );
        p.local_step_on(active.clone(), |_, st, _| *st += 1);
        p.push_on(
            active.clone(),
            |_, &v| Some(v),
            |_, st, got| *st = (*st).min(got),
            |_, _, _| {},
        );
        p.push_pull_on(active.clone(), |_, &v| v, |_, st, got| *st ^= got);
        fused.run_program(&mut p);

        let mut looped = engine(n, 11);
        looped.pull_round_on(
            &active,
            |_, &v| v,
            |_, st, got| *st = (*st).max(got.unwrap_or(0)),
        );
        looped.local_step_on(&active, |_, st, _| *st += 1);
        looped.push_round_on(
            &active,
            |_, &v| Some(v),
            |_, st, got| *st = (*st).min(got),
            |_, _, _| {},
        );
        looped.push_pull_round_on(&active, |_, &v| v, |_, st, got| *st ^= got);

        assert_eq!(fused.states(), looped.states());
        assert_eq!(fused.metrics(), looped.metrics());
    }

    #[test]
    fn collect_local_matches_flat_collect_plus_local_step() {
        let mut fused = engine(256, 3);
        let mut p: RoundProgram<'_, u64> = RoundProgram::new();
        p.collect_local(
            2,
            |_, &v| v,
            |v, st, _, samples| {
                *st = samples
                    .sample(v, 0)
                    .unwrap_or(*st)
                    .min(samples.sample(v, 1).unwrap_or(*st));
            },
        );
        fused.run_program(&mut p);

        let mut looped = engine(256, 3);
        let samples = looped.collect_samples_flat(2, |_, &v| v);
        looped.local_step(|v, st, _| {
            *st = samples
                .sample(v, 0)
                .unwrap_or(*st)
                .min(samples.sample(v, 1).unwrap_or(*st));
        });

        assert_eq!(fused.states(), looped.states());
        assert_eq!(fused.metrics(), looped.metrics());
    }

    #[test]
    fn custom_steps_see_session_thread_state() {
        // A custom step's sequential bookkeeping (executor-0 work) runs
        // between rounds and can steer later steps.
        let mut e = engine(128, 5);
        let mut max_seen = 0u64;
        let mut p: RoundProgram<'_, u64> = RoundProgram::new();
        p.step(StepKind::Custom, |e| {
            e.pull_round(|_, &v| v, |_, st, got| *st = (*st).max(got.unwrap_or(0)));
            max_seen = e.states().iter().copied().max().unwrap_or(0);
        });
        e.run_program(&mut p);
        drop(p);
        assert_eq!(max_seen, 127);
    }

    #[test]
    fn fused_blocks_nest_with_programs() {
        let mut e = engine(100, 9);
        let rounds = e.fused(|e| {
            let mut p: RoundProgram<'_, u64> = RoundProgram::new();
            p.pull(|_, &v| v, |_, st, got| *st = (*st).max(got.unwrap_or(0)));
            e.run_program(&mut p); // nested: runs inside the outer session
            e.metrics().rounds
        });
        assert_eq!(rounds, 1);
    }

    #[test]
    fn step_kind_display() {
        assert_eq!(StepKind::Pull.to_string(), "pull");
        assert_eq!(StepKind::Push.to_string(), "push");
        assert_eq!(StepKind::PushPull.to_string(), "push-pull");
        assert_eq!(StepKind::Local.to_string(), "local");
        assert_eq!(StepKind::Collect.to_string(), "collect");
        assert_eq!(StepKind::Custom.to_string(), "custom");
    }
}
