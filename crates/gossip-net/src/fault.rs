//! Deterministic fault injection: churn, message loss, stragglers, and the
//! round-skip [`FailureModel`] composed into one [`FaultPlan`].
//!
//! The paper's Section 5 robustness model is a per-node, per-round failure
//! probability `p_{v,i} ≤ μ < 1` — a failed node silently skips its round.
//! Real deployments degrade in more ways than that, and a [`FaultPlan`]
//! models the three that matter for gossip round/accuracy bounds:
//!
//! * **crash-stop churn** ([`ChurnModel`]) — a node crashes and performs
//!   *nothing* from that round on, either permanently or until it rejoins
//!   after `k` rounds. The engine tracks the alive set round to round and
//!   intersects it with both dense rounds and sparse `*_on` active sets;
//!   contacts *targeting* a crashed node are dropped in flight.
//! * **per-contact message loss** ([`LossModel`]) — an individual delivery is
//!   dropped with a probability drawn per `(sender, receiver, round)`. Unlike
//!   the failure model, the sender still acted: only this one message is
//!   lost, and the two directions of a push–pull round fail independently.
//! * **stragglers** ([`StragglerModel`]) — a push lands `d ≥ 1` rounds late.
//!   The engine buffers the contact and folds it into the first push-capable
//!   round at or after its due round, re-deriving the message from the
//!   sender's state *at arrival* (`make` is pure, so no message values cross
//!   rounds). Pull contacts never straggle: a pull is a request/response
//!   within one synchronous round, so a late reply is modelled as a lost one
//!   ([`LossModel`]).
//! * the existing [`FailureModel`] rides along as the plan's fourth
//!   combinator, unchanged.
//!
//! ## Determinism
//!
//! Every fault coin is drawn from its own counter-RNG stream
//! ([`NodeRng::STREAM_FAULT_CRASH`](crate::rng::NodeRng::STREAM_FAULT_CRASH),
//! [`STREAM_FAULT_LOSS`](crate::rng::NodeRng::STREAM_FAULT_LOSS),
//! [`STREAM_FAULT_DELAY`](crate::rng::NodeRng::STREAM_FAULT_DELAY)), disjoint
//! from the algorithm's round/local streams. Injecting faults therefore never
//! perturbs the algorithm's own coin flips, faulted runs are bit-identical
//! across thread counts, and a [`FaultPlan::none`] engine takes the exact
//! code paths (and golden trajectories) of an engine without the fault layer.
//!
//! ## Per-contact decision order
//!
//! For one contact, faults apply sender-side first, then channel, then
//! receiver-side: sender crashed → failure-model coin → target sampling →
//! straggler coin (push only) → loss coin → receiver crashed. Each stage uses
//! its own stream, so enabling one fault kind never re-keys another's coins.

use crate::error::{GossipError, Result};
use crate::failure::FailureModel;

/// Crash-stop churn: each alive node crashes with a fixed probability per
/// round, permanently or rejoining after a fixed downtime.
///
/// While down, a node performs nothing — it neither pulls, pushes, serves,
/// nor folds — and contacts targeting it are dropped in flight
/// (counted in [`Metrics::messages_dropped`](crate::Metrics)). A node that
/// rejoins resumes with the state it crashed with (crash-*stop*, not
/// crash-recovery with amnesia).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    crash_probability: f64,
    rejoin_after: Option<u64>,
}

impl ChurnModel {
    /// Permanent crash-stop churn: every alive node crashes with probability
    /// `crash_probability` per round and never comes back.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidProbability`] unless
    /// `crash_probability ∈ [0, 1)`.
    pub fn crash_stop(crash_probability: f64) -> Result<Self> {
        validate_probability("crash_probability", crash_probability)?;
        Ok(ChurnModel {
            crash_probability,
            rejoin_after: None,
        })
    }

    /// Churn with rejoin: a crashed node is down for exactly `rejoin_after`
    /// rounds, then rejoins with its pre-crash state.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidProbability`] unless
    /// `crash_probability ∈ [0, 1)`, or [`GossipError::InvalidParameter`] if
    /// `rejoin_after` is zero.
    pub fn with_rejoin(crash_probability: f64, rejoin_after: u64) -> Result<Self> {
        validate_probability("crash_probability", crash_probability)?;
        if rejoin_after == 0 {
            return Err(GossipError::InvalidParameter {
                name: "rejoin_after",
                reason: "a crashed node must stay down for at least one round".into(),
            });
        }
        Ok(ChurnModel {
            crash_probability,
            rejoin_after: Some(rejoin_after),
        })
    }

    /// Per-round crash probability of an alive node.
    pub fn crash_probability(&self) -> f64 {
        self.crash_probability
    }

    /// Downtime in rounds before a crashed node rejoins; `None` means the
    /// crash is permanent.
    pub fn rejoin_after(&self) -> Option<u64> {
        self.rejoin_after
    }

    /// Upper bound on the probability that churn disturbs one *contact*:
    /// either endpoint being down kills it (a crashed node performs no
    /// operation; a contact to a crashed node is dropped), so the bound is
    /// `1 − (1 − d)²` at the steady-state down fraction `d = k·p/(1 + k·p)`
    /// of the crash/rejoin renewal process (alive nodes crash at rate `p`
    /// and dwell `k` rounds down).
    ///
    /// `None` for crash-stop churn: permanent crashes accumulate, so no
    /// per-round bound `μ < 1` holds over time — callers should measure
    /// (adaptive schedules) instead.
    pub fn unavailability_bound(&self) -> Option<f64> {
        let k = self.rejoin_after? as f64;
        let down = k * self.crash_probability / (1.0 + k * self.crash_probability);
        Some(1.0 - (1.0 - down) * (1.0 - down))
    }
}

/// Per-contact message loss: a delivery is dropped in flight with probability
/// `drop_probability`, drawn independently per `(sender, receiver, round)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    drop_probability: f64,
}

impl LossModel {
    /// Loss with the given per-contact drop probability.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidProbability`] unless
    /// `drop_probability ∈ [0, 1)`.
    pub fn uniform(drop_probability: f64) -> Result<Self> {
        validate_probability("drop_probability", drop_probability)?;
        Ok(LossModel { drop_probability })
    }

    /// Per-contact drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }
}

/// Stragglers: a push-direction contact lands `d` rounds late, with
/// `d` drawn uniformly from `1..=max_delay`.
///
/// Delayed contacts are buffered by the engine and folded into the first
/// push-capable round (push or push–pull, dense or sparse) at or after their
/// due round; the message is re-derived from the sender's state at arrival.
/// If the receiver is down at arrival, or the sender has gone silent
/// (`make` returns `None`), the late message is dropped instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerModel {
    straggle_probability: f64,
    max_delay: u64,
}

impl StragglerModel {
    /// Stragglers with the given per-push probability and maximum delay.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidProbability`] unless
    /// `straggle_probability ∈ [0, 1)`, or
    /// [`GossipError::InvalidParameter`] if `max_delay` is zero.
    pub fn uniform(straggle_probability: f64, max_delay: u64) -> Result<Self> {
        validate_probability("straggle_probability", straggle_probability)?;
        if max_delay == 0 {
            return Err(GossipError::InvalidParameter {
                name: "max_delay",
                reason: "a straggler must be delayed by at least one round".into(),
            });
        }
        Ok(StragglerModel {
            straggle_probability,
            max_delay,
        })
    }

    /// Probability that a push straggles.
    pub fn straggle_probability(&self) -> f64 {
        self.straggle_probability
    }

    /// Largest possible delay in rounds (delays are uniform on
    /// `1..=max_delay`).
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }
}

/// A composable, fully deterministic fault-injection plan: crash-stop churn,
/// per-contact message loss, stragglers, and the Section 5 [`FailureModel`],
/// in any combination.
///
/// Build one with the `with_*` combinators and hand it to
/// [`EngineConfig::fault`](crate::EngineConfig::fault):
///
/// ```
/// use gossip_net::{ChurnModel, FaultPlan, LossModel, StragglerModel};
///
/// # fn main() -> gossip_net::Result<()> {
/// let plan = FaultPlan::none()
///     .with_churn(ChurnModel::with_rejoin(0.01, 4)?)
///     .with_loss(LossModel::uniform(0.1)?)
///     .with_stragglers(StragglerModel::uniform(0.05, 3)?);
/// assert!(!plan.is_none());
/// # Ok(())
/// # }
/// ```
///
/// [`FaultPlan::none`] (the default) is guaranteed bit-identical to an
/// engine without the fault layer: the engine's golden trajectory pins run
/// against it unchanged.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    churn: Option<ChurnModel>,
    loss: Option<LossModel>,
    stragglers: Option<StragglerModel>,
    failure: FailureModel,
}

impl FaultPlan {
    /// The empty plan: no churn, no loss, no stragglers,
    /// [`FailureModel::None`].
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can never inject anything.
    pub fn is_none(&self) -> bool {
        !self.is_disruptive() && self.failure.is_reliable()
    }

    /// Adds (or replaces) the churn combinator.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Adds (or replaces) the message-loss combinator.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Adds (or replaces) the straggler combinator.
    pub fn with_stragglers(mut self, stragglers: StragglerModel) -> Self {
        self.stragglers = Some(stragglers);
        self
    }

    /// Adds (or replaces) the round-skip failure-model combinator.
    pub fn with_failure(mut self, failure: FailureModel) -> Self {
        self.failure = failure;
        self
    }

    /// The churn combinator, if any.
    pub fn churn(&self) -> Option<&ChurnModel> {
        self.churn.as_ref()
    }

    /// The message-loss combinator, if any.
    pub fn loss(&self) -> Option<&LossModel> {
        self.loss.as_ref()
    }

    /// The straggler combinator, if any.
    pub fn stragglers(&self) -> Option<&StragglerModel> {
        self.stragglers.as_ref()
    }

    /// The round-skip failure model ([`FailureModel::None`] by default).
    pub fn failure(&self) -> &FailureModel {
        &self.failure
    }

    /// Whether the plan carries churn, loss, or stragglers — the fault kinds
    /// that need the engine's fault-aware round loops. A plan with only a
    /// [`FailureModel`] runs on the engine's dedicated failure loops instead
    /// (bit-identical to the pre-fault-layer engine).
    pub(crate) fn is_disruptive(&self) -> bool {
        self.churn.is_some() || self.loss.is_some() || self.stragglers.is_some()
    }

    /// Canonicalises the plan: combinators that can never fire are removed
    /// and the failure model is [normalised](FailureModel::normalized), so
    /// the engine's fast loops apply whenever they can.
    pub fn normalized(self) -> Self {
        FaultPlan {
            churn: self.churn.filter(|c| c.crash_probability > 0.0),
            loss: self.loss.filter(|l| l.drop_probability > 0.0),
            stragglers: self.stragglers.filter(|s| s.straggle_probability > 0.0),
            failure: self.failure.normalized(),
        }
    }

    /// Validates the plan against a network size at engine construction:
    /// a [`FailureModel::PerNode`] vector must have exactly `n` entries
    /// (a short vector used to be silently read as probability 0 for the
    /// missing tail).
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] on a length mismatch.
    pub(crate) fn validate_for(&self, n: usize) -> Result<()> {
        if let FailureModel::PerNode(ps) = &self.failure {
            if ps.len() != n {
                return Err(GossipError::InvalidParameter {
                    name: "failure",
                    reason: format!(
                        "FailureModel::PerNode has {} probabilities for an {n}-node network",
                        ps.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// A conservative upper bound on the probability that any single
    /// operation is disturbed by this plan (failure skip, crash, loss, or
    /// delay), or `None` if a combinator's mass cannot be bounded. This is
    /// the `μ` of the paper's `O(1/(1−μ))` compensation — adaptive schedules
    /// measure it instead (see `quantile-gossip`'s `AdaptiveRoundBudget`),
    /// but a static bound is still useful for sizing an initial budget.
    pub fn mu_upper_bound(&self) -> Option<f64> {
        let failure_mu = self.failure.mu_upper_bound()?;
        // Union bound over the independent per-contact coins. Churn counts
        // the steady-state unavailability of *both* contact endpoints (see
        // [`ChurnModel::unavailability_bound`]) — its per-round crash coin
        // alone badly underestimates the disturbance because a crashed node
        // stays down for `k` consecutive rounds and also silently swallows
        // every contact addressed to it. Permanent (crash-stop) churn has no
        // bound at all: `None`.
        let churn_mu = match &self.churn {
            Some(c) => c.unavailability_bound()?,
            None => 0.0,
        };
        let mass = failure_mu
            + churn_mu
            + self.loss.map_or(0.0, |l| l.drop_probability)
            + self.stragglers.map_or(0.0, |s| s.straggle_probability);
        Some(mass.min(1.0))
    }
}

/// Probability parameters of the fault combinators live in `[0, 1)` — a
/// probability of exactly 1 would deterministically destroy every operation,
/// which is a configuration error, not a fault model.
fn validate_probability(name: &'static str, p: f64) -> Result<()> {
    if !(0.0..1.0).contains(&p) {
        return Err(GossipError::InvalidProbability { name, value: p });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn none_plan_is_none_and_not_disruptive() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!plan.is_disruptive());
        assert_eq!(plan.mu_upper_bound(), Some(0.0));
        assert!(FaultPlan::default().is_none());
    }

    #[test]
    fn combinators_validate_their_probabilities() {
        assert!(ChurnModel::crash_stop(-0.1).is_err());
        assert!(ChurnModel::crash_stop(1.0).is_err());
        assert!(ChurnModel::with_rejoin(0.1, 0).is_err());
        assert!(LossModel::uniform(1.5).is_err());
        assert!(StragglerModel::uniform(0.2, 0).is_err());
        assert!(StragglerModel::uniform(f64::NAN, 2).is_err());
        let churn = ChurnModel::with_rejoin(0.25, 3).unwrap();
        assert_eq!(churn.crash_probability(), 0.25);
        assert_eq!(churn.rejoin_after(), Some(3));
        assert_eq!(ChurnModel::crash_stop(0.5).unwrap().rejoin_after(), None);
        assert_eq!(LossModel::uniform(0.3).unwrap().drop_probability(), 0.3);
        let lag = StragglerModel::uniform(0.1, 4).unwrap();
        assert_eq!(lag.straggle_probability(), 0.1);
        assert_eq!(lag.max_delay(), 4);
    }

    #[test]
    fn builders_compose_and_report() {
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::crash_stop(0.1).unwrap())
            .with_loss(LossModel::uniform(0.2).unwrap())
            .with_stragglers(StragglerModel::uniform(0.3, 2).unwrap())
            .with_failure(FailureModel::uniform(0.1).unwrap());
        assert!(!plan.is_none());
        assert!(plan.is_disruptive());
        assert!(plan.churn().is_some());
        assert!(plan.loss().is_some());
        assert!(plan.stragglers().is_some());
        assert!(!plan.failure().is_reliable());
        // Crash-stop churn makes the bound non-derivable: permanent crashes
        // accumulate past any per-round mu < 1.
        assert_eq!(plan.mu_upper_bound(), None);

        // With rejoin the churn mass is the two-endpoint steady-state
        // unavailability: d = k·p/(1 + k·p) = 1/6 at (p=0.1, k=2), so the
        // contact bound is 1 − (5/6)² = 11/36.
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
            .with_loss(LossModel::uniform(0.2).unwrap())
            .with_stragglers(StragglerModel::uniform(0.3, 2).unwrap())
            .with_failure(FailureModel::uniform(0.1).unwrap());
        let mu = plan.mu_upper_bound().unwrap();
        assert!((mu - (0.1 + 11.0 / 36.0 + 0.2 + 0.3)).abs() < 1e-12, "{mu}");
    }

    #[test]
    fn normalization_strips_never_firing_combinators() {
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::crash_stop(0.0).unwrap())
            .with_loss(LossModel::uniform(0.0).unwrap())
            .with_stragglers(StragglerModel::uniform(0.0, 5).unwrap())
            .with_failure(FailureModel::Uniform(0.0))
            .normalized();
        assert!(plan.is_none());
        // Firing combinators survive.
        let plan = FaultPlan::none()
            .with_loss(LossModel::uniform(0.4).unwrap())
            .normalized();
        assert!(plan.is_disruptive());
    }

    #[test]
    fn failure_only_plan_is_not_disruptive() {
        // A plan carrying only the Section 5 model must land on the engine's
        // existing failure loops (golden-pinned), not the fault-aware loops.
        let plan = FaultPlan::none().with_failure(FailureModel::uniform(0.5).unwrap());
        assert!(!plan.is_disruptive());
        assert!(!plan.is_none());
        assert_eq!(plan.mu_upper_bound(), Some(0.5));
    }

    #[test]
    fn per_node_length_is_validated() {
        let plan =
            FaultPlan::none().with_failure(FailureModel::PerNode(Arc::new(vec![0.1, 0.2, 0.3])));
        assert!(plan.validate_for(3).is_ok());
        let err = plan.validate_for(5).unwrap_err();
        assert!(matches!(
            err,
            GossipError::InvalidParameter {
                name: "failure",
                ..
            }
        ));
        assert!(err.to_string().contains("3 probabilities"));
        // Other models pass at any n.
        assert!(FaultPlan::none().validate_for(100).is_ok());
    }

    #[test]
    fn mu_bound_is_capped_and_propagates_unbounded_schedules() {
        let plan = FaultPlan::none()
            .with_loss(LossModel::uniform(0.9).unwrap())
            .with_failure(FailureModel::uniform(0.9).unwrap());
        assert_eq!(plan.mu_upper_bound(), Some(1.0));
        let plan = FaultPlan::none().with_failure(FailureModel::schedule(|_, _| 0.1));
        assert_eq!(plan.mu_upper_bound(), None);
    }
}
