//! Error type shared by the simulator and the algorithm crates built on it.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GossipError>;

/// Errors reported by the gossip simulator and by algorithms built on top of it.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipError {
    /// The network would be created with fewer than two nodes.
    ///
    /// Uniform gossip requires at least two nodes so that "a uniformly random
    /// *other* node" is well defined.
    TooFewNodes {
        /// The number of nodes requested.
        requested: usize,
    },
    /// A probability-like parameter was outside its valid range.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value supplied by the caller.
        value: f64,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An algorithm exceeded its configured round budget without converging.
    RoundBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
        /// What the algorithm was doing when it ran out of rounds.
        phase: &'static str,
    },
}

impl fmt::Display for GossipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GossipError::TooFewNodes { requested } => {
                write!(f, "uniform gossip needs at least 2 nodes, got {requested}")
            }
            GossipError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be a probability in [0, 1], got {value}"
                )
            }
            GossipError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            GossipError::RoundBudgetExceeded { budget, phase } => {
                write!(f, "round budget of {budget} rounds exceeded during {phase}")
            }
        }
    }
}

impl std::error::Error for GossipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GossipError::TooFewNodes { requested: 1 };
        assert!(e.to_string().contains("at least 2 nodes"));
        let e = GossipError::InvalidProbability {
            name: "mu",
            value: 1.5,
        };
        assert!(e.to_string().contains("mu"));
        assert!(e.to_string().contains("1.5"));
        let e = GossipError::InvalidParameter {
            name: "epsilon",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("epsilon"));
        let e = GossipError::RoundBudgetExceeded {
            budget: 10,
            phase: "phase I",
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<GossipError>();
    }

    #[test]
    fn errors_compare_equal_by_value() {
        assert_eq!(
            GossipError::TooFewNodes { requested: 0 },
            GossipError::TooFewNodes { requested: 0 }
        );
        assert_ne!(
            GossipError::TooFewNodes { requested: 0 },
            GossipError::TooFewNodes { requested: 1 }
        );
    }
}
