//! Active sets: which nodes participate in a sparse round.
//!
//! Several phases of the paper's algorithms are intrinsically sparse — rumor
//! spreading touches `~2^r` informed nodes in round `r`, the tournament
//! schedules end with a probabilistic iteration in which only a δ-fraction of
//! nodes participates, and the exact algorithm's token-distribution phase has
//! `o(n)` senders — yet a dense [`Engine`](crate::Engine) round always costs
//! `O(n)`. An [`ActiveSet`] names the participating subset so the engine's
//! sparse primitives ([`pull_round_on`](crate::Engine::pull_round_on) and
//! friends) can dispatch over the participants only, making per-round cost
//! proportional to `|active|` instead of `n`.
//!
//! The representation is a **dense bitmap plus a sorted index list**: the
//! bitmap answers `contains` in O(1) (the push paths ask it per written
//! node), the sorted list drives the chunked sparse dispatch of
//! [`crate::par::for_sparse`] and keeps iteration order — and therefore
//! execution — deterministic. Build one per phase and reuse it across the
//! phase's rounds; an incremental [`union_sorted`](ActiveSet::union_sorted)
//! grows it between rounds (e.g. newly informed rumor receivers) without a
//! rebuild.

use crate::error::{GossipError, Result};
use crate::NodeId;

/// A subset of the nodes `0..n`, held as a dense bitmap plus a sorted,
/// duplicate-free index list.
///
/// Construction is `O(n)` (or `O(|members| log |members|)` from an unsorted
/// list); membership tests are O(1); the sparse round primitives iterate the
/// index list only. See the [module docs](self) for when to use one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    /// Network size this set is defined against.
    n: usize,
    /// Dense membership bitmap, `n` bits in 64-bit words.
    words: Vec<u64>,
    /// The members, strictly increasing.
    indices: Vec<u32>,
}

impl ActiveSet {
    /// The set of **all** nodes of an `n`-node network. A sparse round over
    /// the full set is bit-identical to its dense counterpart (pinned by
    /// `tests/sparse.rs`).
    pub fn full(n: usize) -> ActiveSet {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        ActiveSet {
            n,
            words,
            indices: (0..n as u32).collect(),
        }
    }

    /// Builds the set containing the nodes for which `pred` holds.
    pub fn from_fn(n: usize, mut pred: impl FnMut(NodeId) -> bool) -> ActiveSet {
        let mut set = ActiveSet {
            n,
            words: vec![0; n.div_ceil(64)],
            indices: Vec::new(),
        };
        for v in 0..n {
            if pred(v) {
                set.words[v / 64] |= 1u64 << (v % 64);
                set.indices.push(v as u32);
            }
        }
        set
    }

    /// Builds the set from an arbitrary list of member ids (sorted and
    /// de-duplicated internally).
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] if any member is `>= n`.
    pub fn from_members(n: usize, members: impl IntoIterator<Item = NodeId>) -> Result<ActiveSet> {
        let mut indices: Vec<u32> = Vec::new();
        for v in members {
            if v >= n {
                return Err(GossipError::InvalidParameter {
                    name: "active",
                    reason: format!("member {v} is out of range for an {n}-node network"),
                });
            }
            indices.push(v as u32);
        }
        indices.sort_unstable();
        indices.dedup();
        let mut words = vec![0u64; n.div_ceil(64)];
        for &v in &indices {
            words[v as usize / 64] |= 1u64 << (v % 64);
        }
        Ok(ActiveSet { n, words, indices })
    }

    /// The network size this set is defined against (**not** the member
    /// count; see [`ActiveSet::len`]).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Whether the set contains every node.
    pub fn is_full(&self) -> bool {
        self.indices.len() == self.n
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v < self.n && (self.words[v / 64] >> (v % 64)) & 1 == 1
    }

    /// The members, strictly increasing.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The position of `v` in [`ActiveSet::indices`], or `None` if `v` is not
    /// a member. O(log |active|); consumers use it to look up a member's slot
    /// in the compact per-member outputs of
    /// [`collect_samples_on`](crate::Engine::collect_samples_on).
    pub fn rank(&self, v: NodeId) -> Option<usize> {
        if !self.contains(v) {
            return None;
        }
        self.indices.binary_search(&(v as u32)).ok()
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.indices.iter().map(|&v| v as usize)
    }

    /// Empties the set in `O(|members|)` — only the bitmap words previously
    /// set are touched, never all `n/64` of them — so a per-round subset
    /// (e.g. "holders with a loaded outbox") can reuse one `ActiveSet`
    /// (`clear` + [`union_sorted`](ActiveSet::union_sorted)) without paying
    /// an `O(n)` rebuild each round.
    pub fn clear(&mut self) {
        for &v in &self.indices {
            self.words[v as usize / 64] = 0;
        }
        self.indices.clear();
    }

    /// Rebuilds the set in place from a membership predicate, reusing the
    /// existing bitmap and index buffers — the allocation-free counterpart
    /// of [`ActiveSet::from_fn`] for callers that re-derive an active set
    /// every round (e.g. the multi-query service's δ-truncated slots).
    ///
    /// The set keeps its domain size `n`; only membership changes.
    pub fn reset_from_fn(&mut self, mut pred: impl FnMut(NodeId) -> bool) {
        self.clear();
        for v in 0..self.n {
            if pred(v) {
                self.words[v / 64] |= 1u64 << (v % 64);
                self.indices.push(v as u32);
            }
        }
    }

    /// Adds the nodes of `ids` — which must be **sorted and duplicate-free**
    /// (e.g. the `receivers` list returned by
    /// [`push_round_on`](crate::Engine::push_round_on)) — to the set, in
    /// `O(|self| + |ids|)`.
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= n` or the list is not strictly increasing.
    pub fn union_sorted(&mut self, ids: &[NodeId]) {
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "union_sorted needs a strictly increasing list"
        );
        if let Some(&last) = ids.last() {
            assert!(last < self.n, "member {last} out of range");
        }
        let fresh: Vec<u32> = ids
            .iter()
            .map(|&v| v as u32)
            .filter(|&v| !self.contains(v as usize))
            .collect();
        if fresh.is_empty() {
            return;
        }
        for &v in &fresh {
            self.words[v as usize / 64] |= 1u64 << (v % 64);
        }
        let mut merged = Vec::with_capacity(self.indices.len() + fresh.len());
        let (mut a, mut b) = (self.indices.iter().peekable(), fresh.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x < y {
                        merged.push(x);
                        a.next();
                    } else {
                        merged.push(y);
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    merged.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.indices = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_set_contains_everyone() {
        for n in [1, 63, 64, 65, 200] {
            let s = ActiveSet::full(n);
            assert_eq!(s.len(), n);
            assert!(s.is_full());
            assert!((0..n).all(|v| s.contains(v)));
            assert!(!s.contains(n));
            assert_eq!(s.indices().len(), n);
        }
    }

    #[test]
    fn from_members_sorts_dedups_and_validates() {
        let s = ActiveSet::from_members(10, [7, 2, 2, 9, 0]).unwrap();
        assert_eq!(s.indices(), &[0, 2, 7, 9]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_full());
        assert!(s.contains(2) && !s.contains(3));
        assert_eq!(s.rank(7), Some(2));
        assert_eq!(s.rank(3), None);
        assert!(ActiveSet::from_members(10, [10]).is_err());
    }

    #[test]
    fn from_fn_matches_predicate() {
        let s = ActiveSet::from_fn(100, |v| v % 7 == 0);
        assert_eq!(s.len(), 15);
        assert!((0..100).all(|v| s.contains(v) == (v % 7 == 0)));
        let collected: Vec<NodeId> = s.iter().collect();
        assert_eq!(collected[1], 7);
    }

    #[test]
    fn reset_from_fn_matches_fresh_construction() {
        let mut s = ActiveSet::from_fn(100, |v| v % 7 == 0);
        s.reset_from_fn(|v| v % 3 == 0);
        let fresh = ActiveSet::from_fn(100, |v| v % 3 == 0);
        assert_eq!(s.indices(), fresh.indices());
        assert!((0..100).all(|v| s.contains(v) == (v % 3 == 0)));
        s.reset_from_fn(|_| false);
        assert!(s.is_empty());
        assert!((0..100).all(|v| !s.contains(v)));
    }

    #[test]
    fn union_sorted_merges_and_dedups() {
        let mut s = ActiveSet::from_members(20, [1, 5, 9]).unwrap();
        s.union_sorted(&[0, 5, 10, 19]);
        assert_eq!(s.indices(), &[0, 1, 5, 9, 10, 19]);
        assert!(s.contains(19));
        // No-op union.
        s.union_sorted(&[1, 9]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn clear_empties_and_allows_reuse() {
        let mut s = ActiveSet::from_members(200, [0, 63, 64, 130, 199]).unwrap();
        s.clear();
        assert!(s.is_empty());
        assert!((0..200).all(|v| !s.contains(v)));
        // Reusable: clear + union_sorted repopulates correctly.
        s.union_sorted(&[5, 64, 101]);
        assert_eq!(s.indices(), &[5, 64, 101]);
        assert!(s.contains(64) && !s.contains(63));
    }

    #[test]
    fn empty_set_is_well_formed() {
        let s = ActiveSet::from_members(8, std::iter::empty()).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.n(), 8);
        assert!(!s.contains(0));
    }
}
