//! Deterministic data-parallel chunk maps, executed on a persistent
//! [`WorkerPool`].
//!
//! A gossip round is an embarrassingly parallel map over nodes (each node's
//! randomness comes from its own [`NodeRng`](crate::rng::NodeRng) stream and
//! each node only mutates its own slot), so the engine only needs one
//! primitive: split the per-node buffers into `threads` equal contiguous
//! chunks, run a closure on each chunk, and fold the per-chunk accumulators
//! **in chunk order** — so reductions are deterministic regardless of which
//! thread finished first.
//!
//! ## Why a pool, not scoped threads
//!
//! The first cut of this module spawned scoped threads per chunk map. That is
//! correct but pays `threads` OS-thread creations per map — two maps per
//! round — which dominates the round below ~16k nodes and pushed the
//! parallel break-even point far to the right. The helpers now dispatch onto
//! the long-lived workers of a [`WorkerPool`] (owned by the engine,
//! constructed once, shareable between engines): per map, the hand-off is one
//! mutex/condvar wake plus an atomic task cursor. Inside a
//! [`WorkerPool::run_program`] resident session (an [`Engine::fused`] block
//! or a replayed [`RoundProgram`]), even that is skipped: the pool
//! recognises the session owner's thread and turns each map into a *phase*
//! of the already-woken workers — an atomic phase bump on a spin-then-park
//! barrier instead of a full wake/quiesce hand-off. The helpers themselves
//! are oblivious to the difference; task semantics are identical either way.
//! See [`crate::pool`] for the pool's epoch/barrier protocol, the resident
//! phase barrier, and its lifecycle.
//!
//! [`Engine::fused`]: crate::Engine::fused
//! [`RoundProgram`]: crate::RoundProgram
//! [`WorkerPool::run_program`]: crate::WorkerPool::run_program
//!
//! ## Determinism argument
//!
//! Chunk boundaries depend only on `data.len()` and the requested `threads`
//! value — never on the pool's size or on scheduling. Chunk `i` is task `i`:
//! whichever executor claims task `i` computes `map(i * chunk_len, chunk_i)`
//! and stores the result in slot `i`; after the pool's quiescence barrier the
//! *caller* folds the slots in ascending `i`. The engine's stronger contract
//! — results identical across *different* `threads` values — additionally
//! relies on per-node keyed randomness, and is pinned by
//! `tests/determinism.rs`.
//!
//! With `threads == 1` every helper runs inline on the caller's thread — no
//! hand-off, no synchronisation — which is also the engine's policy for
//! small `n`.
//!
//! ## Memory layout inside a chunk
//!
//! The helpers hand each closure one *contiguous* chunk precisely so the
//! engine can impose its own interior structure on it: the dense rounds
//! cache-block their back-buffer refresh and batch their target gathers
//! within the chunk ([`crate::soa`]), and the sparse commit batches
//! consecutive-id runs into block swaps. Contiguity is the contract that
//! makes those interior loops legal — a chunk map that interleaved slots
//! across threads would forfeit every blocked optimisation downstream.

use crate::pool::WorkerPool;
use std::sync::Mutex;

/// Number of worker threads to use, from the environment or the machine.
///
/// Priority: `GOSSIP_NUM_THREADS`, then `RAYON_NUM_THREADS` (so existing
/// rayon-style deployment configs keep working), then
/// `std::thread::available_parallelism()`. Values are clamped to `[1, 256]`.
pub fn num_threads() -> usize {
    for var in ["GOSSIP_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(var) {
            if let Ok(parsed) = value.trim().parse::<usize>() {
                return parsed.clamp(1, 256);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, 256)
}

/// Runs `map` over `threads` contiguous chunks of `data` on `pool` and folds
/// the per-chunk results in chunk order.
///
/// `map` receives the chunk's starting index into `data` and the chunk
/// itself; the global index of element `j` of the chunk is `start + j`.
/// Results depend on `threads` only through the chunk boundaries, and on
/// `pool` not at all (see the module docs); `threads == 1` (or a too-short
/// `data`) runs inline without touching the pool.
pub fn for_chunks<T, A, F, R>(
    pool: &WorkerPool,
    data: &mut [T],
    threads: usize,
    identity: A,
    map: F,
    reduce: R,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize, &mut [T]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    // Direct single-buffer dispatch: every engine round runs through here,
    // so it does not detour through `for_chunks2` with a unit companion (the
    // companion's chunk table and closure indirection are pure overhead on
    // the hot path).
    let n = data.len();
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return reduce(identity, map(0, data));
    }
    let chunk = n.div_ceil(threads);
    // Hand each chunk to its task through a once-takeable cell, and collect
    // each task's accumulator in its own slot — O(threads) bookkeeping, the
    // only per-map allocation.
    let chunks: Vec<Mutex<Option<&mut [T]>>> = data
        .chunks_mut(chunk)
        .map(|c| Mutex::new(Some(c)))
        .collect();
    let slots: Vec<Mutex<Option<A>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    pool.run(chunks.len(), &|i| {
        let c = take(&chunks[i]).expect("pool ran a chunk task twice");
        *slots[i].lock().expect("slot mutex poisoned") = Some(map(i * chunk, c));
    });
    let mut acc = identity;
    for slot in slots {
        let a = take_inner(slot).expect("pool skipped a chunk task");
        acc = reduce(acc, a);
    }
    acc
}

/// Like [`for_chunks`], but over two equal-length buffers split at the same
/// boundaries, so `a[start + j]` and `b[start + j]` always land in the same
/// closure invocation. Both helpers implement the same dispatch protocol
/// (once-takeable chunk cells, per-task accumulator slots, chunk-order fold);
/// [`for_chunks`] keeps a direct single-buffer copy because it is the round
/// hot path.
pub fn for_chunks2<T, U, A, F, R>(
    pool: &WorkerPool,
    a: &mut [T],
    b: &mut [U],
    threads: usize,
    identity: A,
    map: F,
    reduce: R,
) -> A
where
    T: Send,
    U: Send,
    A: Send,
    F: Fn(usize, &mut [T], &mut [U]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    let n = a.len();
    assert_eq!(n, b.len(), "for_chunks2 requires equal-length buffers");
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return reduce(identity, map(0, a, b));
    }
    let chunk = n.div_ceil(threads);
    // Hand each chunk pair to its task through a once-takeable cell, and
    // collect each task's accumulator in its own slot — O(threads)
    // bookkeeping, the only per-map allocation.
    #[allow(clippy::type_complexity)]
    let chunks: Vec<Mutex<Option<(&mut [T], &mut [U])>>> = a
        .chunks_mut(chunk)
        .zip(b.chunks_mut(chunk))
        .map(|pair| Mutex::new(Some(pair)))
        .collect();
    let slots: Vec<Mutex<Option<A>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    pool.run(chunks.len(), &|i| {
        let (ca, cb) = take(&chunks[i]).expect("pool ran a chunk task twice");
        *slots[i].lock().expect("slot mutex poisoned") = Some(map(i * chunk, ca, cb));
    });
    let mut acc = identity;
    for slot in slots {
        let a = take_inner(slot).expect("pool skipped a chunk task");
        acc = reduce(acc, a);
    }
    acc
}

/// Runs `map` over `threads` contiguous chunks of a **sorted, duplicate-free**
/// index list, handing each task mutable access to exactly the slice of
/// `data` its indices fall in.
///
/// This is the sparse counterpart of [`for_chunks`]: the engine's `*_on`
/// round primitives dispatch over the active indices only, so per-round cost
/// is proportional to the number of participants, not to `data.len()`.
/// Safety falls out of the index order: chunk `j` of the index list covers
/// the slot range `[ids[j·chunk], ids[(j+1)·chunk])`, and because the indices
/// are strictly increasing these ranges are disjoint — `data` is carved into
/// per-task sub-slices with `split_at_mut`, no interior mutability needed.
///
/// `map` receives `(ids, base, sub)` where `sub` is the task's sub-slice of
/// `data` starting at global index `base`: the slot of index `i ∈ ids` is
/// `sub[i - base]`. Results are folded in chunk order, exactly like
/// [`for_chunks`]; chunk boundaries depend only on `ids.len()` and `threads`.
///
/// # Panics
///
/// Debug-asserts that `ids` is strictly increasing and in bounds; release
/// builds index out of bounds (a panic) on a malformed list rather than
/// corrupting memory.
pub fn for_sparse<T, A, F, R>(
    pool: &WorkerPool,
    data: &mut [T],
    ids: &[u32],
    threads: usize,
    identity: A,
    map: F,
    reduce: R,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(&[u32], usize, &mut [T]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    debug_assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "sparse index list must be strictly increasing"
    );
    debug_assert!(ids
        .last()
        .map_or(true, |&last| (last as usize) < data.len()));
    let m = ids.len();
    if m == 0 {
        return identity;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        return reduce(identity, map(ids, 0, data));
    }
    let chunk = m.div_ceil(threads);
    // Carve `data` at each chunk's first index; chunk j's last index is
    // strictly below chunk j+1's first, so every id lands in its own task's
    // sub-slice.
    #[allow(clippy::type_complexity)]
    let mut tasks: Vec<Mutex<Option<(&[u32], usize, &mut [T])>>> = Vec::new();
    let mut rest = data;
    let mut carved_to = 0usize;
    for (j, id_chunk) in ids.chunks(chunk).enumerate() {
        let base = id_chunk[0] as usize;
        let (_, tail) = std::mem::take(&mut rest).split_at_mut(base - carved_to);
        let end = ids
            .get((j + 1) * chunk)
            .map_or(tail.len(), |&next| next as usize - base);
        let (sub, tail) = tail.split_at_mut(end);
        rest = tail;
        carved_to = base + end;
        tasks.push(Mutex::new(Some((id_chunk, base, sub))));
    }
    let slots: Vec<Mutex<Option<A>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
    pool.run(tasks.len(), &|i| {
        let (ids, base, sub) = take(&tasks[i]).expect("pool ran a sparse task twice");
        *slots[i].lock().expect("slot mutex poisoned") = Some(map(ids, base, sub));
    });
    let mut acc = identity;
    for slot in slots {
        let a = take_inner(slot).expect("pool skipped a sparse task");
        acc = reduce(acc, a);
    }
    acc
}

/// Like [`for_sparse`], but over two equal-length buffers carved at the same
/// index boundaries, so `a[i]` and `b[i]` always land in the same task (the
/// engine's copy-on-write swap-back pass exchanges front/back slots of the
/// written set through this).
pub fn for_sparse2<T, U, F>(
    pool: &WorkerPool,
    a: &mut [T],
    b: &mut [U],
    ids: &[u32],
    threads: usize,
    map: F,
) where
    T: Send,
    U: Send,
    F: Fn(&[u32], usize, &mut [T], &mut [U]) + Sync,
{
    debug_assert_eq!(
        a.len(),
        b.len(),
        "for_sparse2 requires equal-length buffers"
    );
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    let m = ids.len();
    if m == 0 {
        return;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        map(ids, 0, a, b);
        return;
    }
    let chunk = m.div_ceil(threads);
    #[allow(clippy::type_complexity)]
    let mut tasks: Vec<Mutex<Option<(&[u32], usize, &mut [T], &mut [U])>>> = Vec::new();
    let (mut rest_a, mut rest_b) = (a, b);
    let mut carved_to = 0usize;
    for (j, id_chunk) in ids.chunks(chunk).enumerate() {
        let base = id_chunk[0] as usize;
        let (_, tail_a) = std::mem::take(&mut rest_a).split_at_mut(base - carved_to);
        let (_, tail_b) = std::mem::take(&mut rest_b).split_at_mut(base - carved_to);
        let end = ids
            .get((j + 1) * chunk)
            .map_or(tail_a.len(), |&next| next as usize - base);
        let (sub_a, tail_a) = tail_a.split_at_mut(end);
        let (sub_b, tail_b) = tail_b.split_at_mut(end);
        rest_a = tail_a;
        rest_b = tail_b;
        carved_to = base + end;
        tasks.push(Mutex::new(Some((id_chunk, base, sub_a, sub_b))));
    }
    pool.run(tasks.len(), &|i| {
        let (ids, base, sub_a, sub_b) = take(&tasks[i]).expect("pool ran a sparse task twice");
        map(ids, base, sub_a, sub_b);
    });
}

/// Like [`for_chunks2`], but over two buffers of *rows*: `a` holds `wa`
/// elements per row and `b` holds `wb`, and both are split at the same row
/// boundaries, so row `v` of `a` and row `v` of `b` always land in the same
/// closure invocation.
///
/// This is the lane-major counterpart of [`for_chunks2`]: the engine's
/// lane-matrix collector fills an `n × lanes` value buffer and its
/// width-1 source column in lock-step through this. `map` receives the
/// chunk's starting *row* index and the two row-aligned sub-slices; row
/// `start + j` of `a` is `chunk_a[j * wa .. (j + 1) * wa]`. Chunk boundaries
/// depend only on the row count and `threads`, exactly like [`for_chunks`].
///
/// # Panics
///
/// Panics if either width is zero or a buffer's length is not `rows × width`
/// for a common row count.
#[allow(clippy::too_many_arguments)]
pub fn for_rows2<T, U, A, F, R>(
    pool: &WorkerPool,
    a: &mut [T],
    wa: usize,
    b: &mut [U],
    wb: usize,
    threads: usize,
    identity: A,
    map: F,
    reduce: R,
) -> A
where
    T: Send,
    U: Send,
    A: Send,
    F: Fn(usize, &mut [T], &mut [U]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    assert!(wa > 0 && wb > 0, "for_rows2 requires positive row widths");
    let n = a.len() / wa;
    assert_eq!(a.len(), n * wa, "for_rows2: a is not whole rows");
    assert_eq!(b.len(), n * wb, "for_rows2: row counts differ");
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return reduce(identity, map(0, a, b));
    }
    let chunk = n.div_ceil(threads);
    #[allow(clippy::type_complexity)]
    let chunks: Vec<Mutex<Option<(&mut [T], &mut [U])>>> = a
        .chunks_mut(chunk * wa)
        .zip(b.chunks_mut(chunk * wb))
        .map(|pair| Mutex::new(Some(pair)))
        .collect();
    let slots: Vec<Mutex<Option<A>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    pool.run(chunks.len(), &|i| {
        let (ca, cb) = take(&chunks[i]).expect("pool ran a chunk task twice");
        *slots[i].lock().expect("slot mutex poisoned") = Some(map(i * chunk, ca, cb));
    });
    let mut acc = identity;
    for slot in slots {
        let a = take_inner(slot).expect("pool skipped a chunk task");
        acc = reduce(acc, a);
    }
    acc
}

/// Like [`for_sparse2`], but over two buffers of rows (`wa` and `wb` elements
/// per row), carved at the same **row** boundaries: each task gets mutable
/// access to exactly the rows its indices fall in, in both buffers.
///
/// `map` receives `(ids, base, sub_a, sub_b)` where the row of index
/// `i ∈ ids` starts at `sub_a[(i - base) * wa]` (resp. `sub_b` with `wb`).
/// The index list must be sorted and duplicate-free, exactly as for
/// [`for_sparse`]; per-chunk results are folded in chunk order.
#[allow(clippy::too_many_arguments)]
pub fn for_sparse_rows2<T, U, A, F, R>(
    pool: &WorkerPool,
    a: &mut [T],
    wa: usize,
    b: &mut [U],
    wb: usize,
    ids: &[u32],
    threads: usize,
    identity: A,
    map: F,
    reduce: R,
) -> A
where
    T: Send,
    U: Send,
    A: Send,
    F: Fn(&[u32], usize, &mut [T], &mut [U]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    assert!(
        wa > 0 && wb > 0,
        "for_sparse_rows2 requires positive row widths"
    );
    debug_assert_eq!(a.len() / wa, b.len() / wb, "row counts differ");
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(ids
        .last()
        .map_or(true, |&last| ((last as usize) + 1) * wa <= a.len()));
    let m = ids.len();
    if m == 0 {
        return identity;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        return reduce(identity, map(ids, 0, a, b));
    }
    let chunk = m.div_ceil(threads);
    // Carve both buffers at each chunk's first row; chunk j's last index is
    // strictly below chunk j+1's first, so every row lands in its own task's
    // sub-slices.
    #[allow(clippy::type_complexity)]
    let mut tasks: Vec<Mutex<Option<(&[u32], usize, &mut [T], &mut [U])>>> = Vec::new();
    let (mut rest_a, mut rest_b) = (a, b);
    let mut carved_to = 0usize;
    for (j, id_chunk) in ids.chunks(chunk).enumerate() {
        let base = id_chunk[0] as usize;
        let skip = base - carved_to;
        let (_, tail_a) = std::mem::take(&mut rest_a).split_at_mut(skip * wa);
        let (_, tail_b) = std::mem::take(&mut rest_b).split_at_mut(skip * wb);
        let end = ids
            .get((j + 1) * chunk)
            .map_or(tail_a.len() / wa, |&next| next as usize - base);
        let (sub_a, tail_a) = tail_a.split_at_mut(end * wa);
        let (sub_b, tail_b) = tail_b.split_at_mut(end * wb);
        rest_a = tail_a;
        rest_b = tail_b;
        carved_to = base + end;
        tasks.push(Mutex::new(Some((id_chunk, base, sub_a, sub_b))));
    }
    let slots: Vec<Mutex<Option<A>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
    pool.run(tasks.len(), &|i| {
        let (ids, base, sub_a, sub_b) = take(&tasks[i]).expect("pool ran a sparse task twice");
        *slots[i].lock().expect("slot mutex poisoned") = Some(map(ids, base, sub_a, sub_b));
    });
    let mut acc = identity;
    for slot in slots {
        let a = take_inner(slot).expect("pool skipped a sparse task");
        acc = reduce(acc, a);
    }
    acc
}

/// Folds `map` over `threads` contiguous sub-ranges of `0..n` in chunk order,
/// without handing out any mutable data.
///
/// This is the read-only sibling of [`for_chunks`] for passes that *scan*
/// shared state and produce a result per range — e.g. the service's replay
/// frontier scan, which reads the dirty map and the recorded sources and
/// returns the candidate ids per range. Because ranges ascend and the fold is
/// in chunk order, concatenating per-range outputs yields the same sequence
/// as a single `map(0..n)` — independent of `threads` and of the pool.
pub fn fold_ranges<A, F, R>(
    pool: &WorkerPool,
    n: usize,
    threads: usize,
    identity: A,
    map: F,
    reduce: R,
) -> A
where
    A: Send,
    F: Fn(std::ops::Range<usize>) -> A + Sync,
    R: Fn(A, A) -> A,
{
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return reduce(identity, map(0..n));
    }
    let chunk = n.div_ceil(threads);
    let tasks = n.div_ceil(chunk);
    let slots: Vec<Mutex<Option<A>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    pool.run(tasks, &|i| {
        let start = i * chunk;
        let end = (start + chunk).min(n);
        *slots[i].lock().expect("slot mutex poisoned") = Some(map(start..end));
    });
    let mut acc = identity;
    for slot in slots {
        let a = take_inner(slot).expect("pool skipped a range task");
        acc = reduce(acc, a);
    }
    acc
}

/// Takes the value out of a shared once-cell.
fn take<T>(cell: &Mutex<Option<T>>) -> Option<T> {
    cell.lock().expect("chunk mutex poisoned").take()
}

/// Unwraps a slot after the pool's barrier (no contention remains).
fn take_inner<T>(cell: Mutex<Option<T>>) -> Option<T> {
    cell.into_inner().expect("slot mutex poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn for_chunks_visits_every_element_once_with_correct_indices() {
        let pool = WorkerPool::new(4);
        for threads in [1, 2, 3, 8, 64] {
            let mut data: Vec<u64> = vec![0; 100];
            let count = for_chunks(
                &pool,
                &mut data,
                threads,
                0usize,
                |start, chunk| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (start + j) as u64;
                    }
                    chunk.len()
                },
                |a, b| a + b,
            );
            assert_eq!(count, 100);
            assert_eq!(data, (0..100).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn for_chunks_reduces_in_chunk_order() {
        let pool = WorkerPool::new(3);
        let mut data: Vec<u64> = vec![0; 10];
        let order = for_chunks(
            &pool,
            &mut data,
            5,
            Vec::new(),
            |start, _| vec![start],
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn for_chunks2_keeps_buffers_aligned() {
        let pool = WorkerPool::new(4);
        for threads in [1, 3, 7] {
            let mut a: Vec<usize> = vec![0; 50];
            let mut b: Vec<usize> = vec![0; 50];
            for_chunks2(
                &pool,
                &mut a,
                &mut b,
                threads,
                (),
                |start, ca, cb| {
                    assert_eq!(ca.len(), cb.len());
                    for j in 0..ca.len() {
                        ca[j] = start + j;
                        cb[j] = 2 * (start + j);
                    }
                },
                |(), ()| (),
            );
            for i in 0..50 {
                assert_eq!(a[i], i);
                assert_eq!(b[i], 2 * i);
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let pool = WorkerPool::new(8);
        let mut empty: Vec<u8> = Vec::new();
        let acc = for_chunks(&pool, &mut empty, 8, 7u32, |_, _| unreachable!(), |a, _b| a);
        assert_eq!(acc, 7);
        let mut one = vec![1u8];
        let acc = for_chunks(
            &pool,
            &mut one,
            8,
            0u32,
            |_, c| c.len() as u32,
            |a, b| a + b,
        );
        assert_eq!(acc, 1);
    }

    #[test]
    fn for_sparse_touches_exactly_the_listed_indices() {
        let pool = WorkerPool::new(4);
        let ids: Vec<u32> = vec![0, 3, 4, 9, 17, 18, 40, 99];
        for threads in [1, 2, 3, 8, 64] {
            let mut data: Vec<u64> = vec![0; 100];
            let count = for_sparse(
                &pool,
                &mut data,
                &ids,
                threads,
                0usize,
                |ids, base, sub| {
                    for &i in ids {
                        sub[i as usize - base] = i as u64 + 1;
                    }
                    ids.len()
                },
                |a, b| a + b,
            );
            assert_eq!(count, ids.len());
            for (i, &v) in data.iter().enumerate() {
                let expected = if ids.contains(&(i as u32)) {
                    i as u64 + 1
                } else {
                    0
                };
                assert_eq!(v, expected, "slot {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn for_sparse_reduces_in_chunk_order_and_handles_edges() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u8; 10];
        // Empty index list: identity untouched.
        let acc = for_sparse(
            &pool,
            &mut data,
            &[],
            4,
            7u32,
            |_, _, _| unreachable!(),
            |a, _b| a,
        );
        assert_eq!(acc, 7);
        // Chunk-order fold over a dense-ish list.
        let ids: Vec<u32> = (0..10).collect();
        let order = for_sparse(
            &pool,
            &mut data,
            &ids,
            5,
            Vec::new(),
            |ids, base, _| vec![(ids[0], base)],
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(order, vec![(0, 0), (2, 2), (4, 4), (6, 6), (8, 8)]);
    }

    #[test]
    fn for_sparse2_swaps_aligned_slots() {
        let pool = WorkerPool::new(4);
        let ids: Vec<u32> = vec![1, 5, 6, 30, 49];
        for threads in [1, 2, 7] {
            let mut a: Vec<u64> = (0..50).collect();
            let mut b: Vec<u64> = (0..50).map(|i| 100 + i).collect();
            for_sparse2(&pool, &mut a, &mut b, &ids, threads, |ids, base, sa, sb| {
                for &i in ids {
                    std::mem::swap(&mut sa[i as usize - base], &mut sb[i as usize - base]);
                }
            });
            for i in 0..50u64 {
                let swapped = ids.contains(&(i as u32));
                assert_eq!(a[i as usize], if swapped { 100 + i } else { i });
                assert_eq!(b[i as usize], if swapped { i } else { 100 + i });
            }
        }
    }

    #[test]
    fn for_rows2_splits_both_buffers_at_the_same_rows() {
        let pool = WorkerPool::new(4);
        let (n, wa, wb) = (23usize, 5usize, 1usize);
        for threads in [1, 2, 3, 8, 64] {
            let mut a: Vec<usize> = vec![0; n * wa];
            let mut b: Vec<usize> = vec![0; n * wb];
            let rows = for_rows2(
                &pool,
                &mut a,
                wa,
                &mut b,
                wb,
                threads,
                0usize,
                |start, ca, cb| {
                    assert_eq!(ca.len() / wa, cb.len() / wb);
                    assert_eq!(ca.len() % wa, 0);
                    let rows = ca.len() / wa;
                    for j in 0..rows {
                        for l in 0..wa {
                            ca[j * wa + l] = (start + j) * wa + l;
                        }
                        cb[j * wb] = start + j;
                    }
                    rows
                },
                |x, y| x + y,
            );
            assert_eq!(rows, n);
            assert_eq!(a, (0..n * wa).collect::<Vec<usize>>());
            assert_eq!(b, (0..n).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn for_sparse_rows2_touches_exactly_the_listed_rows() {
        let pool = WorkerPool::new(4);
        let (n, wa, wb) = (50usize, 3usize, 2usize);
        let ids: Vec<u32> = vec![0, 4, 5, 11, 30, 31, 49];
        for threads in [1, 2, 3, 8, 64] {
            let mut a: Vec<u64> = vec![0; n * wa];
            let mut b: Vec<u64> = vec![0; n * wb];
            let order = for_sparse_rows2(
                &pool,
                &mut a,
                wa,
                &mut b,
                wb,
                &ids,
                threads,
                Vec::new(),
                |ids, base, sub_a, sub_b| {
                    let mut seen = Vec::new();
                    for &i in ids {
                        let rel = i as usize - base;
                        for l in 0..wa {
                            sub_a[rel * wa + l] = u64::from(i) * 10 + l as u64;
                        }
                        for l in 0..wb {
                            sub_b[rel * wb + l] = u64::from(i) * 100 + l as u64;
                        }
                        seen.push(i);
                    }
                    seen
                },
                |mut x, y| {
                    x.extend(y);
                    x
                },
            );
            assert_eq!(order, ids, "fold order at {threads} threads");
            for v in 0..n as u32 {
                let hit = ids.contains(&v);
                for l in 0..wa {
                    let expected = if hit { u64::from(v) * 10 + l as u64 } else { 0 };
                    assert_eq!(a[v as usize * wa + l], expected);
                }
                for l in 0..wb {
                    let expected = if hit {
                        u64::from(v) * 100 + l as u64
                    } else {
                        0
                    };
                    assert_eq!(b[v as usize * wb + l], expected);
                }
            }
        }
    }

    #[test]
    fn fold_ranges_covers_exactly_once_in_order() {
        let pool = WorkerPool::new(4);
        for threads in [1, 2, 3, 8, 64] {
            let ids = fold_ranges(
                &pool,
                97,
                threads,
                Vec::new(),
                |range| range.collect::<Vec<usize>>(),
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            assert_eq!(ids, (0..97).collect::<Vec<usize>>(), "at {threads} threads");
        }
        // Empty domain returns the identity untouched.
        let acc = fold_ranges(&pool, 0, 4, 7u32, |_| unreachable!(), |a, _b| a);
        assert_eq!(acc, 7);
    }

    #[test]
    fn results_do_not_depend_on_pool_size() {
        let reference: Vec<u64> = (0..97).map(|i| i * 3 + 1).collect();
        for pool_threads in [1, 2, 4, 16] {
            let pool = WorkerPool::new(pool_threads);
            let mut data: Vec<u64> = vec![0; 97];
            let sum = for_chunks(
                &pool,
                &mut data,
                6,
                0u64,
                |start, chunk| {
                    let mut s = 0;
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (start + j) as u64 * 3 + 1;
                        s += *slot;
                    }
                    s
                },
                |a, b| a + b,
            );
            assert_eq!(data, reference, "pool size {pool_threads}");
            assert_eq!(sum, reference.iter().sum::<u64>());
        }
    }
}
