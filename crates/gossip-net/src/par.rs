//! Fork–join data-parallelism over contiguous chunks of per-node buffers.
//!
//! A gossip round is an embarrassingly parallel map over nodes (each node's
//! randomness comes from its own [`NodeRng`](crate::rng::NodeRng) stream and
//! each node only mutates its own slot), so the engine only needs one
//! primitive: split the per-node buffers into `threads` contiguous chunks,
//! run a closure on each chunk on its own scoped thread, and fold the
//! per-chunk accumulators **in chunk order** (so reductions are deterministic
//! regardless of which thread finished first).
//!
//! The implementation uses `std::thread::scope`, not a work-stealing pool:
//! chunks are equal-sized and per-node work is uniform, so static partitioning
//! loses nothing, and the workspace cannot depend on an external pool (no
//! registry access; see the workspace manifest). The thread count honours
//! `GOSSIP_NUM_THREADS`, then `RAYON_NUM_THREADS` (so existing rayon-style
//! deployment configs keep working), then the machine's parallelism.
//!
//! With `threads == 1` every helper runs inline on the caller's thread — no
//! spawn, no overhead — which is also the engine's policy for small `n`.

/// Number of worker threads to use, from the environment or the machine.
///
/// Priority: `GOSSIP_NUM_THREADS`, then `RAYON_NUM_THREADS`, then
/// `std::thread::available_parallelism()`. Values are clamped to `[1, 256]`.
pub fn num_threads() -> usize {
    for var in ["GOSSIP_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(var) {
            if let Ok(parsed) = value.trim().parse::<usize>() {
                return parsed.clamp(1, 256);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, 256)
}

/// Runs `map` over `threads` contiguous chunks of `data` and folds the
/// per-chunk results in chunk order.
///
/// `map` receives the chunk's starting index into `data` and the chunk
/// itself; global index of element `j` of the chunk is `start + j`.
pub fn for_chunks<T, A, F, R>(data: &mut [T], threads: usize, identity: A, map: F, reduce: R) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize, &mut [T]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    let n = data.len();
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return reduce(identity, map(0, data));
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let map = &map;
        let handles: Vec<_> = data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, c)| scope.spawn(move || map(i * chunk, c)))
            .collect();
        let mut acc = identity;
        for handle in handles {
            acc = reduce(acc, handle.join().expect("gossip worker thread panicked"));
        }
        acc
    })
}

/// Like [`for_chunks`], but over two equal-length buffers split at the same
/// boundaries, so `a[start + j]` and `b[start + j]` always land in the same
/// closure invocation.
pub fn for_chunks2<T, U, A, F, R>(
    a: &mut [T],
    b: &mut [U],
    threads: usize,
    identity: A,
    map: F,
    reduce: R,
) -> A
where
    T: Send,
    U: Send,
    A: Send,
    F: Fn(usize, &mut [T], &mut [U]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    let n = a.len();
    assert_eq!(n, b.len(), "for_chunks2 requires equal-length buffers");
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return reduce(identity, map(0, a, b));
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let map = &map;
        let handles: Vec<_> = a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .enumerate()
            .map(|(i, (ca, cb))| scope.spawn(move || map(i * chunk, ca, cb)))
            .collect();
        let mut acc = identity;
        for handle in handles {
            acc = reduce(acc, handle.join().expect("gossip worker thread panicked"));
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn for_chunks_visits_every_element_once_with_correct_indices() {
        for threads in [1, 2, 3, 8, 64] {
            let mut data: Vec<u64> = vec![0; 100];
            let count = for_chunks(
                &mut data,
                threads,
                0usize,
                |start, chunk| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (start + j) as u64;
                    }
                    chunk.len()
                },
                |a, b| a + b,
            );
            assert_eq!(count, 100);
            assert_eq!(data, (0..100).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn for_chunks_reduces_in_chunk_order() {
        let mut data: Vec<u64> = vec![0; 10];
        let order = for_chunks(
            &mut data,
            5,
            Vec::new(),
            |start, _| vec![start],
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn for_chunks2_keeps_buffers_aligned() {
        for threads in [1, 3, 7] {
            let mut a: Vec<usize> = vec![0; 50];
            let mut b: Vec<usize> = vec![0; 50];
            for_chunks2(
                &mut a,
                &mut b,
                threads,
                (),
                |start, ca, cb| {
                    assert_eq!(ca.len(), cb.len());
                    for j in 0..ca.len() {
                        ca[j] = start + j;
                        cb[j] = 2 * (start + j);
                    }
                },
                |(), ()| (),
            );
            for i in 0..50 {
                assert_eq!(a[i], i);
                assert_eq!(b[i], 2 * i);
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let mut empty: Vec<u8> = Vec::new();
        let acc = for_chunks(&mut empty, 8, 7u32, |_, _| unreachable!(), |a, _b| a);
        assert_eq!(acc, 7);
        let mut one = vec![1u8];
        let acc = for_chunks(&mut one, 8, 0u32, |_, c| c.len() as u32, |a, b| a + b);
        assert_eq!(acc, 1);
    }
}
