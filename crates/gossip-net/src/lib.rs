//! # gossip-net
//!
//! A synchronous **uniform gossip** network simulator.
//!
//! This crate is the substrate for the reproduction of
//! *"Optimal Gossip Algorithms for Exact and Approximate Quantile Computations"*
//! (Haeupler, Mohapatra, Su; PODC 2018). It implements the communication model
//! the paper analyses:
//!
//! * computation proceeds in **synchronous rounds**;
//! * in each round every node either **pushes** a message to a uniformly random
//!   other node or **pulls** a message from a uniformly random other node;
//! * messages are size-accounted in bits (the paper restricts messages to
//!   `O(log n)` bits — the simulator measures rather than enforces this, so
//!   that over-budget baselines such as the doubling algorithm of Appendix A
//!   can be compared honestly);
//! * every node may **fail** to perform its operation in a round with a
//!   (potentially per-node, per-round) probability bounded by a constant
//!   `mu < 1` (the failure model of Section 5 of the paper).
//!
//! The central type is [`Engine`], which owns the per-node states and drives
//! rounds. Higher-level crates (`quantile-gossip`, `baselines`) express their
//! algorithms as sequences of [`Engine::pull_round`] / [`Engine::push_round`]
//! calls so that round counts, message counts and transmitted bits are measured
//! by the same machinery for every algorithm.
//!
//! ## Quick example
//!
//! Spreading the maximum value to every node by push–pull rumor spreading:
//!
//! ```
//! use gossip_net::{Engine, EngineConfig};
//!
//! let values: Vec<u64> = (0..1000).collect();
//! let mut engine = Engine::from_states(values, EngineConfig::with_seed(7));
//! // Each round: pull a random node's current maximum and keep the larger.
//! for _ in 0..32 {
//!     engine.pull_round(|_, &s| s, |_, state, pulled| {
//!         if let Some(p) = pulled {
//!             if p > *state {
//!                 *state = p;
//!             }
//!         }
//!     });
//! }
//! assert!(engine.states().iter().all(|&v| v == 999));
//! ```

// `deny`, not `forbid`: the two sanctioned exceptions are the lifetime
// erasure inside `pool` (see the safety discussion in that module's docs) and
// the architecture prefetch intrinsics inside `soa` (hints with no safety
// obligations), each opting back in with a scoped `allow`. Everything else
// stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod active;
pub mod engine;
pub mod error;
pub mod failure;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod par;
pub mod pool;
pub mod program;
pub mod protocol;
pub mod rng;
pub mod soa;
pub mod topology;
pub mod value;

pub use active::ActiveSet;
pub use engine::{Engine, EngineConfig, SparsePushOutcome};
pub use error::{GossipError, Result};
pub use failure::FailureModel;
pub use fault::{ChurnModel, FaultPlan, LossModel, StragglerModel};
pub use message::MessageSize;
pub use metrics::{Metrics, RoundKind};
pub use pool::{PoolStats, WorkerPool};
pub use program::{RoundProgram, StepKind};
pub use protocol::{NodeProtocol, ProtocolOutcome, ProtocolRunner, StepReport};
pub use rng::{KeyPrefix, NodeRng, SeedSequence};
pub use soa::{ColumnStore, Columns, LaneMatrix, SampleMatrix};
pub use topology::{Adjacency, AdjacencyCache, Topology};
pub use value::{NodeValue, OrderedF64};

/// Identifier of a node in the simulated network (an index in `0..n`).
pub type NodeId = usize;
