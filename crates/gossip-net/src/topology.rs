//! Pluggable peer-sampling topologies.
//!
//! The paper's model — and the engine's default — is **complete-graph uniform
//! gossip**: each node contacts one uniformly random *other* node per round.
//! This module lifts that choice out of the round loops into a [`Topology`]
//! value carried by [`EngineConfig`](crate::EngineConfig), so the same
//! algorithms can be run on restricted communication graphs and the
//! complete-graph assumption of each theorem can be probed empirically:
//!
//! * [`Topology::Complete`] — the paper's model, bit-identical to the
//!   pre-topology engine (the golden-trajectory pins of `tests/golden.rs`
//!   hold unchanged under it);
//! * [`Topology::RandomRegular`] — a seeded, simple, connected `d`-regular
//!   random graph. Constant-degree random regular graphs are expanders with
//!   high probability, so this is the "gossip on a bounded-degree expander"
//!   scenario of Becchetti–Clementi–Natale, where complete-graph-like
//!   behaviour is expected to survive;
//! * [`Topology::Ring`] — each node talks to its `k` nearest neighbours on
//!   each side of a cycle. Diameter `Θ(n/k)`: information spreads slowly and
//!   the paper's doubly-logarithmic round counts visibly degrade;
//! * [`Topology::Torus2D`] — the 2-dimensional wrap-around grid (diameter
//!   `Θ(√n)`), between the two extremes.
//!
//! ## Sampling contract
//!
//! Peer sampling stays **counter-based**: in a round, node `v` draws a
//! uniformly random *neighbour index* from its per-round
//! [`NodeRng`] stream — one `next_below(deg(v))` draw per
//! contact, exactly the draw shape of the complete-graph engine (whose
//! implicit neighbour list of node `v` is `0..n` without `v`). Executions
//! therefore remain bit-identical at any thread count for every topology.
//!
//! ## Allocation discipline
//!
//! Non-complete topologies are materialised **once** at engine construction
//! into a flat CSR-style [`Adjacency`] (`n × degree` neighbour ids, shared
//! behind an `Arc` when the engine is cloned). Steady-state rounds only index
//! into it — no per-round allocation, no hashing, no branching beyond the
//! one topology-kind dispatch per draw.

use crate::error::{GossipError, Result};
use crate::rng::NodeRng;
use crate::NodeId;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Which communication graph peer sampling runs on.
///
/// Carried by [`EngineConfig::topology`](crate::EngineConfig::topology);
/// sub-engine configurations derived via
/// [`EngineConfig::sub`](crate::EngineConfig::sub) inherit it, so an
/// algorithm's sub-computations run on the same graph as its main phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Topology {
    /// The paper's model: every node contacts one uniformly random other
    /// node (the complete graph `K_n`). The default.
    #[default]
    Complete,
    /// A seeded simple connected `degree`-regular random graph — the
    /// bounded-degree expander scenario. Construction is deterministic in
    /// `(graph_seed, degree, n)` and independent of the engine seed, so the
    /// same graph can host many differently-seeded executions.
    RandomRegular {
        /// Degree of every node (`3 ≤ degree < n`, `n·degree` even).
        degree: usize,
        /// Seed of the graph construction (not of the gossip rounds).
        graph_seed: u64,
    },
    /// A cycle where every node is adjacent to its `k` nearest neighbours on
    /// each side (degree `2k`); requires `2k + 1 ≤ n`.
    Ring {
        /// Neighbours per side (`k ≥ 1`).
        k: usize,
    },
    /// The 2-dimensional wrap-around grid (degree 4) on the most nearly
    /// square `rows × cols = n` factorisation with `rows, cols ≥ 3`; `n`
    /// without such a factorisation (e.g. a prime) is rejected.
    Torus2D,
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::Complete => write!(f, "complete"),
            Topology::RandomRegular { degree, .. } => write!(f, "random-regular(d={degree})"),
            Topology::Ring { k } => write!(f, "ring(k={k})"),
            Topology::Torus2D => write!(f, "torus2d"),
        }
    }
}

impl Topology {
    /// A `degree`-regular random graph with the given construction seed.
    pub fn random_regular(degree: usize, graph_seed: u64) -> Topology {
        Topology::RandomRegular { degree, graph_seed }
    }

    /// A ring with `k` neighbours per side.
    pub fn ring(k: usize) -> Topology {
        Topology::Ring { k }
    }

    /// Builds the explicit adjacency structure of this topology for an
    /// `n`-node network, or `None` for [`Topology::Complete`] (whose
    /// neighbourhood is implicit and never materialised).
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] when the topology cannot be
    /// realised on `n` nodes (degree out of range or of the wrong parity,
    /// ring wider than the cycle, torus on an unfactorable `n`).
    pub fn build_adjacency(&self, n: usize) -> Result<Option<Adjacency>> {
        match *self {
            Topology::Complete => Ok(None),
            Topology::RandomRegular { degree, graph_seed } => {
                Adjacency::random_regular(n, degree, graph_seed).map(Some)
            }
            Topology::Ring { k } => Adjacency::ring(n, k).map(Some),
            Topology::Torus2D => Adjacency::torus2d(n).map(Some),
        }
    }

    /// Materialises the engine-facing sampler (see [`PeerSampler`]),
    /// reusing an adjacency already built for this `(topology, n)` through
    /// `cache` — so sub-engines derived via
    /// [`EngineConfig::sub`](crate::EngineConfig::sub) share their parent's
    /// graph instead of re-running the (for random-regular, non-trivial)
    /// construction per phase.
    pub(crate) fn materialize(&self, n: usize, cache: &AdjacencyCache) -> Result<PeerSampler> {
        if matches!(self, Topology::Complete) {
            return Ok(PeerSampler::Complete { n });
        }
        let mut built = cache.built.lock().expect("adjacency cache poisoned");
        if let Some(adj) = built.get(&(*self, n)) {
            return Ok(PeerSampler::Sparse(Arc::clone(adj)));
        }
        let adj = Arc::new(
            self.build_adjacency(n)?
                .expect("non-complete topologies materialise an adjacency"),
        );
        built.insert((*self, n), Arc::clone(&adj));
        Ok(PeerSampler::Sparse(adj))
    }
}

/// A cache of materialised adjacencies, keyed by `(topology, n)`.
///
/// One lives behind the `Arc` in
/// [`EngineConfig::graph_cache`](crate::EngineConfig::graph_cache) and is
/// shared (like the worker pool) by every configuration derived via
/// [`EngineConfig::sub`](crate::EngineConfig::sub)/`clone`, so an algorithm
/// whose phases each build a fresh engine constructs its communication graph
/// once. Construction is deterministic in the key, so caching is
/// behaviour-invisible; the cache is only consulted at engine construction,
/// never in a round.
#[derive(Debug, Default)]
pub struct AdjacencyCache {
    built: Mutex<HashMap<(Topology, usize), Arc<Adjacency>>>,
}

/// The materialised per-round peer sampler the engine draws contacts from.
///
/// `Complete` keeps the implicit neighbourhood of the pre-topology engine
/// (and its exact draw), `Sparse` indexes the flat adjacency. Cloning shares
/// the adjacency.
///
/// Hot loops never match on this enum per draw: the engine's round
/// primitives dispatch **once per pass** into a body monomorphised over the
/// concrete [`Sampler`] type ([`CompleteSampler`] or [`CsrSampler`]), so the
/// complete-graph loop compiles to exactly the pre-topology code (`n` in a
/// register, no discriminant test) and the sparse loop hoists the degree and
/// neighbour-table pointer.
#[derive(Debug, Clone)]
pub(crate) enum PeerSampler {
    /// Implicit complete graph on `n` nodes.
    Complete {
        /// Network size.
        n: usize,
    },
    /// Explicit constant-degree adjacency.
    Sparse(Arc<Adjacency>),
}

impl PeerSampler {
    /// Per-draw sampling through the enum — test/diagnostic convenience;
    /// round loops use the monomorphised [`Sampler`] types instead.
    #[cfg(test)]
    pub(crate) fn sample(&self, rng: &mut NodeRng, v: NodeId) -> NodeId {
        match self {
            PeerSampler::Complete { n } => CompleteSampler { n: *n }.sample(rng, v),
            PeerSampler::Sparse(adj) => CsrSampler::new(Arc::clone(adj)).sample(rng, v),
        }
    }
}

/// One uniform neighbour draw: a single `next_below(deg(v))` against a
/// concrete topology representation. Implementors are cheap to clone (a
/// `usize` or an `Arc` bump) per round dispatch.
pub(crate) trait Sampler: Clone + Send + Sync {
    /// A uniformly random neighbour of `v`, drawn from `rng`.
    fn sample(&self, rng: &mut NodeRng, v: NodeId) -> NodeId;
}

/// The complete graph `K_n`: *the* draw of the pre-topology engine — a
/// uniform neighbour index in `[0, n − 1)` mapped around `v` — so executions
/// under the default topology are bit-identical to engines built before the
/// topology layer existed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompleteSampler {
    pub(crate) n: usize,
}

impl Sampler for CompleteSampler {
    #[inline]
    fn sample(&self, rng: &mut NodeRng, v: NodeId) -> NodeId {
        debug_assert!(self.n >= 2);
        let t = rng.next_below((self.n - 1) as u64) as usize;
        if t >= v {
            t + 1
        } else {
            t
        }
    }
}

/// A constant-degree explicit adjacency: a uniform index into node `v`'s
/// neighbour row. The degree is copied out of the `Arc` so the loop keeps it
/// in a register.
#[derive(Debug, Clone)]
pub(crate) struct CsrSampler {
    degree: usize,
    adj: Arc<Adjacency>,
}

impl CsrSampler {
    pub(crate) fn new(adj: Arc<Adjacency>) -> CsrSampler {
        CsrSampler {
            degree: adj.degree,
            adj,
        }
    }
}

impl Sampler for CsrSampler {
    #[inline]
    fn sample(&self, rng: &mut NodeRng, v: NodeId) -> NodeId {
        let j = rng.next_below(self.degree as u64) as usize;
        self.adj.neighbors[v * self.degree + j] as usize
    }
}

/// A flat, constant-degree adjacency structure: the `degree` neighbours of
/// node `v` occupy `neighbors[v·degree .. (v+1)·degree]`.
///
/// Built once per engine at construction ([`Topology::build_adjacency`]) and
/// only indexed afterwards. Also the object the topology invariants tests
/// inspect (degree regularity, simplicity, symmetry, connectivity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    n: usize,
    degree: usize,
    neighbors: Vec<u32>,
}

impl Adjacency {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Degree of every node.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The neighbours of `v`, in the builder's deterministic order.
    pub fn neighbors_of(&self, v: NodeId) -> &[u32] {
        &self.neighbors[v * self.degree..(v + 1) * self.degree]
    }

    /// Whether the graph is simple and undirected: no self-loops, no
    /// duplicate neighbours, and `u ∈ N(v) ⇔ v ∈ N(u)`.
    pub fn is_simple_undirected(&self) -> bool {
        let mut sorted: Vec<Vec<u32>> = (0..self.n)
            .map(|v| {
                let mut ns = self.neighbors_of(v).to_vec();
                ns.sort_unstable();
                ns
            })
            .collect();
        for (v, ns) in sorted.iter_mut().enumerate() {
            if ns.windows(2).any(|w| w[0] == w[1]) || ns.iter().any(|&u| u as usize == v) {
                return false;
            }
        }
        (0..self.n).all(|v| {
            self.neighbors_of(v)
                .iter()
                .all(|&u| sorted[u as usize].binary_search(&(v as u32)).is_ok())
        })
    }

    /// Whether every node is reachable from node 0 (BFS).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut reached = 1;
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors_of(v) {
                let u = u as usize;
                if !seen[u] {
                    seen[u] = true;
                    reached += 1;
                    queue.push_back(u);
                }
            }
        }
        reached == self.n
    }

    /// The `2k`-regular ring: node `v` is adjacent to `v ± 1, …, v ± k`
    /// (mod `n`). Neighbour order: `v−k, …, v−1, v+1, …, v+k`.
    fn ring(n: usize, k: usize) -> Result<Adjacency> {
        if k == 0 {
            return Err(GossipError::InvalidParameter {
                name: "k",
                reason: "ring needs at least one neighbour per side".into(),
            });
        }
        if 2 * k + 1 > n {
            return Err(GossipError::InvalidParameter {
                name: "k",
                reason: format!("ring(k={k}) needs at least {} nodes, got {n}", 2 * k + 1),
            });
        }
        let degree = 2 * k;
        let mut neighbors = Vec::with_capacity(n * degree);
        for v in 0..n {
            for d in (1..=k).rev() {
                neighbors.push(((v + n - d) % n) as u32);
            }
            for d in 1..=k {
                neighbors.push(((v + d) % n) as u32);
            }
        }
        Ok(Adjacency {
            n,
            degree,
            neighbors,
        })
    }

    /// The 4-regular 2D torus on the most nearly square factorisation
    /// `rows × cols = n` with `rows, cols ≥ 3` (so all four neighbours of a
    /// node are distinct). Neighbour order: up, down, left, right.
    fn torus2d(n: usize) -> Result<Adjacency> {
        // Integer sqrt by hand (usize::isqrt needs a newer MSRV).
        let mut root = (n as f64).sqrt() as usize;
        while root * root > n {
            root -= 1;
        }
        while (root + 1) * (root + 1) <= n {
            root += 1;
        }
        let rows = (1..=root)
            .rev()
            .find(|r| *r >= 3 && n % r == 0 && n / r >= 3)
            .ok_or_else(|| GossipError::InvalidParameter {
                name: "n",
                reason: format!("no rows×cols = {n} factorisation with rows, cols ≥ 3"),
            })?;
        let cols = n / rows;
        let mut neighbors = Vec::with_capacity(n * 4);
        for v in 0..n {
            let (r, c) = (v / cols, v % cols);
            neighbors.push((((r + rows - 1) % rows) * cols + c) as u32);
            neighbors.push((((r + 1) % rows) * cols + c) as u32);
            neighbors.push((r * cols + (c + cols - 1) % cols) as u32);
            neighbors.push((r * cols + (c + 1) % cols) as u32);
        }
        Ok(Adjacency {
            n,
            degree: 4,
            neighbors,
        })
    }

    /// A seeded simple connected `degree`-regular random graph via the
    /// configuration model with local edge-swap repair.
    ///
    /// One attempt pairs a shuffled stub list into `n·degree/2` edges, then
    /// repairs self-loops and duplicate edges by 2-opt swaps against randomly
    /// chosen partner edges (each swap preserves all degrees). If the repair
    /// budget runs out or the result is disconnected — both vanishingly rare
    /// for `degree ≥ 3` — the attempt is discarded and the construction
    /// retried on the next sub-stream of `graph_seed`. Deterministic in
    /// `(n, degree, graph_seed)`.
    fn random_regular(n: usize, degree: usize, graph_seed: u64) -> Result<Adjacency> {
        if degree < 3 || degree >= n {
            return Err(GossipError::InvalidParameter {
                name: "degree",
                reason: format!(
                    "random-regular degree must satisfy 3 ≤ degree < n, got degree {degree} at n {n}"
                ),
            });
        }
        if n * degree % 2 != 0 {
            return Err(GossipError::InvalidParameter {
                name: "degree",
                reason: format!("n·degree must be even, got n {n} × degree {degree}"),
            });
        }
        const ATTEMPTS: u64 = 32;
        for attempt in 0..ATTEMPTS {
            let mut rng = NodeRng::keyed(graph_seed, attempt, 0, NodeRng::STREAM_TOPOLOGY);
            if let Some(adj) = Self::try_random_regular(n, degree, &mut rng) {
                if adj.is_connected() {
                    return Ok(adj);
                }
            }
        }
        Err(GossipError::InvalidParameter {
            name: "graph_seed",
            reason: format!(
                "no simple connected {degree}-regular graph on {n} nodes found in {ATTEMPTS} attempts"
            ),
        })
    }

    /// One configuration-model attempt; `None` if the swap repair fails.
    fn try_random_regular(n: usize, degree: usize, rng: &mut NodeRng) -> Option<Adjacency> {
        let m = n * degree / 2;
        // Shuffled stub list (node v appears `degree` times), paired into edges.
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat(v).take(degree))
            .collect();
        for i in (1..stubs.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            stubs.swap(i, j);
        }
        let mut edges: Vec<(u32, u32)> = (0..m).map(|i| (stubs[2 * i], stubs[2 * i + 1])).collect();

        let key = |a: u32, b: u32| ((a.min(b) as u64) << 32) | a.max(b) as u64;
        let mut seen = std::collections::HashSet::with_capacity(m);
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a == b || !seen.insert(key(a, b)) {
                bad.push(i);
            }
        }
        // 2-opt repair: swap a bad edge's endpoint with a random partner
        // edge; accept only swaps whose two replacement edges are both new
        // simple edges. Expected O(degree²) bad edges, each fixed in O(1)
        // expected proposals — the budget is a generous multiple.
        let mut budget = 200 * (bad.len() + 8);
        while let Some(&i) = bad.last() {
            if budget == 0 {
                return None;
            }
            budget -= 1;
            let j = rng.next_below(m as u64) as usize;
            if j == i {
                continue;
            }
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            // Propose (a,b),(c,d) → (a,c),(b,d); flip the partner's
            // orientation on odd draws so both 2-opt pairings are reachable.
            let (c, d) = if rng.next_below(2) == 1 {
                (d, c)
            } else {
                (c, d)
            };
            if a == c || b == d || seen.contains(&key(a, c)) || seen.contains(&key(b, d)) {
                continue;
            }
            // The partner edge must currently be good: bad edges own no key
            // in `seen`, so swapping two of them would corrupt the
            // bookkeeping. (This also keeps `key(a,c) == key(b,d)`
            // impossible: that would require {c,d} = {a,b}, whose key a good
            // partner would hold in `seen`, failing the checks above.)
            if bad.contains(&j) {
                continue;
            }
            // Bad edge `i` owns nothing in `seen` (self-loops are never
            // inserted; a duplicate's key is owned by its first, good
            // occurrence) — only the partner's key moves.
            seen.remove(&key(c, d));
            seen.insert(key(a, c));
            seen.insert(key(b, d));
            edges[i] = (a, c);
            edges[j] = (b, d);
            bad.pop();
        }

        let mut neighbors = vec![0u32; n * degree];
        let mut cursor = vec![0usize; n];
        for &(a, b) in &edges {
            let (a, b) = (a as usize, b as usize);
            neighbors[a * degree + cursor[a]] = b as u32;
            cursor[a] += 1;
            neighbors[b * degree + cursor[b]] = a as u32;
            cursor[b] += 1;
        }
        debug_assert!(cursor.iter().all(|&c| c == degree));
        Some(Adjacency {
            n,
            degree,
            neighbors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_sampler_matches_the_legacy_uniform_draw() {
        // The Complete arm must reproduce next_below(n-1) + shift exactly.
        let sampler = Topology::Complete
            .materialize(64, &AdjacencyCache::default())
            .unwrap();
        let mut a = NodeRng::keyed(9, 4, 17, NodeRng::STREAM_ROUND);
        let mut b = NodeRng::keyed(9, 4, 17, NodeRng::STREAM_ROUND);
        for _ in 0..1000 {
            let t = {
                let raw = b.next_below(63) as usize;
                if raw >= 17 {
                    raw + 1
                } else {
                    raw
                }
            };
            assert_eq!(sampler.sample(&mut a, 17), t);
        }
    }

    #[test]
    fn ring_neighbours_are_the_k_nearest() {
        let adj = Topology::Ring { k: 2 }
            .build_adjacency(10)
            .unwrap()
            .unwrap();
        assert_eq!(adj.degree(), 4);
        assert_eq!(adj.neighbors_of(0), &[8, 9, 1, 2]);
        assert_eq!(adj.neighbors_of(5), &[3, 4, 6, 7]);
        assert!(adj.is_simple_undirected());
        assert!(adj.is_connected());
    }

    #[test]
    fn ring_rejects_degenerate_parameters() {
        assert!(Topology::Ring { k: 0 }.build_adjacency(10).is_err());
        assert!(Topology::Ring { k: 5 }.build_adjacency(10).is_err());
        // 2k + 1 == n is the complete ring and is fine.
        assert!(Topology::Ring { k: 4 }.build_adjacency(9).is_ok());
    }

    #[test]
    fn torus_picks_the_most_square_factorisation() {
        let adj = Topology::Torus2D.build_adjacency(12).unwrap().unwrap();
        // 12 = 3 × 4.
        assert_eq!(adj.degree(), 4);
        assert_eq!(adj.neighbors_of(0), &[8, 4, 3, 1]);
        assert!(adj.is_simple_undirected());
        assert!(adj.is_connected());
        // Primes (and n with only skinny factorisations) are rejected.
        assert!(Topology::Torus2D.build_adjacency(13).is_err());
        assert!(Topology::Torus2D.build_adjacency(8).is_err());
    }

    #[test]
    fn random_regular_is_simple_regular_connected_and_deterministic() {
        let topo = Topology::random_regular(6, 42);
        let adj = topo.build_adjacency(200).unwrap().unwrap();
        assert_eq!(adj.degree(), 6);
        assert_eq!(adj.n(), 200);
        assert!(adj.is_simple_undirected());
        assert!(adj.is_connected());
        let again = topo.build_adjacency(200).unwrap().unwrap();
        assert_eq!(adj, again);
        let other = Topology::random_regular(6, 43)
            .build_adjacency(200)
            .unwrap()
            .unwrap();
        assert_ne!(adj, other);
    }

    #[test]
    fn random_regular_rejects_bad_degrees() {
        assert!(Topology::random_regular(2, 1).build_adjacency(10).is_err());
        assert!(Topology::random_regular(10, 1).build_adjacency(10).is_err());
        // odd degree × odd n has no regular graph
        assert!(Topology::random_regular(3, 1).build_adjacency(9).is_err());
        assert!(Topology::random_regular(3, 1).build_adjacency(10).is_ok());
    }

    #[test]
    fn sparse_sampler_only_returns_neighbours() {
        let adj = Topology::ring(3).build_adjacency(50).unwrap().unwrap();
        let sampler = Topology::ring(3)
            .materialize(50, &AdjacencyCache::default())
            .unwrap();
        let mut rng = NodeRng::keyed(1, 1, 7, NodeRng::STREAM_ROUND);
        for _ in 0..500 {
            let t = sampler.sample(&mut rng, 7) as u32;
            assert!(adj.neighbors_of(7).contains(&t));
        }
    }

    #[test]
    fn cache_hands_out_the_same_adjacency_per_key() {
        let cache = AdjacencyCache::default();
        let ring = Topology::ring(2);
        let (a, b) = (
            ring.materialize(50, &cache).unwrap(),
            ring.materialize(50, &cache).unwrap(),
        );
        match (a, b) {
            (PeerSampler::Sparse(x), PeerSampler::Sparse(y)) => {
                assert!(Arc::ptr_eq(&x, &y), "cache rebuilt the same graph")
            }
            _ => panic!("ring must materialise sparse"),
        }
        // A different key gets its own graph…
        match ring.materialize(60, &cache).unwrap() {
            PeerSampler::Sparse(z) => assert_eq!(z.n(), 60),
            _ => panic!("ring must materialise sparse"),
        }
        // …and invalid parameters still fail cleanly through the cache path.
        assert!(Topology::ring(40).materialize(50, &cache).is_err());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Topology::Complete.to_string(), "complete");
        assert_eq!(
            Topology::random_regular(8, 1).to_string(),
            "random-regular(d=8)"
        );
        assert_eq!(Topology::ring(2).to_string(), "ring(k=2)");
        assert_eq!(Topology::Torus2D.to_string(), "torus2d");
    }
}
