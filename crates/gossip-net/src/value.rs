//! Node value abstraction.
//!
//! The paper assumes every node `v` holds an `O(log n)`-bit value `x_v` drawn
//! from a totally ordered universe. [`NodeValue`] captures exactly what the
//! quantile algorithms need from such a value: a total order, cheap copies and
//! a bit-size for message accounting.

use crate::message::MessageSize;
use std::cmp::Ordering;
use std::fmt;

/// A value held by a node, as assumed by the quantile computation problem.
///
/// Implementations exist for the primitive integer types and for
/// [`OrderedF64`]. Tuples `(A, B)` of node values are also node values
/// (ordered lexicographically); the exact-quantile algorithm uses this to
/// break ties between duplicated values.
///
/// The `Copy` bound is also what makes node values plain-old-data for the
/// engine's memory-layout machinery: states built from them have no drop
/// glue or heap indirection, so the cache-blocked back-buffer refresh
/// ([`crate::soa::clone_block`]) compiles down to straight block copies and
/// the [`crate::soa`] column stores hold them in flat, autovectorisable
/// arrays.
pub trait NodeValue: Copy + Ord + fmt::Debug + Send + Sync + MessageSize + 'static {}

impl<T> NodeValue for T where T: Copy + Ord + fmt::Debug + Send + Sync + MessageSize + 'static {}

/// A totally ordered `f64` suitable for use as a node value.
///
/// Construction rejects NaN so that the ordering is total; this is the
/// standard "not NaN" newtype pattern.
///
/// ```
/// use gossip_net::OrderedF64;
/// let a = OrderedF64::new(1.5).unwrap();
/// let b = OrderedF64::new(2.5).unwrap();
/// assert!(a < b);
/// assert!(OrderedF64::new(f64::NAN).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite or infinite (but not NaN) `f64`.
    ///
    /// Returns `None` if `x` is NaN.
    pub fn new(x: f64) -> Option<Self> {
        if x.is_nan() {
            None
        } else {
            Some(OrderedF64(x))
        }
    }

    /// Returns the wrapped floating-point value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe because construction rejects NaN.
        self.0
            .partial_cmp(&other.0)
            .expect("OrderedF64 never holds NaN")
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<OrderedF64> for f64 {
    fn from(v: OrderedF64) -> f64 {
        v.0
    }
}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl MessageSize for OrderedF64 {
    fn message_bits(&self) -> u64 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_f64_rejects_nan() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        assert!(OrderedF64::new(0.0).is_some());
        assert!(OrderedF64::new(f64::INFINITY).is_some());
    }

    #[test]
    fn ordered_f64_total_order() {
        let mut v: Vec<OrderedF64> = [3.0, -1.0, 2.5, 0.0, f64::INFINITY, f64::NEG_INFINITY]
            .iter()
            .map(|&x| OrderedF64::new(x).unwrap())
            .collect();
        v.sort();
        let sorted: Vec<f64> = v.into_iter().map(f64::from).collect();
        assert_eq!(
            sorted,
            vec![f64::NEG_INFINITY, -1.0, 0.0, 2.5, 3.0, f64::INFINITY]
        );
    }

    #[test]
    fn primitive_types_are_node_values() {
        fn assert_node_value<T: NodeValue>() {}
        assert_node_value::<u64>();
        assert_node_value::<i64>();
        assert_node_value::<u32>();
        assert_node_value::<OrderedF64>();
        assert_node_value::<(u64, u64)>();
    }

    #[test]
    fn tuple_values_order_lexicographically() {
        // The exact-quantile algorithm relies on this for rank tie-breaking.
        assert!((5u64, 0u64) < (5u64, 1u64));
        assert!((4u64, u64::MAX) < (5u64, 0u64));
    }

    #[test]
    fn ordered_f64_display_and_get() {
        let x = OrderedF64::new(1.25).unwrap();
        assert_eq!(x.get(), 1.25);
        assert_eq!(x.to_string(), "1.25");
    }
}
