//! Lifecycle and edge cases of the persistent worker pool as engines use it:
//! shutdown on drop, reuse across engines (shared and sequential), thread
//! counts exceeding the node count, degenerate engines, and the pool's
//! indifference contract (pool size and sharing never change results).

use gossip_net::{Engine, EngineConfig, GossipError, WorkerPool};
use std::sync::Arc;

fn max_spread(engine: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        engine.pull_round(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = (*st).max(p);
                }
            },
        );
    }
}

fn run_to_completion(n: usize, threads: usize, config: EngineConfig) -> Vec<u64> {
    let mut engine = Engine::from_states((0..n as u64).collect(), config.clone());
    engine.set_threads(threads);
    max_spread(&mut engine, 6);
    engine.local_step(|v, st, _| *st = st.wrapping_add(v as u64));
    engine.into_states()
}

#[test]
fn dropping_an_engine_mid_use_shuts_the_pool_down_cleanly() {
    // Drop after arbitrary amounts of work, including right after a round
    // (workers have just gone back to sleep) and with rounds still cheap to
    // issue; none of these may hang or poison a subsequent engine.
    for rounds in [0, 1, 7] {
        let mut engine = Engine::from_states((0..500u64).collect(), EngineConfig::with_seed(3));
        engine.set_threads(4);
        max_spread(&mut engine, rounds);
        drop(engine);
    }
    // A fresh engine after all those shutdowns behaves normally.
    let states = run_to_completion(500, 4, EngineConfig::with_seed(3));
    assert_eq!(
        states,
        run_to_completion(500, 1, EngineConfig::with_seed(3))
    );
}

#[test]
fn two_engines_can_share_one_pool_in_one_process() {
    let pool = Arc::new(WorkerPool::new(4));
    let mut a = Engine::from_states(
        (0..300u64).collect(),
        EngineConfig::with_seed(1).pool(Arc::clone(&pool)),
    );
    let mut b = Engine::from_states(
        (0..300u64).map(|v| v * 2).collect(),
        EngineConfig::with_seed(2).pool(Arc::clone(&pool)),
    );
    a.set_threads(4);
    b.set_threads(4);
    assert!(Arc::ptr_eq(a.pool(), &pool) && Arc::ptr_eq(b.pool(), &pool));

    // Interleave rounds on the shared pool; results must match the same
    // engines run on private pools.
    for _ in 0..5 {
        max_spread(&mut a, 1);
        max_spread(&mut b, 1);
    }
    let (a, b) = (a.into_states(), b.into_states());

    let mut a_ref = Engine::from_states((0..300u64).collect(), EngineConfig::with_seed(1));
    let mut b_ref = Engine::from_states(
        (0..300u64).map(|v| v * 2).collect(),
        EngineConfig::with_seed(2),
    );
    a_ref.set_threads(4);
    b_ref.set_threads(4);
    max_spread(&mut a_ref, 5);
    max_spread(&mut b_ref, 5);
    assert_eq!(a, a_ref.into_states(), "shared pool changed engine A");
    assert_eq!(b, b_ref.into_states(), "shared pool changed engine B");

    // The pool outlives both engines and still works for a third.
    let states = run_to_completion(64, 4, EngineConfig::with_seed(9).pool(pool));
    assert_eq!(states, run_to_completion(64, 1, EngineConfig::with_seed(9)));
}

#[test]
fn two_engines_can_share_one_pool_from_two_threads() {
    // The pool's dispatch gate serialises concurrent rounds from different
    // user threads; each engine's results stay a pure function of its seed.
    let pool = Arc::new(WorkerPool::new(4));
    let spawn = |seed: u64, pool: Arc<WorkerPool>| {
        std::thread::spawn(move || {
            let mut e = Engine::from_states(
                (0..400u64).collect(),
                EngineConfig::with_seed(seed).pool(pool),
            );
            e.set_threads(3);
            max_spread(&mut e, 8);
            e.into_states()
        })
    };
    let ha = spawn(11, Arc::clone(&pool));
    let hb = spawn(22, Arc::clone(&pool));
    let (a, b) = (ha.join().unwrap(), hb.join().unwrap());
    assert_eq!(a, run_to_completion_no_local(400, 11));
    assert_eq!(b, run_to_completion_no_local(400, 22));
}

fn run_to_completion_no_local(n: usize, seed: u64) -> Vec<u64> {
    let mut e = Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed));
    max_spread(&mut e, 8);
    e.into_states()
}

#[test]
fn cloned_engines_share_the_pool_but_not_the_execution() {
    let mut original = Engine::from_states((0..200u64).collect(), EngineConfig::with_seed(5));
    original.set_threads(4);
    max_spread(&mut original, 2);
    let mut fork = original.clone();
    assert!(Arc::ptr_eq(original.pool(), fork.pool()));
    // Both continuations replay identically from the fork point.
    max_spread(&mut original, 3);
    max_spread(&mut fork, 3);
    assert_eq!(original.into_states(), fork.into_states());
}

#[test]
fn more_threads_than_nodes_is_fine_and_thread_count_invariant() {
    let run = |threads: usize| {
        let mut e = Engine::from_states((0..10u64).collect(), EngineConfig::with_seed(7));
        e.set_threads(threads);
        max_spread(&mut e, 10);
        e.local_step(|v, st, _| *st ^= v as u64);
        e.into_states()
    };
    let baseline = run(1);
    for threads in [10, 11, 64] {
        assert_eq!(run(threads), baseline, "threads = {threads}");
    }
}

#[test]
fn degenerate_engines_are_rejected_not_wedged() {
    // A zero-node (and one-node) engine is a constructor-time error…
    let zero = Engine::<u64>::try_from_states(Vec::new(), EngineConfig::with_seed(0));
    assert_eq!(zero.unwrap_err(), GossipError::TooFewNodes { requested: 0 });
    let one = Engine::<u64>::try_from_states(vec![1], EngineConfig::with_seed(0));
    assert_eq!(one.unwrap_err(), GossipError::TooFewNodes { requested: 1 });
    // …even when handed a live shared pool, which must stay usable after the
    // rejections.
    let pool = Arc::new(WorkerPool::new(3));
    let rejected = Engine::<u64>::try_from_states(
        Vec::new(),
        EngineConfig::with_seed(0).pool(Arc::clone(&pool)),
    );
    assert!(rejected.is_err());
    let states = run_to_completion(32, 3, EngineConfig::with_seed(1).pool(pool));
    assert_eq!(states, run_to_completion(32, 1, EngineConfig::with_seed(1)));
}

#[test]
fn set_threads_grows_the_pool_and_shrinking_keeps_it() {
    let mut e = Engine::from_states((0..100u64).collect(), EngineConfig::with_seed(8));
    // Small engines default to a 1-executor pool…
    assert_eq!(e.threads(), 1);
    assert_eq!(e.pool().threads(), 1);
    // …growing allocates workers…
    e.set_threads(6);
    assert_eq!(e.pool().threads(), 6);
    let grown = Arc::clone(e.pool());
    // …and shrinking reuses the grown pool rather than churning threads.
    e.set_threads(2);
    assert!(Arc::ptr_eq(e.pool(), &grown));
    max_spread(&mut e, 4);
    let states = e.into_states();
    assert_eq!(states, {
        let mut r = Engine::from_states((0..100u64).collect(), EngineConfig::with_seed(8));
        max_spread(&mut r, 4);
        r.into_states()
    });
}
