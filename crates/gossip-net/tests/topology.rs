//! Structural invariants of the topology layer.
//!
//! The determinism matrix for non-complete topologies lives in
//! `tests/determinism.rs`; golden pins for the default complete graph in
//! `tests/golden.rs` (and must hold unchanged — the topology layer's
//! `Complete` arm is the pre-topology draw verbatim). This suite checks the
//! *graphs themselves*: regularity, simplicity, symmetry and connectivity of
//! every constructed adjacency, for the seeds and sizes the benches and
//! examples actually use.

use gossip_net::{Engine, EngineConfig, GossipError, Topology};

/// The exact `(n, degree, graph_seed)` triples constructed elsewhere in the
/// repository — `bench/benches/topology_quantile.rs` uses
/// `random_regular(16, n)` at n ∈ {1k, 10k, 100k};
/// `examples/topology_sweep.rs`, `quantile-gossip/tests/topology.rs` and the
/// determinism/baselines suites use the degree-8/16 seeds below — plus
/// smaller mixed-parity spares. Simplicity and connectivity of a
/// configuration-model graph depend on the whole triple, so the invariants
/// are checked on precisely the graphs the rest of the repo runs on.
const GRAPHS_USED: [(usize, usize, u64); 10] = [
    (1_000, 16, 1_000),
    (10_000, 16, 10_000),
    (100_000, 16, 100_000),
    (10_000, 16, 7),
    (20_000, 8, 11),
    (4_096, 8, 7),
    (2_048, 8, 5),
    (600, 8, 5),
    (200, 4, 7),
    (501, 6, 7),
];

#[test]
fn random_regular_is_simple_connected_and_regular_for_the_graphs_used() {
    for &(n, degree, seed) in &GRAPHS_USED {
        let adj = Topology::random_regular(degree, seed)
            .build_adjacency(n)
            .expect("construction succeeds")
            .expect("non-complete topologies materialise an adjacency");
        assert_eq!(adj.n(), n);
        assert_eq!(adj.degree(), degree, "n={n} seed={seed}");
        assert!(
            adj.is_simple_undirected(),
            "n={n} d={degree} seed={seed}: not simple/symmetric"
        );
        assert!(
            adj.is_connected(),
            "n={n} d={degree} seed={seed}: disconnected"
        );
    }
}

#[test]
fn random_regular_construction_is_deterministic_in_the_graph_seed() {
    let a = Topology::random_regular(8, 42)
        .build_adjacency(2_000)
        .unwrap();
    let b = Topology::random_regular(8, 42)
        .build_adjacency(2_000)
        .unwrap();
    assert_eq!(a, b);
    let c = Topology::random_regular(8, 43)
        .build_adjacency(2_000)
        .unwrap();
    assert_ne!(a, c);
}

#[test]
fn ring_and_torus_adjacencies_are_simple_and_connected() {
    for n in [10usize, 600, 1_000] {
        let ring = Topology::ring(2).build_adjacency(n).unwrap().unwrap();
        assert_eq!(ring.degree(), 4);
        assert!(ring.is_simple_undirected());
        assert!(ring.is_connected());
    }
    // 10 = 2 × 5 has no rows, cols ≥ 3 factorisation; start the torus at 12.
    for n in [12usize, 600, 1_000] {
        let torus = Topology::Torus2D.build_adjacency(n).unwrap().unwrap();
        assert_eq!(torus.degree(), 4);
        assert!(torus.is_simple_undirected());
        assert!(torus.is_connected());
    }
}

#[test]
fn unrealisable_topologies_error_with_the_offending_parameter() {
    // Prime n has no rows×cols ≥ 3 factorisation.
    let err = Engine::try_from_states(
        vec![0u64; 101],
        EngineConfig::with_seed(1).topology(Topology::Torus2D),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        GossipError::InvalidParameter { name: "n", .. }
    ));
    // Odd degree × odd n has no regular graph.
    let err = Topology::random_regular(3, 1)
        .build_adjacency(101)
        .unwrap_err();
    assert!(matches!(
        err,
        GossipError::InvalidParameter { name: "degree", .. }
    ));
}

#[test]
fn push_rounds_on_a_ring_only_deliver_to_neighbours() {
    let n = 64usize;
    let config = EngineConfig::with_seed(9).topology(Topology::ring(2));
    let mut e = Engine::from_states(vec![Vec::<u64>::new(); n], config);
    for _ in 0..20 {
        e.push_round(
            |v, _| Some(v as u64),
            |_, st, sender| st.push(sender),
            |_, _, _| {},
        );
    }
    for (u, received) in e.states().iter().enumerate() {
        for &sender in received {
            let d = (sender as i64 - u as i64).rem_euclid(n as i64);
            assert!(
                d == 1 || d == 2 || d == n as i64 - 1 || d == n as i64 - 2,
                "node {u} received from non-neighbour {sender}"
            );
        }
    }
    // Every non-failed push was delivered somewhere.
    let total: usize = e.states().iter().map(Vec::len).sum();
    assert_eq!(total, 20 * n);
}

#[test]
fn torus_gossip_spreads_the_maximum_along_the_grid() {
    // 600 materialises as the most-square 24 × 25 torus, whose diameter is
    // ⌊24/2⌋ + ⌊25/2⌋ = 24 hops; information moves at most one hop per
    // push–pull round, so convergence must take ≥ 24 rounds — and with 4
    // neighbours per node it should still finish within a small multiple of
    // the diameter.
    let n = 600usize;
    let config = EngineConfig::with_seed(4).topology(Topology::Torus2D);
    let mut e = Engine::from_states((0..n as u64).collect(), config);
    let mut rounds = 0u64;
    while e.states().iter().any(|&v| v != (n - 1) as u64) {
        e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
        rounds += 1;
        assert!(rounds < 1_000, "torus spread did not converge");
    }
    assert!(
        rounds >= 24,
        "spread faster than the torus diameter: {rounds}"
    );
}

#[test]
fn expander_gossip_stays_logarithmically_fast() {
    // The Becchetti–Clementi–Natale claim in miniature: push–pull rumor
    // spreading on a constant-degree random regular graph completes in
    // O(log n) rounds, like the complete graph and unlike ring/torus.
    let n = 4_096usize;
    let config = EngineConfig::with_seed(8).topology(Topology::random_regular(8, 7));
    let mut e = Engine::from_states((0..n as u64).collect(), config);
    let mut rounds = 0u64;
    while e.states().iter().any(|&v| v != (n - 1) as u64) {
        e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
        rounds += 1;
        assert!(rounds < 200, "expander spread too slow");
    }
    assert!(rounds <= 40, "expected O(log n) spreading, took {rounds}");
}

#[test]
fn collect_samples_draws_from_neighbourhoods_only() {
    let n = 48usize;
    let config = EngineConfig::with_seed(3).topology(Topology::ring(1));
    let mut e = Engine::from_states((0..n as u64).collect(), config);
    let samples = e.collect_samples(4, |t, _| t as u64);
    for (v, bucket) in samples.iter().enumerate() {
        assert_eq!(bucket.len(), 4);
        for &t in bucket {
            let d = (t as i64 - v as i64).rem_euclid(n as i64);
            assert!(d == 1 || d == n as i64 - 1, "node {v} sampled {t}");
        }
    }
}
