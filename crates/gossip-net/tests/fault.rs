//! Integration tests of the fault-injection subsystem (`gossip_net::fault`).
//!
//! The engine-level unit tests pin the per-combinator mechanics; this suite
//! checks the cross-cutting contracts:
//!
//! * the message **ledger** stays conserved under every combinator mix
//!   (attempted = delivered + dropped + delayed-in-flight + failed, with
//!   crashed nodes attempting nothing);
//! * straggled pushes are **re-derived from the sender's state at arrival**,
//!   not frozen at send time;
//! * straggled contacts survive intervening pull rounds and drain on the
//!   next push-capable round;
//! * `ProtocolRunner::step_reporting` surfaces per-round crash sets and
//!   fault deltas mid-protocol;
//! * fault injection composes with restricted topologies.
//!
//! Every test runs at `par::num_threads()` workers, so CI's 1/2/8-thread
//! matrix exercises the faulty dispatch at each thread count.

use gossip_net::{
    par, ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, LossModel, StragglerModel,
    Topology,
};

fn engine_with_plan(n: usize, seed: u64, plan: FaultPlan) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).fault(plan);
    let mut e = Engine::from_states((0..n as u64).collect(), config);
    e.set_threads(par::num_threads());
    e
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
        .with_loss(LossModel::uniform(0.15).unwrap())
        .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap())
        .with_failure(FailureModel::uniform(0.1).unwrap())
}

/// Every attempted push is accounted for exactly once: delivered in-round,
/// dropped (loss, crashed receiver), delayed (straggling, counted at send),
/// or failed (the Section 5 model). Crashed senders attempt nothing.
#[test]
fn push_ledger_is_conserved_under_the_full_chaos_plan() {
    let n = 2000u64;
    let mut e = engine_with_plan(n as usize, 3, chaos_plan());
    for _ in 0..6 {
        e.push_round(
            |v, _| Some(v),
            |_, st, _| *st = st.wrapping_add(1),
            |_, _, _| {},
        );
    }
    let m = e.metrics();
    assert_eq!(
        m.pushes_attempted + m.crashed_operations,
        6 * n,
        "every node per round either attempts or is crashed"
    );
    // Straggled sends are counted `delayed` at send and then *also* counted
    // delivered (or dropped, if the receiver crashed meanwhile) at arrival,
    // so the exact ledger is over the terminal outcomes plus the in-flight
    // buffer:
    assert_eq!(
        m.messages_delivered
            + m.messages_dropped
            + m.failed_operations
            + e.delayed_in_flight() as u64,
        m.pushes_attempted,
        "ledger mismatch: {m:?}"
    );
    assert!(m.messages_delayed > 0);
    assert!(m.messages_dropped > 0);
    assert!(m.crashed_operations > 0);
    assert!(m.failed_operations > 0);
}

/// A straggled message is re-derived from the sender's state *at arrival*:
/// mutate every state between send and drain, and no receiver may observe a
/// stale value.
#[test]
fn straggled_messages_carry_the_senders_state_at_arrival() {
    let n = 500;
    let plan = FaultPlan::none().with_stragglers(StragglerModel::uniform(0.9, 1).unwrap());
    let mut e = Engine::from_states(vec![100u64; n], EngineConfig::with_seed(8).fault(plan));
    e.set_threads(par::num_threads());

    // Round 1: push the current state (100). ~90% of contacts straggle.
    e.push_round(
        |_, &s| Some(s),
        |_, st, msg| {
            assert_eq!(msg, 100, "round-1 in-round delivery");
            *st = st.wrapping_add(msg << 32);
        },
        |_, _, _| {},
    );
    let delivered_in_round_1 = e.metrics().messages_delivered;
    let in_flight = e.delayed_in_flight();
    assert!(in_flight > 300, "p=0.9 on 500 pushes, got {in_flight}");

    // Rewrite every sender's low half to 200 before the drain round.
    e.local_step(|_, st, _| *st = (*st & !0xFFFF_FFFF) | 200);

    // Round 2 drains the round-1 stragglers. The low 32 bits a receiver
    // folds must be 200 — the sender's *current* value — never the stale
    // 100 from send time.
    e.push_round(
        |_, &s| Some(s & 0xFFFF_FFFF),
        |_, st, msg| {
            assert_eq!(msg, 200, "a drained straggler carried a stale payload");
            *st = st.wrapping_add(1);
        },
        |_, _, _| {},
    );
    let m = e.metrics();
    assert!(
        m.messages_delivered > delivered_in_round_1 + 100,
        "the round-1 stragglers did not drain"
    );
}

/// Straggled pushes survive intervening pull rounds (which are not
/// push-capable) and drain on the next push round.
#[test]
fn stragglers_wait_out_pull_rounds() {
    let plan = FaultPlan::none().with_stragglers(StragglerModel::uniform(0.8, 1).unwrap());
    let mut e = engine_with_plan(400, 15, plan);
    e.push_round(
        |v, _| Some(v as u64),
        |_, st, _| *st = st.wrapping_add(1),
        |_, _, _| {},
    );
    let in_flight = e.delayed_in_flight();
    assert!(in_flight > 200);
    // Three pull rounds pass; the buffer must not drain (pull rounds carry
    // no push deliveries), even though the contacts are long overdue.
    for _ in 0..3 {
        e.pull_round(|_, &s| s, |_, _, _| {});
    }
    assert_eq!(e.delayed_in_flight(), in_flight);
    // The next push round folds them in.
    let delivered_before = e.metrics().messages_delivered;
    e.push_round(
        |v, _| Some(v as u64),
        |_, st, _| *st = st.wrapping_add(1),
        |_, _, _| {},
    );
    // No loss or churn in this plan: every overdue contact delivers.
    assert!(e.metrics().messages_delivered >= delivered_before + in_flight as u64);
}

/// Crash-stop churn visibly freezes a node: its state stops changing while
/// down, and with rejoin disabled it never changes again.
#[test]
fn crashed_nodes_states_are_frozen() {
    let plan = FaultPlan::none().with_churn(ChurnModel::crash_stop(0.15).unwrap());
    let mut e = engine_with_plan(500, 42, plan);
    let mut frozen: Vec<(usize, u64)> = Vec::new();
    for _ in 0..8 {
        e.pull_round(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = st.wrapping_mul(31).wrapping_add(p);
                }
            },
        );
        for &(v, expected) in &frozen {
            assert_eq!(e.states()[v], expected, "crashed node {v} changed state");
        }
        frozen = e
            .crashed_nodes()
            .into_iter()
            .map(|v| (v, e.states()[v]))
            .collect();
    }
    assert!(!frozen.is_empty());
}

/// `ProtocolRunner::step_reporting` exposes the crash set and fault deltas
/// of each round while a protocol runs.
#[test]
fn protocol_runner_reports_faults_per_round() {
    use gossip_net::{NodeProtocol, ProtocolRunner};

    #[derive(Clone)]
    struct Max(u64);
    impl NodeProtocol for Max {
        type Message = u64;
        type Output = u64;
        fn serve(&self) -> u64 {
            self.0
        }
        fn on_pull(&mut self, _round: u64, pulled: Option<u64>) {
            if let Some(m) = pulled {
                self.0 = self.0.max(m);
            }
        }
        fn on_push(&mut self, _round: u64, pushed: u64) {
            self.0 = self.0.max(pushed);
        }
        fn output(&self) -> u64 {
            self.0
        }
    }

    let nodes: Vec<Max> = (0..300).map(Max).collect();
    let config = EngineConfig::with_seed(99).fault(chaos_plan());
    let mut runner = ProtocolRunner::new(nodes, config);
    let mut saw_crash = false;
    let mut saw_disruption = false;
    for _ in 0..10 {
        let report = runner.step_reporting();
        assert_eq!(report.crashed.len() as u64, report.delta.crashed_operations);
        assert!(report.crashed.windows(2).all(|w| w[0] < w[1]));
        saw_crash |= !report.crashed.is_empty();
        saw_disruption |= report.delta.messages_dropped > 0;
        assert_eq!(report.delta.rounds, 1);
    }
    assert!(saw_crash, "churn never fired in 10 rounds");
    assert!(saw_disruption, "loss never fired in 10 rounds");
}

/// Fault injection composes with restricted topologies: the per-contact
/// coins are keyed by ids, not by the sampling structure.
#[test]
fn faults_compose_with_restricted_topologies() {
    for topology in [Topology::ring(3), Topology::Torus2D] {
        let config = EngineConfig::with_seed(7)
            .fault(chaos_plan())
            .topology(topology);
        let mut e = Engine::from_states((0..900u64).collect(), config);
        e.set_threads(par::num_threads());
        for _ in 0..5 {
            e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
        }
        let m = e.metrics();
        assert!(m.crashed_operations > 0, "{topology}: churn silent");
        assert!(m.messages_dropped > 0, "{topology}: loss silent");
        assert!(m.messages_delayed > 0, "{topology}: stragglers silent");
        assert!(m.failed_operations > 0, "{topology}: failures silent");
    }
}

/// `FaultPlan::mu_upper_bound` feeds the adaptive schedules: the union
/// bound must dominate the observed per-round disturbance rate.
#[test]
fn mu_upper_bound_dominates_observed_disturbance() {
    let plan = FaultPlan::none()
        .with_loss(LossModel::uniform(0.2).unwrap())
        .with_failure(FailureModel::uniform(0.1).unwrap());
    let mu = plan.mu_upper_bound().expect("bound derivable");
    let mut e = engine_with_plan(5000, 77, plan);
    for _ in 0..5 {
        e.pull_round(|_, &s| s, |_, _, _| {});
    }
    let observed = e.metrics().disturbance_rate();
    assert!(observed > 0.0);
    assert!(
        observed <= mu + 0.05,
        "observed {observed} exceeds the union bound {mu}"
    );
}
