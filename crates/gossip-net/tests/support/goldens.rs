//! Shared fixtures for the golden-pin suites and the `regen_goldens` example.
//!
//! The pinned constants live in `tests/data/goldens.txt`; this module holds
//! the scenario builders that produce them, the fingerprint helpers, and the
//! file parser. It is included with `#[path]` by `tests/golden.rs`,
//! `tests/sparse.rs` and `examples/regen_goldens.rs`, so the three consumers
//! can never disagree about what a scenario runs.

#![allow(dead_code)]

use gossip_net::{
    par, ActiveSet, ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, LossModel,
    StragglerModel,
};
use rand::Rng;

/// SplitMix64 finalizer, re-stated here so the fingerprint is independent of
/// the crate's internals.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive fingerprint of a state vector.
pub fn fingerprint(states: &[u64]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (i, &s) in states.iter().enumerate() {
        h = mix64(h ^ s ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    format!("{h:016x}")
}

/// Order-sensitive message fold (any reordering or content change shows up).
pub fn fold_hash(state: u64, msg: u64) -> u64 {
    (state.rotate_left(7) ^ msg).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Order-sensitive fingerprint of per-node sample buckets.
pub fn sample_fp(samples: &[Vec<u64>]) -> String {
    let mut h = 0u64;
    for bucket in samples {
        h = mix64(h ^ 0x5eed);
        for &s in bucket {
            h = mix64(h ^ s);
        }
    }
    format!("{h:016x}")
}

/// Compact fingerprint of the metrics counters, pinned alongside the states.
pub fn metrics_line(e: &Engine<u64>) -> String {
    let m = e.metrics();
    format!(
        "r{} pa{} psa{} f{} d{} b{}",
        m.rounds,
        m.pulls_attempted,
        m.pushes_attempted,
        m.failed_operations,
        m.messages_delivered,
        m.bits_delivered
    )
}

/// The fault counters, pinned alongside the classic metrics line for the
/// faulted trajectory.
pub fn fault_metrics_line(e: &Engine<u64>) -> String {
    let m = e.metrics();
    format!(
        "c{} dr{} dl{}",
        m.crashed_operations, m.messages_dropped, m.messages_delayed
    )
}

pub fn initial_states(n: usize) -> Vec<u64> {
    (0..n as u64).map(|v| v.wrapping_mul(31)).collect()
}

pub fn engine(n: usize, seed: u64, failure: FailureModel) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).failure(failure);
    let mut e = Engine::from_states(initial_states(n), config);
    e.set_threads(par::num_threads());
    e
}

/// The full fault plan of the faulted golden pin: churn with rejoin, message
/// loss, stragglers, and the Section 5 failure model all at once.
pub fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
        .with_loss(LossModel::uniform(0.15).unwrap())
        .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap())
        .with_failure(FailureModel::uniform(0.1).unwrap())
}

pub fn pull_rounds(e: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        e.pull_round(
            |_, &s| s,
            |_, st, pulled| {
                if let Some(p) = pulled {
                    *st = fold_hash(*st, p);
                }
            },
        );
    }
}

pub fn push_rounds(e: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        e.push_round(
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
    }
}

pub fn push_pull_rounds(e: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        e.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
    }
}

/// The local-step scenario body shared by `local_step` and the mixed runs.
pub fn hash_local_steps(e: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        e.local_step(|v, st, rng| {
            *st = fold_hash(*st, rng.gen::<u64>() ^ v as u64);
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
}

/// One mixed macro-iteration over all five primitives.
pub fn mixed_iteration(e: &mut Engine<u64>) {
    pull_rounds(e, 1);
    push_rounds(e, 1);
    push_pull_rounds(e, 1);
    let samples = e.collect_samples(2, |_, &s| s);
    e.local_step(|v, st, rng| {
        for &s in &samples[v] {
            *st = fold_hash(*st, s);
        }
        if rng.gen::<f64>() < 0.25 {
            *st = st.rotate_right(3);
        }
    });
}

pub fn faulted_mixed(n: usize, seed: u64) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).fault(chaos_plan());
    let mut e = Engine::from_states(initial_states(n), config);
    e.set_threads(par::num_threads());
    for _ in 0..3 {
        mixed_iteration(&mut e);
    }
    e
}

// --- sparse (`*_on`) variants of the scenario bodies -----------------------

pub fn sparse_pull_rounds(e: &mut Engine<u64>, active: &ActiveSet, rounds: usize) {
    for _ in 0..rounds {
        e.pull_round_on(
            active,
            |_, &s| s,
            |_, st, pulled| {
                if let Some(p) = pulled {
                    *st = fold_hash(*st, p);
                }
            },
        );
    }
}

pub fn sparse_push_rounds(e: &mut Engine<u64>, active: &ActiveSet, rounds: usize) {
    for _ in 0..rounds {
        e.push_round_on(
            active,
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
    }
}

pub fn sparse_push_pull_rounds(e: &mut Engine<u64>, active: &ActiveSet, rounds: usize) {
    for _ in 0..rounds {
        e.push_pull_round_on(active, |_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
    }
}

// --- the pin file -----------------------------------------------------------

/// The pinned constants, embedded at compile time.
pub const GOLDENS: &str = include_str!("../data/goldens.txt");

/// Looks a key up in a `name=value` pin file.
pub fn lookup<'a>(file: &'a str, key: &str) -> Option<&'a str> {
    file.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .find_map(|l| {
            let (k, v) = l.split_once('=')?;
            (k.trim() == key).then(|| v.trim())
        })
}

/// The pinned value for `key`, or a loud panic pointing at the regen tool.
pub fn pinned(key: &str) -> &'static str {
    lookup(GOLDENS, key).unwrap_or_else(|| {
        panic!(
            "no golden pin named {key:?} in tests/data/goldens.txt — \
             regenerate with `cargo run -p gossip-net --example regen_goldens -- --write`"
        )
    })
}

/// Recomputes every pinned value, in the canonical file order. This is the
/// single source of truth for what each scenario executes; the test suites
/// replay the same builders against [`pinned`].
pub fn compute_all() -> Vec<(&'static str, String)> {
    let mut out: Vec<(&'static str, String)> = Vec::new();
    let mut pin = |k, v| out.push((k, v));

    let mut e = engine(512, 101, FailureModel::None);
    pull_rounds(&mut e, 8);
    pin("pull.metrics", metrics_line(&e));
    pin("pull.fp", fingerprint(e.states()));

    let mut e = engine(512, 101, FailureModel::uniform(0.3).unwrap());
    pull_rounds(&mut e, 8);
    pin("pull_failures.metrics", metrics_line(&e));
    pin("pull_failures.fp", fingerprint(e.states()));

    let mut e = engine(512, 202, FailureModel::None);
    push_rounds(&mut e, 8);
    pin("push.metrics", metrics_line(&e));
    pin("push.fp", fingerprint(e.states()));

    let mut e = engine(512, 202, FailureModel::uniform(0.3).unwrap());
    push_rounds(&mut e, 8);
    pin("push_failures.metrics", metrics_line(&e));
    pin("push_failures.fp", fingerprint(e.states()));

    let mut e = engine(512, 303, FailureModel::None);
    push_pull_rounds(&mut e, 8);
    pin("push_pull.metrics", metrics_line(&e));
    pin("push_pull.fp", fingerprint(e.states()));

    let mut e = engine(512, 303, FailureModel::uniform(0.3).unwrap());
    push_pull_rounds(&mut e, 8);
    pin("push_pull_failures.metrics", metrics_line(&e));
    pin("push_pull_failures.fp", fingerprint(e.states()));

    let mut e = engine(512, 404, FailureModel::None);
    let samples = e.collect_samples(3, |_, &s| s);
    pin("collect.metrics", metrics_line(&e));
    pin("collect.sample_fp", sample_fp(&samples));

    let mut e = engine(512, 404, FailureModel::uniform(0.4).unwrap());
    let samples = e.collect_samples(3, |_, &s| s);
    pin("collect_failures.metrics", metrics_line(&e));
    pin("collect_failures.sample_fp", sample_fp(&samples));

    let mut e = engine(512, 505, FailureModel::None);
    hash_local_steps(&mut e, 4);
    pin("local_step.metrics", metrics_line(&e));
    pin("local_step.fp", fingerprint(e.states()));

    let mut e = engine(600, 606, FailureModel::uniform(0.2).unwrap());
    for _ in 0..3 {
        mixed_iteration(&mut e);
    }
    pin("mixed.metrics", metrics_line(&e));
    pin("mixed.fp", fingerprint(e.states()));

    let e = faulted_mixed(600, 909);
    pin("faulted_mixed.metrics", metrics_line(&e));
    pin("faulted_mixed.faults", fault_metrics_line(&e));
    pin("faulted_mixed.fp", fingerprint(e.states()));

    let mut e = engine(20_000, 707, FailureModel::None);
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    pin("large.metrics", metrics_line(&e));
    pin("large.fp", fingerprint(e.states()));

    let mut e = engine(20_000, 808, FailureModel::uniform(0.25).unwrap());
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    pin("large_failures.metrics", metrics_line(&e));
    pin("large_failures.fp", fingerprint(e.states()));

    out
}
