//! Program-replay equivalence: the golden trajectories of `tests/golden.rs`,
//! re-executed through [`RoundProgram`] / [`Engine::fused`], must reproduce
//! the **same pinned fingerprints** — fusing a schedule into one resident
//! pool dispatch is a scheduling change, never a semantic one.
//!
//! On top of the pins, the suite checks the composition laws that make fused
//! execution safe to adopt incrementally: a program split at any cut point
//! into two sequential fused runs equals both the unsplit program and the
//! plain loop, and a whole program costs a single pool dispatch where the
//! loop pays one per round.
//!
//! Every test runs at `par::num_threads()`, so CI's `GOSSIP_NUM_THREADS`
//! matrix (crossed with `GOSSIP_SPIN_US` for the spin-vs-park barrier paths)
//! checks each pin at 1/2/8 threads.

#[path = "support/goldens.rs"]
mod support;

use gossip_net::{Engine, EngineConfig, FailureModel, Metrics, RoundProgram, StepKind};
use rand::Rng;
use support::{
    chaos_plan, engine, fault_metrics_line, fingerprint, fold_hash, initial_states, metrics_line,
    mixed_iteration, pinned,
};

/// Records `rounds` copies of the golden pull-round body.
fn record_pulls(p: &mut RoundProgram<'_, u64>, rounds: usize) {
    for _ in 0..rounds {
        p.pull(
            |_, &s| s,
            |_, st, pulled| {
                if let Some(pl) = pulled {
                    *st = fold_hash(*st, pl);
                }
            },
        );
    }
}

/// Records `rounds` copies of the golden push-round body.
fn record_pushes(p: &mut RoundProgram<'_, u64>, rounds: usize) {
    for _ in 0..rounds {
        p.push(
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
    }
}

/// Records `rounds` copies of the golden push–pull-round body.
fn record_push_pulls(p: &mut RoundProgram<'_, u64>, rounds: usize) {
    for _ in 0..rounds {
        p.push_pull(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
    }
}

#[test]
fn golden_pull_replays_through_a_program() {
    let mut e = engine(512, 101, FailureModel::None);
    let mut p: RoundProgram<'_, u64> = RoundProgram::new();
    record_pulls(&mut p, 8);
    e.run_program(&mut p);
    assert_eq!(metrics_line(&e), pinned("pull.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("pull.fp"));
}

#[test]
fn golden_pull_with_failures_replays_through_a_program() {
    let mut e = engine(512, 101, FailureModel::uniform(0.3).unwrap());
    let mut p: RoundProgram<'_, u64> = RoundProgram::new();
    record_pulls(&mut p, 8);
    e.run_program(&mut p);
    assert_eq!(metrics_line(&e), pinned("pull_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("pull_failures.fp"));
}

#[test]
fn golden_push_replays_through_a_program() {
    let mut e = engine(512, 202, FailureModel::None);
    let mut p: RoundProgram<'_, u64> = RoundProgram::new();
    record_pushes(&mut p, 8);
    e.run_program(&mut p);
    assert_eq!(metrics_line(&e), pinned("push.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push.fp"));
}

#[test]
fn golden_push_pull_replays_through_a_program() {
    let mut e = engine(512, 303, FailureModel::None);
    let mut p: RoundProgram<'_, u64> = RoundProgram::new();
    record_push_pulls(&mut p, 8);
    e.run_program(&mut p);
    assert_eq!(metrics_line(&e), pinned("push_pull.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push_pull.fp"));
}

#[test]
fn golden_mixed_sequence_replays_through_fused() {
    // The broadest pinned trajectory — all five primitives, failure
    // injection on — executed inside one fused session. `mixed_iteration`'s
    // collect feeds the same iteration's local step, so this also covers
    // sequential session-thread work between resident phases.
    let mut e = engine(600, 606, FailureModel::uniform(0.2).unwrap());
    e.fused(|e| {
        for _ in 0..3 {
            mixed_iteration(e);
        }
    });
    assert_eq!(metrics_line(&e), pinned("mixed.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("mixed.fp"));
}

#[test]
fn golden_faulted_mixed_replays_through_fused() {
    // The full chaos plan (churn, loss, stragglers, failures) under a fused
    // session: the fault-injection randomness contract must survive
    // residency exactly as it survives thread counts.
    let config = EngineConfig::with_seed(909).fault(chaos_plan());
    let mut e = Engine::from_states(initial_states(600), config);
    e.set_threads(gossip_net::par::num_threads());
    e.fused(|e| {
        for _ in 0..3 {
            mixed_iteration(e);
        }
    });
    assert_eq!(metrics_line(&e), pinned("faulted_mixed.metrics"));
    assert_eq!(fault_metrics_line(&e), pinned("faulted_mixed.faults"));
    assert_eq!(fingerprint(e.states()), pinned("faulted_mixed.fp"));
}

#[test]
fn golden_large_n_replays_through_a_program() {
    // Large enough that multi-thread CI matrix entries take the parallel CSR
    // bucketing path *inside resident phases*.
    let mut e = engine(20_000, 707, FailureModel::None);
    let mut p: RoundProgram<'_, u64> = RoundProgram::new();
    record_pulls(&mut p, 2);
    record_pushes(&mut p, 2);
    record_push_pulls(&mut p, 2);
    e.run_program(&mut p);
    assert_eq!(metrics_line(&e), pinned("large.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("large.fp"));
}

// --- cut-point splits -------------------------------------------------------

/// The step alphabet of the split tests; a schedule is a word over it.
#[derive(Debug, Clone, Copy)]
enum Op {
    Pull,
    Push,
    PushPull,
    Local,
    Collect,
}

const OPS: [Op; 5] = [Op::Pull, Op::Push, Op::PushPull, Op::Local, Op::Collect];

/// Executes one op directly — the loop baseline.
fn run_op(e: &mut Engine<u64>, op: Op) {
    match op {
        Op::Pull => {
            e.pull_round(
                |_, &s| s,
                |_, st, pulled| {
                    if let Some(p) = pulled {
                        *st = fold_hash(*st, p);
                    }
                },
            );
        }
        Op::Push => {
            e.push_round(
                |v, &s| if v % 3 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if !delivered {
                        *st = st.wrapping_add(1);
                    }
                },
            );
        }
        Op::PushPull => {
            e.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        }
        Op::Local => {
            e.local_step(|v, st, rng| {
                *st = fold_hash(*st, rng.gen::<u64>() ^ v as u64);
            });
        }
        Op::Collect => {
            let samples = e.collect_samples_flat(2, |_, &s| s);
            e.local_step(|v, st, _| {
                if let Some(s) = samples.sample(v, 0) {
                    *st = fold_hash(*st, s);
                }
                if let Some(s) = samples.sample(v, 1) {
                    *st = fold_hash(*st, s);
                }
            });
        }
    }
}

/// Records the same op into a program.
fn record_op(p: &mut RoundProgram<'_, u64>, op: Op) {
    match op {
        Op::Pull => {
            p.pull(
                |_, &s| s,
                |_, st, pulled| {
                    if let Some(pl) = pulled {
                        *st = fold_hash(*st, pl);
                    }
                },
            );
        }
        Op::Push => {
            p.push(
                |v, &s| if v % 3 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if !delivered {
                        *st = st.wrapping_add(1);
                    }
                },
            );
        }
        Op::PushPull => {
            p.push_pull(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        }
        Op::Local => {
            p.local_step(|v, st, rng| {
                *st = fold_hash(*st, rng.gen::<u64>() ^ v as u64);
            });
        }
        Op::Collect => {
            p.collect_local(
                2,
                |_, &s| s,
                |v, st, _, samples| {
                    if let Some(s) = samples.sample(v, 0) {
                        *st = fold_hash(*st, s);
                    }
                    if let Some(s) = samples.sample(v, 1) {
                        *st = fold_hash(*st, s);
                    }
                },
            );
        }
    }
}

fn run_ops_as_split_programs(n: usize, seed: u64, ops: &[Op], cut: usize) -> (Vec<u64>, Metrics) {
    let mut e = engine(n, seed, FailureModel::uniform(0.2).unwrap());
    let mut head: RoundProgram<'_, u64> = RoundProgram::new();
    for &op in &ops[..cut] {
        record_op(&mut head, op);
    }
    let mut tail: RoundProgram<'_, u64> = RoundProgram::new();
    for &op in &ops[cut..] {
        record_op(&mut tail, op);
    }
    e.run_program(&mut head);
    e.run_program(&mut tail);
    let metrics = e.metrics();
    (e.into_states(), metrics)
}

#[test]
fn programs_split_at_any_cut_point_match_the_loop() {
    // Property-style schedule generation without a proptest dependency: the
    // op word and the exercised cut points are drawn from the same splitmix
    // finalizer the fingerprints use, so the cases are reproducible yet
    // arbitrary. Every split of the word into two sequentially fused
    // programs must equal the hand-rolled loop bit for bit — fusion has no
    // memory across session boundaries.
    let n = 500;
    let seed = 4242;
    let ops: Vec<Op> = (0..12)
        .map(|i| OPS[(support::mix64(seed ^ i) % OPS.len() as u64) as usize])
        .collect();

    let mut looped = engine(n, seed, FailureModel::uniform(0.2).unwrap());
    for &op in &ops {
        run_op(&mut looped, op);
    }
    let loop_metrics = looped.metrics();
    let baseline = (looped.into_states(), loop_metrics);

    // Both degenerate cuts (empty head / empty tail), plus pseudo-random
    // interior ones.
    let mut cuts = vec![0, ops.len()];
    cuts.extend((0..4).map(|i| (support::mix64(seed.wrapping_add(100 + i)) as usize) % ops.len()));
    for cut in cuts {
        let split = run_ops_as_split_programs(n, seed, &ops, cut);
        assert_eq!(
            split,
            baseline,
            "split at {cut}/{} diverged from the loop",
            ops.len()
        );
    }
}

// --- scheduling-counter contract --------------------------------------------

#[test]
fn a_program_costs_one_dispatch_where_the_loop_pays_per_round() {
    // The point of the whole layer, asserted on the engine's own metrics: a
    // 16-round recorded schedule is one pool dispatch; the identical loop
    // pays at least one per round. (Workers are required — the inline
    // single-thread path has no hand-off to count.)
    let rounds = 16;
    let run = |fuse: bool| {
        let mut e = engine(512, 1313, FailureModel::None);
        e.set_threads(2);
        let before = e.metrics().pool_dispatches;
        let mut p: RoundProgram<'_, u64> = RoundProgram::new();
        record_pulls(&mut p, rounds);
        if fuse {
            e.run_program(&mut p);
        } else {
            for _ in 0..rounds {
                run_op(&mut e, Op::Pull);
            }
        }
        let m = e.metrics();
        (m.pool_dispatches - before, e.into_states())
    };
    let (program_dispatches, program_states) = run(true);
    let (loop_dispatches, loop_states) = run(false);
    assert_eq!(program_states, loop_states);
    assert_eq!(program_dispatches, 1, "a session is one hand-off");
    assert!(
        loop_dispatches >= rounds as u64,
        "looped dispatches {loop_dispatches} < {rounds} rounds"
    );
}

#[test]
fn scheduling_counters_do_not_affect_metrics_equality() {
    // The determinism suites compare `Metrics` across runs whose scheduling
    // differs (fused vs looped, 1 vs 8 threads); the == contract must ignore
    // the dispatch/wakeup counters or every such comparison would be flaky.
    let run = |fuse: bool| {
        let mut e = engine(256, 77, FailureModel::None);
        e.set_threads(2);
        let mut p: RoundProgram<'_, u64> = RoundProgram::new();
        record_pulls(&mut p, 4);
        if fuse {
            e.run_program(&mut p);
        } else {
            for _ in 0..4 {
                run_op(&mut e, Op::Pull);
            }
        }
        e.metrics()
    };
    let fused = run(true);
    let looped = run(false);
    assert_eq!(fused, looped);
    assert_ne!(fused.pool_dispatches, looped.pool_dispatches);
}

#[test]
fn step_kinds_describe_the_recorded_schedule() {
    let mut p: RoundProgram<'_, u64> = RoundProgram::new();
    record_op(&mut p, Op::Pull);
    record_op(&mut p, Op::Collect);
    p.step(StepKind::Custom, |_| {});
    let kinds: Vec<String> = p.kinds().map(|k| k.to_string()).collect();
    assert_eq!(kinds, ["pull", "collect", "custom"]);
}
