//! Determinism contract of the parallel engine: for a fixed seed, executions
//! are bit-identical across thread counts (the `RAYON_NUM_THREADS=1,2,8`
//! matrix of the engine's deployment docs), across separately constructed
//! engines replaying the same round sequence, with failure injection on, and
//! regardless of which `WorkerPool` — private, grown, or shared between
//! engines — the rounds dispatch on.
//!
//! These tests exercise all three round primitives plus `collect_samples` and
//! `local_step` (itself a pooled chunk map), with non-commutative state folds
//! where possible so that any ordering difference between runs shows up as a
//! state difference.

use gossip_net::{
    ActiveSet, ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, LossModel, Metrics,
    NodeRng, StragglerModel, Topology, WorkerPool,
};
use rand::Rng;
use std::sync::Arc;

const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

/// A state whose update history is order-sensitive: a running hash of every
/// message folded into it. Any change in delivery order or content changes
/// the final value.
fn fold_hash(state: u64, msg: u64) -> u64 {
    (state.rotate_left(7) ^ msg).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drives one engine through a fixed, mixed sequence of primitives and
/// returns its final states and metrics.
fn run_mixed_sequence(mut engine: Engine<u64>, threads: usize) -> (Vec<u64>, Metrics) {
    engine.set_threads(threads);
    for _ in 0..3 {
        engine.pull_round(
            |_, &s| s,
            |_, st, pulled| {
                if let Some(p) = pulled {
                    *st = fold_hash(*st, p);
                }
            },
        );
        engine.push_round(
            |v, &s| if v % 3 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
        engine.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        let samples = engine.collect_samples(2, |_, &s| s);
        engine.local_step(|v, st, rng| {
            for &s in &samples[v] {
                *st = fold_hash(*st, s);
            }
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    let metrics = engine.metrics();
    (engine.into_states(), metrics)
}

fn engine(n: usize, seed: u64, failure: FailureModel) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).failure(failure);
    Engine::from_states((0..n as u64).map(|v| v.wrapping_mul(31)).collect(), config)
}

#[test]
fn mixed_rounds_are_identical_across_thread_counts_without_failures() {
    let baseline = run_mixed_sequence(engine(1000, 7, FailureModel::None), 1);
    for threads in THREAD_MATRIX {
        let run = run_mixed_sequence(engine(1000, 7, FailureModel::None), threads);
        assert_eq!(
            run, baseline,
            "{threads} threads diverged from the 1-thread run"
        );
    }
}

#[test]
fn mixed_rounds_are_identical_across_thread_counts_with_failure_injection() {
    let model = || FailureModel::uniform(0.3).unwrap();
    let baseline = run_mixed_sequence(engine(1000, 21, model()), 1);
    assert!(
        baseline.1.failed_operations > 0,
        "failure injection did not fire"
    );
    for threads in THREAD_MATRIX {
        let run = run_mixed_sequence(engine(1000, 21, model()), threads);
        assert_eq!(run, baseline, "{threads} threads diverged under failures");
    }
}

#[test]
fn per_node_failure_schedules_are_thread_count_invariant() {
    let model = || {
        FailureModel::schedule(|node, round| {
            if (node + round as usize) % 4 == 0 {
                0.9
            } else {
                0.05
            }
        })
    };
    let baseline = run_mixed_sequence(engine(600, 5, model()), 1);
    for threads in THREAD_MATRIX {
        let run = run_mixed_sequence(engine(600, 5, model()), threads);
        assert_eq!(
            run, baseline,
            "{threads} threads diverged under a failure schedule"
        );
    }
}

#[test]
fn two_separately_constructed_engines_replay_identically() {
    // Same seed, same initial states, same call sequence — but different
    // Engine instances and different thread counts.
    let first = run_mixed_sequence(engine(800, 99, FailureModel::uniform(0.2).unwrap()), 2);
    let second = run_mixed_sequence(engine(800, 99, FailureModel::uniform(0.2).unwrap()), 8);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_still_diverge() {
    // Guards against the determinism machinery accidentally ignoring the seed.
    let a = run_mixed_sequence(engine(500, 1, FailureModel::None), 2);
    let b = run_mixed_sequence(engine(500, 2, FailureModel::None), 2);
    assert_ne!(a.0, b.0);
}

#[test]
fn collect_samples_is_thread_count_invariant() {
    let run = |threads: usize| {
        let mut e = engine(700, 13, FailureModel::uniform(0.1).unwrap());
        e.set_threads(threads);
        e.collect_samples(4, |_, &s| s)
    };
    let baseline = run(1);
    for threads in THREAD_MATRIX {
        assert_eq!(
            run(threads),
            baseline,
            "{threads} threads changed the sample sets"
        );
    }
}

#[test]
fn pool_reuse_across_engines_is_invisible_in_the_results() {
    // One persistent pool serving a whole matrix of engines sequentially —
    // including engines of different sizes in between — must leave every
    // engine's execution identical to a run on a private pool.
    let baseline = run_mixed_sequence(engine(1000, 7, FailureModel::None), 1);
    let pool = Arc::new(WorkerPool::new(8));
    for threads in THREAD_MATRIX {
        let config = EngineConfig::with_seed(7).pool(Arc::clone(&pool));
        let e = Engine::from_states((0..1000u64).map(|v| v.wrapping_mul(31)).collect(), config);
        let run = run_mixed_sequence(e, threads);
        assert_eq!(
            run, baseline,
            "{threads} threads on the shared pool diverged"
        );
        // Interleave an unrelated engine on the same pool between matrix
        // entries; it must not perturb the next entry.
        let mut other = Engine::from_states(
            vec![3u64; 64],
            EngineConfig::with_seed(threads as u64).pool(Arc::clone(&pool)),
        );
        other.set_threads(2);
        other.push_pull_round(|_, &s| s, |_, st, m| *st = st.wrapping_add(m));
    }
}

#[test]
fn local_step_is_identical_across_thread_counts() {
    // The dedicated local_step matrix: algorithm-local coins plus an
    // order-sensitive fold of a shared read-only capture, at 1/2/8 threads.
    let run = |threads: usize| {
        let mut e = engine(1000, 31, FailureModel::None);
        e.set_threads(threads);
        let samples = e.collect_samples(2, |_, &s| s);
        for _ in 0..5 {
            e.local_step(|v, st, rng| {
                for &s in &samples[v] {
                    *st = fold_hash(*st, s);
                }
                if rng.gen::<f64>() < 0.5 {
                    *st = st.rotate_left(11);
                }
            });
        }
        e.into_states()
    };
    let baseline = run(1);
    for threads in THREAD_MATRIX {
        assert_eq!(
            run(threads),
            baseline,
            "{threads}-thread local_step diverged"
        );
    }
}

#[test]
fn parallel_csr_bucketing_is_thread_count_invariant() {
    // Above Engine::PAR_MIN_NODES, multi-thread push paths bucket deliveries
    // with the parallel histogram/scan/placement pipeline; 1 thread uses the
    // sequential counting sort. Both must yield the identical execution.
    let run = |threads: usize| {
        let mut e = engine(20_000, 17, FailureModel::uniform(0.15).unwrap());
        e.set_threads(threads);
        for _ in 0..2 {
            e.push_round(
                |v, &s| if v % 7 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if delivered {
                        *st = st.rotate_left(1);
                    }
                },
            );
            e.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        }
        let metrics = e.metrics();
        (e.into_states(), metrics)
    };
    let baseline = run(1);
    for threads in THREAD_MATRIX {
        assert_eq!(
            run(threads),
            baseline,
            "{threads}-thread CSR bucketing diverged"
        );
    }
}

#[test]
fn non_complete_topologies_are_thread_count_invariant() {
    // The full mixed-primitive sequence (pull, push, push–pull, sampling,
    // local steps), with failure injection on, for each restricted topology:
    // peer sampling through the materialised adjacency must be exactly as
    // thread-count-independent as the complete graph's implicit one.
    // n = 600 factorises as a 24 × 25 torus and comfortably hosts an
    // 8-regular graph.
    for topology in [
        Topology::random_regular(8, 5),
        Topology::ring(3),
        Topology::Torus2D,
    ] {
        let make = || {
            let config = EngineConfig::with_seed(23)
                .failure(FailureModel::uniform(0.2).unwrap())
                .topology(topology);
            Engine::from_states((0..600u64).map(|v| v.wrapping_mul(31)).collect(), config)
        };
        let baseline = run_mixed_sequence(make(), 1);
        assert!(baseline.1.failed_operations > 0, "failures did not fire");
        for threads in THREAD_MATRIX {
            let run = run_mixed_sequence(make(), threads);
            assert_eq!(
                run, baseline,
                "{topology}: {threads} threads diverged from the 1-thread run"
            );
        }
    }
}

#[test]
fn parallel_csr_bucketing_with_sparse_topology_is_thread_count_invariant() {
    // Push paths above Engine::PAR_MIN_NODES bucket deliveries with the
    // parallel CSR pipeline; sparse peer sampling concentrates receivers
    // (every delivery lands in a small neighbourhood), which must not
    // perturb the stable placement at any thread count.
    let run = |threads: usize| {
        let config = EngineConfig::with_seed(31)
            .failure(FailureModel::uniform(0.15).unwrap())
            .topology(Topology::random_regular(8, 11));
        let mut e =
            Engine::from_states((0..20_000u64).map(|v| v.wrapping_mul(31)).collect(), config);
        e.set_threads(threads);
        for _ in 0..2 {
            e.push_round(
                |v, &s| if v % 7 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if delivered {
                        *st = st.rotate_left(1);
                    }
                },
            );
            e.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        }
        let metrics = e.metrics();
        (e.into_states(), metrics)
    };
    let baseline = run(1);
    for threads in THREAD_MATRIX {
        assert_eq!(
            run(threads),
            baseline,
            "{threads}-thread sparse-topology CSR bucketing diverged"
        );
    }
}

#[test]
fn sparse_push_at_20k_is_thread_count_invariant() {
    // The sparse execution path at the size where the *dense* push takes the
    // parallel-CSR pipeline: an active subset pushes through push_round_on
    // (pair-sort bucketing, copy-on-write commit), interleaved with a dense
    // pull so sparse-written and densely-written buffers mix. Results and the
    // reported receiver sets must be identical at 1/2/8 threads.
    let run = |threads: usize| {
        let n = 20_000;
        let active = ActiveSet::from_fn(n, |v| v % 11 == 0);
        let mut e = engine(n, 47, FailureModel::uniform(0.15).unwrap());
        e.set_threads(threads);
        let mut receiver_log = Vec::new();
        for _ in 0..3 {
            let out = e.push_round_on(
                &active,
                |v, &s| if v % 5 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if delivered {
                        *st = st.rotate_left(1);
                    }
                },
            );
            receiver_log.push(out);
            e.pull_round(
                |_, &s| s,
                |_, st, p| {
                    if let Some(p) = p {
                        *st = fold_hash(*st, p);
                    }
                },
            );
        }
        let metrics = e.metrics();
        (e.into_states(), metrics, receiver_log)
    };
    let baseline = run(1);
    assert!(baseline.1.failed_operations > 0, "failures did not fire");
    for threads in THREAD_MATRIX {
        assert_eq!(
            run(threads),
            baseline,
            "{threads}-thread sparse push diverged"
        );
    }
}

#[test]
fn sparse_push_program_at_20k_is_thread_count_invariant() {
    // The resident-session counterpart of the entry above: the same sparse
    // push / dense pull interleaving recorded as a RoundProgram and replayed
    // as one fused dispatch. The phase barrier must preserve thread-count
    // invariance exactly as the full hand-off does — and the fused run must
    // equal the looped one bit for bit at every matrix point.
    let looped = |threads: usize| {
        let n = 20_000;
        let active = ActiveSet::from_fn(n, |v| v % 11 == 0);
        let mut e = engine(n, 47, FailureModel::uniform(0.15).unwrap());
        e.set_threads(threads);
        for _ in 0..3 {
            e.push_round_on(
                &active,
                |v, &s| if v % 5 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if delivered {
                        *st = st.rotate_left(1);
                    }
                },
            );
            e.pull_round(
                |_, &s| s,
                |_, st, p| {
                    if let Some(p) = p {
                        *st = fold_hash(*st, p);
                    }
                },
            );
        }
        let metrics = e.metrics();
        (e.into_states(), metrics)
    };
    let fused = |threads: usize| {
        let n = 20_000;
        let active = ActiveSet::from_fn(n, |v| v % 11 == 0);
        let mut e = engine(n, 47, FailureModel::uniform(0.15).unwrap());
        e.set_threads(threads);
        let mut program: gossip_net::RoundProgram<'_, u64> = gossip_net::RoundProgram::new();
        for _ in 0..3 {
            program.push_on(
                active.clone(),
                |v, &s| if v % 5 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if delivered {
                        *st = st.rotate_left(1);
                    }
                },
            );
            program.pull(
                |_, &s| s,
                |_, st, p| {
                    if let Some(p) = p {
                        *st = fold_hash(*st, p);
                    }
                },
            );
        }
        e.run_program(&mut program);
        let metrics = e.metrics();
        (e.into_states(), metrics)
    };
    let baseline = looped(1);
    assert!(baseline.1.failed_operations > 0, "failures did not fire");
    for threads in THREAD_MATRIX {
        assert_eq!(
            looped(threads),
            baseline,
            "{threads}-thread sparse push loop diverged"
        );
        assert_eq!(
            fused(threads),
            baseline,
            "{threads}-thread sparse push program diverged from the loop"
        );
    }
}

/// The full fault plan: churn with rejoin, message loss, stragglers, and the
/// Section 5 failure model, all active at once.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
        .with_loss(LossModel::uniform(0.15).unwrap())
        .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap())
        .with_failure(FailureModel::uniform(0.1).unwrap())
}

fn fault_engine(n: usize, seed: u64) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).fault(chaos_plan());
    Engine::from_states((0..n as u64).map(|v| v.wrapping_mul(31)).collect(), config)
}

#[test]
fn mixed_rounds_are_identical_across_thread_counts_with_fault_injection() {
    // The faulty execution paths (churn scans, loss coins, straggler
    // buffering and drain) must be exactly as thread-count-independent as
    // the pinned fast loops.
    let baseline = run_mixed_sequence(fault_engine(1000, 43), 1);
    assert!(baseline.1.crashed_operations > 0, "churn did not fire");
    assert!(baseline.1.messages_dropped > 0, "loss did not fire");
    assert!(baseline.1.messages_delayed > 0, "stragglers did not fire");
    assert!(baseline.1.failed_operations > 0, "failures did not fire");
    for threads in THREAD_MATRIX {
        let run = run_mixed_sequence(fault_engine(1000, 43), threads);
        assert_eq!(run, baseline, "{threads} threads diverged under faults");
    }
}

#[test]
fn large_n_fault_injection_is_thread_count_invariant() {
    // Above the parallel-CSR threshold, the faulty push passes concatenate
    // straggled contacts chunk-by-chunk and fold due arrivals after the
    // in-round deliveries; both must be invisible to the thread count.
    let run = |threads: usize| {
        let mut e = fault_engine(20_000, 71);
        e.set_threads(threads);
        for _ in 0..3 {
            e.push_round(
                |v, &s| if v % 7 == 0 { None } else { Some(s) },
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if delivered {
                        *st = st.rotate_left(1);
                    }
                },
            );
            e.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        }
        let metrics = e.metrics();
        let crashed = e.crashed_nodes();
        let in_flight = e.delayed_in_flight();
        (e.into_states(), metrics, crashed, in_flight)
    };
    let baseline = run(1);
    assert!(baseline.1.messages_delayed > 0, "stragglers did not fire");
    for threads in THREAD_MATRIX {
        assert_eq!(
            run(threads),
            baseline,
            "{threads}-thread faulty CSR path diverged"
        );
    }
}

#[test]
fn sparse_rounds_with_fault_injection_are_thread_count_invariant() {
    // Active-set rounds under the full chaos plan: the sparse faulty passes
    // merge due straggler receivers into the copy-on-write written set; the
    // reported receiver log must also be identical at every thread count.
    let run = |threads: usize| {
        let n = 4000;
        let active = ActiveSet::from_fn(n, |v| v % 5 == 0);
        let mut e = fault_engine(n, 53);
        e.set_threads(threads);
        let mut receiver_log = Vec::new();
        for _ in 0..4 {
            let out = e.push_round_on(
                &active,
                |_, &s| Some(s),
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if delivered {
                        *st = st.rotate_left(1);
                    }
                },
            );
            receiver_log.push(out);
            e.pull_round_on(
                &active,
                |_, &s| s,
                |_, st, p| {
                    if let Some(p) = p {
                        *st = fold_hash(*st, p);
                    }
                },
            );
        }
        let metrics = e.metrics();
        (e.into_states(), metrics, receiver_log)
    };
    let baseline = run(1);
    assert!(baseline.1.messages_dropped > 0, "loss did not fire");
    for threads in THREAD_MATRIX {
        assert_eq!(
            run(threads),
            baseline,
            "{threads}-thread sparse faulty rounds diverged"
        );
    }
}

#[test]
fn node_rng_streams_are_independent_of_order_of_use() {
    // Drawing from node 5's stream never perturbs node 6's stream — the
    // property that makes per-chunk execution order irrelevant.
    let mut a5 = NodeRng::keyed(3, 1, 5, NodeRng::STREAM_ROUND);
    let mut a6 = NodeRng::keyed(3, 1, 6, NodeRng::STREAM_ROUND);
    let first5: Vec<u64> = (0..8).map(|_| a5.next_u64()).collect();
    let first6: Vec<u64> = (0..8).map(|_| a6.next_u64()).collect();

    let mut b6 = NodeRng::keyed(3, 1, 6, NodeRng::STREAM_ROUND);
    let mut b5 = NodeRng::keyed(3, 1, 5, NodeRng::STREAM_ROUND);
    let second6: Vec<u64> = (0..8).map(|_| b6.next_u64()).collect();
    let second5: Vec<u64> = (0..8).map(|_| b5.next_u64()).collect();

    assert_eq!(first5, second5);
    assert_eq!(first6, second6);
}

gossip_net::columns! {
    /// Struct-of-arrays mirror of the tournament-style test state used by
    /// the SoA matrix entry below.
    struct PairColumns for PairState { value: u64, tag: u64 }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct PairState {
    value: u64,
    tag: u64,
}

#[test]
fn soa_backed_engine_is_identical_across_thread_counts_and_layout_knobs() {
    // The SoA path end to end: algorithm state lives in a ColumnStore, is
    // loaded into an engine (Columns → states), run through pull/push rounds
    // whose layout knobs (copy block, prefetch distance, commit batching)
    // vary per configuration, and decomposed back into columns. Every
    // (threads, knobs) point of the matrix must yield bit-identical columns —
    // the knobs are mechanical-sympathy switches, never semantic ones.
    use gossip_net::soa::ColumnStore;

    let initial: Vec<PairState> = (0..2000u64)
        .map(|v| PairState {
            value: v.wrapping_mul(31),
            tag: v ^ 0x5eed,
        })
        .collect();
    let store: ColumnStore<PairColumns> = ColumnStore::from_states(&initial);

    let run = |threads: usize, block: usize, dist: usize, batch: bool| {
        let mut e = Engine::from_states(store.states(), EngineConfig::with_seed(77));
        e.set_threads(threads);
        e.set_copy_block(block)
            .set_prefetch_dist(dist)
            .set_batch_commit(batch);
        let active = ActiveSet::from_fn(2000, |v| v % 3 != 0);
        for _ in 0..3 {
            e.pull_round(
                |_, st| st.value,
                |_, st, pulled| {
                    if let Some(p) = pulled {
                        st.value = fold_hash(st.value, p);
                    }
                },
            );
            e.push_round(
                |_, st| Some(st.tag),
                |_, st, msg| st.tag = fold_hash(st.tag, msg),
                |_, _, _| {},
            );
            e.push_round_on(
                &active,
                |_, st| Some(st.value),
                |_, st, msg| st.value = fold_hash(st.value, msg),
                |_, _, _| {},
            );
        }
        let metrics = e.metrics();
        (
            ColumnStore::<PairColumns>::from_states(e.states()).into_columns(),
            metrics,
        )
    };

    let (baseline_cols, baseline_metrics) = run(1, 2048, 32, true);
    for (i, &threads) in THREAD_MATRIX.iter().enumerate() {
        // Vary every knob along the matrix, including the degenerate block
        // size and a disabled prefetcher.
        let (block, dist, batch) = [(1, 0, false), (64, 8, true), (4096, 512, false)][i];
        let (cols, metrics) = run(threads, block, dist, batch);
        assert_eq!(
            cols.value, baseline_cols.value,
            "{threads} threads / block {block} diverged in the value column"
        );
        assert_eq!(
            cols.tag, baseline_cols.tag,
            "{threads} threads / block {block} diverged in the tag column"
        );
        assert_eq!(metrics, baseline_metrics);
    }

    // The store itself round-trips states losslessly.
    assert_eq!(store.states(), initial);
    assert_eq!(store.get(7), initial[7]);
}

#[test]
fn env_var_thread_counts_honoured_at_construction_do_not_change_results() {
    // Engines pick their default thread count from the environment at
    // construction; results must nevertheless be a pure function of the seed.
    // (Large-n engines default to the parallel path; this just cross-checks
    // an explicit override of that default against the sequential run.)
    let auto = engine(2000, 55, FailureModel::None);
    let default_threads = auto.threads();
    assert!(default_threads >= 1);
    let auto_run = run_mixed_sequence(auto, default_threads);
    let forced_run = run_mixed_sequence(engine(2000, 55, FailureModel::None), 1);
    assert_eq!(auto_run, forced_run);
}
