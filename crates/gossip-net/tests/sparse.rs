//! Sparse/dense equivalence pins and active-set round properties.
//!
//! Two layers of evidence that the sparse execution paths are faithful:
//!
//! 1. **Equivalence pins** — every `*_on` primitive, run over
//!    [`ActiveSet::full`], reproduces the *same* golden fingerprints pinned in
//!    `tests/golden.rs` for the dense engine. The constants are copied here
//!    verbatim: if a dense refactor regenerates the pins, these must be
//!    regenerated in the same commit (the scenarios are identical).
//! 2. **Property tests** — over partial active sets: inactive nodes are
//!    untouched (pull), push receivers are exactly the reported set, sparse
//!    and dense runs agree wherever dense activity is emulated with silent
//!    senders, and metrics count participants instead of `n`.
//!
//! Every test runs at `par::num_threads()` workers, so CI's 1/2/8-thread
//! matrix exercises the sparse dispatch at each thread count.

use gossip_net::{
    par, ActiveSet, ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, LossModel,
    RoundKind, StragglerModel,
};
use rand::Rng;

/// SplitMix64 finalizer (restated, as in `tests/golden.rs`).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive fingerprint of a state vector (identical to golden.rs).
fn fingerprint(states: &[u64]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (i, &s) in states.iter().enumerate() {
        h = mix64(h ^ s ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    format!("{h:016x}")
}

/// Order-sensitive message fold (identical to golden.rs).
fn fold_hash(state: u64, msg: u64) -> u64 {
    (state.rotate_left(7) ^ msg).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Compact metrics fingerprint (identical to golden.rs).
fn metrics_line(e: &Engine<u64>) -> String {
    let m = e.metrics();
    format!(
        "r{} pa{} psa{} f{} d{} b{}",
        m.rounds,
        m.pulls_attempted,
        m.pushes_attempted,
        m.failed_operations,
        m.messages_delivered,
        m.bits_delivered
    )
}

fn engine(n: usize, seed: u64, failure: FailureModel) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).failure(failure);
    let mut e = Engine::from_states((0..n as u64).map(|v| v.wrapping_mul(31)).collect(), config);
    e.set_threads(par::num_threads());
    e
}

fn sparse_pull_rounds(e: &mut Engine<u64>, active: &ActiveSet, rounds: usize) {
    for _ in 0..rounds {
        e.pull_round_on(
            active,
            |_, &s| s,
            |_, st, pulled| {
                if let Some(p) = pulled {
                    *st = fold_hash(*st, p);
                }
            },
        );
    }
}

fn sparse_push_rounds(e: &mut Engine<u64>, active: &ActiveSet, rounds: usize) {
    for _ in 0..rounds {
        e.push_round_on(
            active,
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
    }
}

fn sparse_push_pull_rounds(e: &mut Engine<u64>, active: &ActiveSet, rounds: usize) {
    for _ in 0..rounds {
        e.push_pull_round_on(active, |_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
    }
}

// ---------------------------------------------------------------------------
// Equivalence pins: sparse over the FULL set == the dense golden constants.
// ---------------------------------------------------------------------------

#[test]
fn full_set_pull_matches_dense_golden_pin() {
    let mut e = engine(512, 101, FailureModel::None);
    sparse_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa0 f0 d4096 b262144");
    assert_eq!(fingerprint(e.states()), "ae3cc56cd1a65f40");
}

#[test]
fn full_set_pull_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 101, FailureModel::uniform(0.3).unwrap());
    sparse_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa0 f1208 d2888 b184832");
    assert_eq!(fingerprint(e.states()), "5cc28a958ed5bb0b");
}

#[test]
fn full_set_push_matches_dense_golden_pin() {
    let mut e = engine(512, 202, FailureModel::None);
    sparse_push_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), "r8 pa0 psa3272 f0 d3272 b209408");
    assert_eq!(fingerprint(e.states()), "70bd75821469e779");
}

#[test]
fn full_set_push_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 202, FailureModel::uniform(0.3).unwrap());
    sparse_push_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), "r8 pa0 psa3272 f1006 d2266 b145024");
    assert_eq!(fingerprint(e.states()), "b26c113c63bb08b6");
}

#[test]
fn full_set_push_pull_matches_dense_golden_pin() {
    let mut e = engine(512, 303, FailureModel::None);
    sparse_push_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa4096 f0 d8192 b524288");
    assert_eq!(fingerprint(e.states()), "db3b2d32aeb47638");
}

#[test]
fn full_set_push_pull_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 303, FailureModel::uniform(0.3).unwrap());
    sparse_push_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa4096 f1190 d5812 b371968");
    assert_eq!(fingerprint(e.states()), "a583e9ce52831840");
}

#[test]
fn full_set_collect_samples_matches_dense_golden_pin() {
    let mut e = engine(512, 404, FailureModel::None);
    let samples = e.collect_samples_on(&ActiveSet::full(512), 3, |_, &s| s);
    let mut h = 0u64;
    for bucket in &samples {
        h = mix64(h ^ 0x5eed);
        for &s in bucket {
            h = mix64(h ^ s);
        }
    }
    assert_eq!(metrics_line(&e), "r3 pa1536 psa0 f0 d1536 b98304");
    assert_eq!(format!("{h:016x}"), "72f9976bf7245804");
}

#[test]
fn full_set_collect_samples_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 404, FailureModel::uniform(0.4).unwrap());
    let samples = e.collect_samples_on(&ActiveSet::full(512), 3, |_, &s| s);
    let mut h = 0u64;
    for bucket in &samples {
        h = mix64(h ^ 0x5eed);
        for &s in bucket {
            h = mix64(h ^ s);
        }
    }
    assert_eq!(metrics_line(&e), "r3 pa1536 psa0 f636 d900 b57600");
    assert_eq!(format!("{h:016x}"), "360c83eb4521da94");
}

#[test]
fn full_set_local_step_matches_dense_golden_pin() {
    let mut e = engine(512, 505, FailureModel::None);
    let full = ActiveSet::full(512);
    for _ in 0..4 {
        e.local_step_on(&full, |v, st, rng| {
            *st = fold_hash(*st, rng.gen::<u64>() ^ v as u64);
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    assert_eq!(metrics_line(&e), "r0 pa0 psa0 f0 d0 b0");
    assert_eq!(fingerprint(e.states()), "c3d212c26e4f1768");
}

#[test]
fn full_set_large_n_matches_dense_golden_pin() {
    // The 20k scenario of golden.rs: at multi-thread runs of the CI matrix,
    // the *dense* engine takes the parallel CSR path here; the sparse full-set
    // run must land on the identical trajectory through its pair-sort
    // bucketing.
    let mut e = engine(20_000, 707, FailureModel::None);
    let full = ActiveSet::full(20_000);
    sparse_pull_rounds(&mut e, &full, 2);
    sparse_push_rounds(&mut e, &full, 2);
    sparse_push_pull_rounds(&mut e, &full, 2);
    assert_eq!(metrics_line(&e), "r6 pa80000 psa72000 f0 d152000 b9728000");
    assert_eq!(fingerprint(e.states()), "dacf5252bb6fbfd3");
}

// ---------------------------------------------------------------------------
// Property tests over partial active sets.
// ---------------------------------------------------------------------------

/// A dense run in which inactive nodes are *explicitly* idle must match the
/// sparse run over the active subset exactly: dense push with `make -> None`
/// for inactive nodes draws nothing for them, which is precisely what the
/// sparse path skips.
#[test]
fn sparse_push_matches_dense_with_silent_inactive_senders() {
    let n = 1000;
    let active = ActiveSet::from_fn(n, |v| v % 3 == 0);
    let is_active = |v: usize| v % 3 == 0;

    let mut dense = engine(n, 99, FailureModel::uniform(0.2).unwrap());
    for _ in 0..5 {
        dense.push_round(
            |v, &s| if is_active(v) { Some(s) } else { None },
            |_, st, msg| *st = fold_hash(*st, msg),
            |v, st, delivered| {
                if is_active(v) && !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
    }

    let mut sparse = engine(n, 99, FailureModel::uniform(0.2).unwrap());
    for _ in 0..5 {
        sparse.push_round_on(
            &active,
            |_, &s| Some(s),
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
    }

    assert_eq!(dense.states(), sparse.states());
    let (dm, sm) = (dense.metrics(), sparse.metrics());
    assert_eq!(dm.pushes_attempted, sm.pushes_attempted);
    assert_eq!(dm.messages_delivered, sm.messages_delivered);
    assert_eq!(dm.failed_operations, sm.failed_operations);
    // The *activity* accounting differs by design: dense rounds count n
    // participants, sparse rounds count the active-set size.
    assert_eq!(dm.active_nodes_total, 5 * n as u64);
    assert_eq!(sm.active_nodes_total, 5 * active.len() as u64);
    assert_eq!(sm.max_active, active.len() as u64);
}

#[test]
fn sparse_pull_leaves_inactive_nodes_untouched() {
    let n = 600;
    let active = ActiveSet::from_members(n, (0..n).filter(|v| v % 7 == 1)).unwrap();
    let mut e = engine(n, 5, FailureModel::None);
    let before = e.states().to_vec();
    for _ in 0..4 {
        e.pull_round_on(
            &active,
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = fold_hash(*st, p);
                }
            },
        );
    }
    let mut changed = 0;
    for (v, (&b, &a)) in before.iter().zip(e.states()).enumerate() {
        if active.contains(v) {
            changed += usize::from(a != b);
        } else {
            assert_eq!(a, b, "inactive node {v} was written");
        }
    }
    // Pulling folds a hash; active nodes all change with overwhelming
    // probability.
    assert_eq!(changed, active.len());
    assert_eq!(
        e.metrics().active_of(RoundKind::Pull),
        4 * active.len() as u64
    );
}

#[test]
fn sparse_push_reports_exactly_the_changed_receivers() {
    let n = 800;
    let active = ActiveSet::from_members(n, (0..40).map(|j| j * 17)).unwrap();
    let mut e = Engine::from_states(vec![0u64; n], EngineConfig::with_seed(31));
    e.set_threads(par::num_threads());
    let before = e.states().to_vec();
    let out = e.push_round_on(
        &active,
        |v, _| Some(v as u64 + 1),
        |_, st, msg| *st += msg,
        |_, _, _| {},
    );
    assert_eq!(out.failed, 0);
    // Receivers are sorted, unique, and exactly the nodes whose state moved.
    assert!(out.receivers.windows(2).all(|w| w[0] < w[1]));
    for (v, (&b, &a)) in before.iter().zip(e.states()).enumerate() {
        assert_eq!(a != b, out.receivers.contains(&v), "node {v}");
    }
    // Conservation: every active sender's message landed somewhere.
    let total: u64 = e.states().iter().sum();
    let expected: u64 = active.iter().map(|v| v as u64 + 1).sum();
    assert_eq!(total, expected);
}

#[test]
fn sparse_push_pull_only_actives_pull_but_anyone_receives() {
    let n = 400;
    let active = ActiveSet::from_members(n, (0..20).map(|j| j * 3)).unwrap();
    let mut e = Engine::from_states(vec![Vec::<u64>::new(); n], EngineConfig::with_seed(77));
    e.set_threads(par::num_threads());
    let out = e.push_pull_round_on(&active, |t, _| t as u64, |_, st, msg| st.push(msg));
    assert_eq!(out.failed, 0);
    for (v, st) in e.states().iter().enumerate() {
        let pulled = usize::from(active.contains(v));
        let pushed = usize::from(out.receivers.contains(&v));
        assert_eq!(
            st.len(),
            pulled + pushed,
            "node {v}: merges expected from pull={pulled} push={pushed}"
        );
    }
    let m = e.metrics();
    assert_eq!(m.pulls_attempted, active.len() as u64);
    assert_eq!(m.pushes_attempted, active.len() as u64);
    assert_eq!(m.active_of(RoundKind::PushPull), active.len() as u64);
}

#[test]
fn collect_samples_on_returns_compact_buckets() {
    let n = 300;
    let active = ActiveSet::from_members(n, [5, 17, 100, 299]).unwrap();
    let mut e = engine(n, 23, FailureModel::None);
    let initial = e.states().to_vec();
    let samples = e.collect_samples_on(&active, 3, |_, &s| s);
    assert_eq!(samples.len(), active.len());
    assert!(samples.iter().all(|b| b.len() == 3));
    assert_eq!(e.metrics().rounds, 3);
    assert_eq!(e.metrics().active_nodes_total, 3 * active.len() as u64);
    // Rank lookup maps node ids into the compact layout.
    assert_eq!(active.rank(100), Some(2));
    // States untouched.
    assert_eq!(e.states(), initial.as_slice());
}

#[test]
fn local_step_on_runs_only_the_members() {
    let n = 128;
    let active = ActiveSet::from_fn(n, |v| v < 10);
    let mut e = engine(n, 1, FailureModel::None);
    let before = e.states().to_vec();
    e.local_step_on(&active, |v, st, _| *st = v as u64);
    for (v, &b) in before.iter().enumerate() {
        if v < 10 {
            assert_eq!(e.states()[v], v as u64);
        } else {
            assert_eq!(e.states()[v], b);
        }
    }
}

#[test]
fn empty_active_set_rounds_are_no_ops_that_still_count_rounds() {
    let n = 64;
    let empty = ActiveSet::from_members(n, std::iter::empty()).unwrap();
    let mut e = engine(n, 2, FailureModel::None);
    let before = e.states().to_vec();
    let failed = e.pull_round_on(&empty, |_, &s| s, |_, _, _| {});
    assert_eq!(failed, 0);
    let out = e.push_round_on(&empty, |_, &s| Some(s), |_, _, _| {}, |_, _, _| {});
    assert!(out.receivers.is_empty());
    assert_eq!(e.states(), before.as_slice());
    assert_eq!(e.round(), 2);
    assert_eq!(e.metrics().rounds, 2);
    assert_eq!(e.metrics().active_nodes_total, 0);
    assert_eq!(e.metrics().max_active, 0);
}

#[test]
fn sparse_and_dense_rounds_interleave_freely() {
    // The copy-on-write commit must leave the front buffer fully current, so
    // a dense round after a sparse one (and vice versa) sees every node's
    // latest value. Compare against an all-dense emulation.
    let n = 500;
    let active = ActiveSet::from_fn(n, |v| v % 4 == 0);
    let is_active = |v: usize| v % 4 == 0;

    let run_mixed = |sparse: bool| {
        let mut e = engine(n, 404, FailureModel::uniform(0.1).unwrap());
        for _ in 0..3 {
            // Dense pull (all nodes).
            e.pull_round(
                |_, &s| s,
                |_, st, p| {
                    if let Some(p) = p {
                        *st = fold_hash(*st, p);
                    }
                },
            );
            // Sparse push from the subset vs dense push with silent others.
            if sparse {
                e.push_round_on(
                    &active,
                    |_, &s| Some(s),
                    |_, st, msg| *st = fold_hash(*st, msg),
                    |_, _, _| {},
                );
            } else {
                e.push_round(
                    |v, &s| if is_active(v) { Some(s) } else { None },
                    |_, st, msg| *st = fold_hash(*st, msg),
                    |_, _, _| {},
                );
            }
        }
        e.into_states()
    };
    assert_eq!(run_mixed(true), run_mixed(false));
}

// ---------------------------------------------------------------------------
// Fault-active scenarios: the sparse faulty paths against the dense ones.
// ---------------------------------------------------------------------------

fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
        .with_loss(LossModel::uniform(0.15).unwrap())
        .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap())
        .with_failure(FailureModel::uniform(0.1).unwrap())
}

fn fault_engine(n: usize, seed: u64) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).fault(chaos_plan());
    let mut e = Engine::from_states((0..n as u64).map(|v| v.wrapping_mul(31)).collect(), config);
    e.set_threads(par::num_threads());
    e
}

/// Sparse rounds over the FULL active set take the same per-contact fault
/// decisions (same counter-keyed coins) as the dense engine, so the two
/// trajectories must be bit-identical — including the straggler buffers.
#[test]
fn full_set_fault_rounds_match_dense_fault_rounds() {
    let n = 1000;
    let full = ActiveSet::full(n);

    let mut dense = fault_engine(n, 77);
    let mut sparse = fault_engine(n, 77);
    for _ in 0..4 {
        dense.pull_round(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = fold_hash(*st, p);
                }
            },
        );
        sparse.pull_round_on(
            &full,
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = fold_hash(*st, p);
                }
            },
        );
        dense.push_round(
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
        sparse.push_round_on(
            &full,
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
        dense.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        sparse.push_pull_round_on(&full, |_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
    }

    assert_eq!(dense.states(), sparse.states());
    assert_eq!(dense.crashed_nodes(), sparse.crashed_nodes());
    assert_eq!(dense.delayed_in_flight(), sparse.delayed_in_flight());
    let (dm, sm) = (dense.metrics(), sparse.metrics());
    assert!(dm.crashed_operations > 0, "churn did not fire");
    assert!(dm.messages_dropped > 0, "loss did not fire");
    assert!(dm.messages_delayed > 0, "stragglers did not fire");
    assert_eq!(dm.crashed_operations, sm.crashed_operations);
    assert_eq!(dm.messages_dropped, sm.messages_dropped);
    assert_eq!(dm.messages_delayed, sm.messages_delayed);
    assert_eq!(dm.messages_delivered, sm.messages_delivered);
    assert_eq!(dm.failed_operations, sm.failed_operations);
}

/// Under stragglers, a sparse push round's reported receivers include the
/// late arrivals drained that round — still sorted, unique, and exactly the
/// nodes whose state changed.
#[test]
fn sparse_push_receivers_include_drained_stragglers() {
    let n = 600;
    let active = ActiveSet::from_fn(n, |v| v % 3 == 0);
    let plan = FaultPlan::none().with_stragglers(StragglerModel::uniform(0.5, 1).unwrap());
    let mut e = Engine::from_states(vec![0u64; n], EngineConfig::with_seed(13).fault(plan));
    e.set_threads(par::num_threads());
    let mut total_received = 0u64;
    for _ in 0..4 {
        let before = e.states().to_vec();
        let out = e.push_round_on(
            &active,
            |_, _| Some(1u64),
            |_, st, msg| *st += msg,
            |_, _, _| {},
        );
        assert!(out.receivers.windows(2).all(|w| w[0] < w[1]));
        for (v, (&b, &a)) in before.iter().zip(e.states()).enumerate() {
            assert_eq!(a != b, out.receivers.contains(&v), "node {v}");
        }
        total_received = e.states().iter().sum();
    }
    // Every delivery (in-round or drained) incremented exactly one counter.
    assert_eq!(total_received, e.metrics().messages_delivered);
    // With delay 1 and four rounds, something straggled and something
    // drained.
    assert!(e.metrics().messages_delayed > 0);
    assert!(total_received > 0);
}

/// Sparse collect_samples under churn and loss: buckets stay within `k`,
/// states untouched, and the crashed set is visible mid-protocol.
#[test]
fn collect_samples_on_under_faults_thins_buckets() {
    let n = 500;
    let active = ActiveSet::from_fn(n, |v| v % 2 == 0);
    let plan = FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.2, 1).unwrap())
        .with_loss(LossModel::uniform(0.3).unwrap());
    let mut e = Engine::from_states(
        (0..n as u64).collect(),
        EngineConfig::with_seed(29).fault(plan),
    );
    e.set_threads(par::num_threads());
    let initial = e.states().to_vec();
    let samples = e.collect_samples_on(&active, 4, |_, &s| s);
    assert_eq!(samples.len(), active.len());
    assert!(samples.iter().all(|b| b.len() <= 4));
    let total: usize = samples.iter().map(Vec::len).sum();
    assert!(total < 4 * active.len());
    assert!(total > 0);
    assert_eq!(e.states(), initial.as_slice());
    assert!(e.metrics().messages_dropped > 0);
}

#[test]
#[should_panic(expected = "ActiveSet was built for a")]
fn mismatched_active_set_size_panics() {
    let mut e = engine(64, 1, FailureModel::None);
    let wrong = ActiveSet::full(65);
    e.pull_round_on(&wrong, |_, &s| s, |_, _, _| {});
}
