//! Sparse/dense equivalence pins and active-set round properties.
//!
//! Two layers of evidence that the sparse execution paths are faithful:
//!
//! 1. **Equivalence pins** — every `*_on` primitive, run over
//!    [`ActiveSet::full`], reproduces the *same* golden fingerprints pinned in
//!    `tests/data/goldens.txt` for the dense engine (the scenarios are
//!    identical, so both suites read the same keys; regenerate with
//!    `cargo run -p gossip-net --example regen_goldens -- --write`).
//! 2. **Property tests** — over partial active sets: inactive nodes are
//!    untouched (pull), push receivers are exactly the reported set, sparse
//!    and dense runs agree wherever dense activity is emulated with silent
//!    senders, and metrics count participants instead of `n`.
//!
//! Every test runs at `par::num_threads()` workers, so CI's 1/2/8-thread
//! matrix exercises the sparse dispatch at each thread count.

#[path = "support/goldens.rs"]
mod support;

use gossip_net::{
    par, ActiveSet, ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, LossModel,
    RoundKind, StragglerModel,
};
use proptest::prelude::*;
use rand::Rng;
use support::{
    chaos_plan, engine, fingerprint, fold_hash, metrics_line, pinned, sample_fp,
    sparse_pull_rounds, sparse_push_pull_rounds, sparse_push_rounds,
};

// ---------------------------------------------------------------------------
// Equivalence pins: sparse over the FULL set == the dense golden constants.
// ---------------------------------------------------------------------------

#[test]
fn full_set_pull_matches_dense_golden_pin() {
    let mut e = engine(512, 101, FailureModel::None);
    sparse_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), pinned("pull.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("pull.fp"));
}

#[test]
fn full_set_pull_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 101, FailureModel::uniform(0.3).unwrap());
    sparse_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), pinned("pull_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("pull_failures.fp"));
}

#[test]
fn full_set_push_matches_dense_golden_pin() {
    let mut e = engine(512, 202, FailureModel::None);
    sparse_push_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), pinned("push.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push.fp"));
}

#[test]
fn full_set_push_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 202, FailureModel::uniform(0.3).unwrap());
    sparse_push_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), pinned("push_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push_failures.fp"));
}

#[test]
fn full_set_push_pull_matches_dense_golden_pin() {
    let mut e = engine(512, 303, FailureModel::None);
    sparse_push_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), pinned("push_pull.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push_pull.fp"));
}

#[test]
fn full_set_push_pull_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 303, FailureModel::uniform(0.3).unwrap());
    sparse_push_pull_rounds(&mut e, &ActiveSet::full(512), 8);
    assert_eq!(metrics_line(&e), pinned("push_pull_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push_pull_failures.fp"));
}

#[test]
fn full_set_collect_samples_matches_dense_golden_pin() {
    let mut e = engine(512, 404, FailureModel::None);
    let samples = e.collect_samples_on(&ActiveSet::full(512), 3, |_, &s| s);
    assert_eq!(metrics_line(&e), pinned("collect.metrics"));
    assert_eq!(sample_fp(&samples), pinned("collect.sample_fp"));
}

#[test]
fn full_set_collect_samples_with_failures_matches_dense_golden_pin() {
    let mut e = engine(512, 404, FailureModel::uniform(0.4).unwrap());
    let samples = e.collect_samples_on(&ActiveSet::full(512), 3, |_, &s| s);
    assert_eq!(metrics_line(&e), pinned("collect_failures.metrics"));
    assert_eq!(sample_fp(&samples), pinned("collect_failures.sample_fp"));
}

#[test]
fn full_set_local_step_matches_dense_golden_pin() {
    let mut e = engine(512, 505, FailureModel::None);
    let full = ActiveSet::full(512);
    for _ in 0..4 {
        e.local_step_on(&full, |v, st, rng| {
            *st = fold_hash(*st, rng.gen::<u64>() ^ v as u64);
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    assert_eq!(metrics_line(&e), pinned("local_step.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("local_step.fp"));
}

#[test]
fn full_set_large_n_matches_dense_golden_pin() {
    // The 20k scenario of golden.rs: at multi-thread runs of the CI matrix,
    // the *dense* engine takes the parallel CSR path here; the sparse full-set
    // run must land on the identical trajectory through its pair-sort
    // bucketing.
    let mut e = engine(20_000, 707, FailureModel::None);
    let full = ActiveSet::full(20_000);
    sparse_pull_rounds(&mut e, &full, 2);
    sparse_push_rounds(&mut e, &full, 2);
    sparse_push_pull_rounds(&mut e, &full, 2);
    assert_eq!(metrics_line(&e), pinned("large.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("large.fp"));
}

// ---------------------------------------------------------------------------
// Property tests over partial active sets.
//
// Generated by the `proptest` harness (seeded, shrink-on-failure): network
// size, seed and active-set shape are drawn per case instead of being fixed
// constants, so the invariants are exercised across many subset geometries.
// Override the generator seed with `PROPTEST_SEED`.
// ---------------------------------------------------------------------------

proptest! {
    /// A dense run in which inactive nodes are *explicitly* idle must match
    /// the sparse run over the active subset exactly: dense push with
    /// `make -> None` for inactive nodes draws nothing for them, which is
    /// precisely what the sparse path skips.
    fn sparse_push_matches_dense_with_silent_inactive_senders(
        n in 16usize..600,
        seed in 0u64..1_000_000,
        m in 2usize..8,
    ) {
        let active = ActiveSet::from_fn(n, |v| v % m == 0);
        let is_active = |v: usize| v % m == 0;

        let mut dense = engine(n, seed, FailureModel::uniform(0.2).unwrap());
        for _ in 0..3 {
            dense.push_round(
                |v, &s| if is_active(v) { Some(s) } else { None },
                |_, st, msg| *st = fold_hash(*st, msg),
                |v, st, delivered| {
                    if is_active(v) && !delivered {
                        *st = st.wrapping_add(1);
                    }
                },
            );
        }

        let mut sparse = engine(n, seed, FailureModel::uniform(0.2).unwrap());
        for _ in 0..3 {
            sparse.push_round_on(
                &active,
                |_, &s| Some(s),
                |_, st, msg| *st = fold_hash(*st, msg),
                |_, st, delivered| {
                    if !delivered {
                        *st = st.wrapping_add(1);
                    }
                },
            );
        }

        prop_assert_eq!(dense.states(), sparse.states());
        let (dm, sm) = (dense.metrics(), sparse.metrics());
        prop_assert_eq!(dm.pushes_attempted, sm.pushes_attempted);
        prop_assert_eq!(dm.messages_delivered, sm.messages_delivered);
        prop_assert_eq!(dm.failed_operations, sm.failed_operations);
        // The *activity* accounting differs by design: dense rounds count n
        // participants, sparse rounds count the active-set size.
        prop_assert_eq!(dm.active_nodes_total, 3 * n as u64);
        prop_assert_eq!(sm.active_nodes_total, 3 * active.len() as u64);
        prop_assert_eq!(sm.max_active, active.len() as u64);
    }

    fn sparse_pull_leaves_inactive_nodes_untouched(
        n in 16usize..600,
        seed in 0u64..1_000_000,
        m in 2usize..9,
    ) {
        let active = ActiveSet::from_members(n, (0..n).filter(|v| v % m == 1)).unwrap();
        let mut e = engine(n, seed, FailureModel::None);
        let before = e.states().to_vec();
        for _ in 0..3 {
            e.pull_round_on(
                &active,
                |_, &s| s,
                |_, st, p| {
                    if let Some(p) = p {
                        *st = fold_hash(*st, p);
                    }
                },
            );
        }
        let mut changed = 0;
        for (v, (&b, &a)) in before.iter().zip(e.states()).enumerate() {
            if active.contains(v) {
                changed += usize::from(a != b);
            } else {
                prop_assert_eq!(a, b, "inactive node {} was written", v);
            }
        }
        // Pulling folds a hash; active nodes all change with overwhelming
        // probability.
        prop_assert_eq!(changed, active.len());
        prop_assert_eq!(e.metrics().active_of(RoundKind::Pull), 3 * active.len() as u64);
    }

    fn sparse_push_reports_exactly_the_changed_receivers(
        n in 32usize..800,
        seed in 0u64..1_000_000,
        stride in 1usize..20,
    ) {
        let active = ActiveSet::from_members(n, (0..n).step_by(stride)).unwrap();
        let mut e = Engine::from_states(vec![0u64; n], EngineConfig::with_seed(seed));
        e.set_threads(par::num_threads());
        let before = e.states().to_vec();
        let out = e.push_round_on(
            &active,
            |v, _| Some(v as u64 + 1),
            |_, st, msg| *st += msg,
            |_, _, _| {},
        );
        prop_assert_eq!(out.failed, 0);
        // Receivers are sorted, unique, and exactly the nodes whose state
        // moved.
        prop_assert!(out.receivers.windows(2).all(|w| w[0] < w[1]));
        for (v, (&b, &a)) in before.iter().zip(e.states()).enumerate() {
            prop_assert_eq!(a != b, out.receivers.contains(&v), "node {}", v);
        }
        // Conservation: every active sender's message landed somewhere.
        let total: u64 = e.states().iter().sum();
        let expected: u64 = active.iter().map(|v| v as u64 + 1).sum();
        prop_assert_eq!(total, expected);
    }

    fn sparse_push_pull_only_actives_pull_but_anyone_receives(
        n in 16usize..400,
        seed in 0u64..1_000_000,
        stride in 1usize..12,
    ) {
        let active = ActiveSet::from_members(n, (0..n).step_by(stride)).unwrap();
        let mut e = Engine::from_states(vec![Vec::<u64>::new(); n], EngineConfig::with_seed(seed));
        e.set_threads(par::num_threads());
        let out = e.push_pull_round_on(&active, |t, _| t as u64, |_, st, msg| st.push(msg));
        prop_assert_eq!(out.failed, 0);
        // Each active node merges exactly its one pulled message; every push
        // lands on some node (possibly colliding), so the merge count is
        // conserved at two per active node.
        let merges: usize = e.states().iter().map(Vec::len).sum();
        prop_assert_eq!(merges, 2 * active.len());
        for (v, st) in e.states().iter().enumerate() {
            let pulled = usize::from(active.contains(v));
            let pushed = usize::from(out.receivers.contains(&v));
            prop_assert!(
                st.len() >= pulled + pushed,
                "node {}: expected at least pull={} push={} merges, got {}",
                v, pulled, pushed, st.len()
            );
            if !active.contains(v) && !out.receivers.contains(&v) {
                prop_assert!(st.is_empty(), "idle node {} was written", v);
            }
        }
        let m = e.metrics();
        prop_assert_eq!(m.pulls_attempted, active.len() as u64);
        prop_assert_eq!(m.pushes_attempted, active.len() as u64);
        prop_assert_eq!(m.active_of(RoundKind::PushPull), active.len() as u64);
    }

    fn collect_samples_on_returns_compact_buckets(
        dims in (8usize..300, 0u64..1_000_000),
        k in 1usize..5,
        raw in collection::vec(0u64..100_000, 1..12),
    ) {
        let (n, seed) = dims;
        let active = ActiveSet::from_members(n, raw.iter().map(|&r| r as usize % n)).unwrap();
        let mut e = engine(n, seed, FailureModel::None);
        let initial = e.states().to_vec();
        let samples = e.collect_samples_on(&active, k, |_, &s| s);
        prop_assert_eq!(samples.len(), active.len());
        prop_assert!(samples.iter().all(|b| b.len() == k));
        prop_assert_eq!(e.metrics().rounds, k as u64);
        prop_assert_eq!(e.metrics().active_nodes_total, (k * active.len()) as u64);
        // Rank lookup maps node ids into the compact layout.
        for (r, v) in active.iter().enumerate() {
            prop_assert_eq!(active.rank(v), Some(r));
        }
        // States untouched.
        prop_assert_eq!(e.states(), initial.as_slice());
    }

    fn local_step_on_runs_only_the_members(
        n in 16usize..256,
        seed in 0u64..1_000_000,
        cut in 1usize..16,
    ) {
        let active = ActiveSet::from_fn(n, |v| v < cut);
        let mut e = engine(n, seed, FailureModel::None);
        let before = e.states().to_vec();
        e.local_step_on(&active, |v, st, _| *st = v as u64);
        for (v, &b) in before.iter().enumerate() {
            if v < cut {
                prop_assert_eq!(e.states()[v], v as u64);
            } else {
                prop_assert_eq!(e.states()[v], b);
            }
        }
    }

    fn empty_active_set_rounds_are_no_ops_that_still_count_rounds(
        n in 2usize..128,
        seed in 0u64..1_000_000,
    ) {
        let empty = ActiveSet::from_members(n, std::iter::empty()).unwrap();
        let mut e = engine(n, seed, FailureModel::None);
        let before = e.states().to_vec();
        let failed = e.pull_round_on(&empty, |_, &s| s, |_, _, _| {});
        prop_assert_eq!(failed, 0);
        let out = e.push_round_on(&empty, |_, &s| Some(s), |_, _, _| {}, |_, _, _| {});
        prop_assert!(out.receivers.is_empty());
        prop_assert_eq!(e.states(), before.as_slice());
        prop_assert_eq!(e.round(), 2);
        prop_assert_eq!(e.metrics().rounds, 2);
        prop_assert_eq!(e.metrics().active_nodes_total, 0);
        prop_assert_eq!(e.metrics().max_active, 0);
    }

    /// The copy-on-write commit must leave the front buffer fully current, so
    /// a dense round after a sparse one (and vice versa) sees every node's
    /// latest value. Compare against an all-dense emulation.
    fn sparse_and_dense_rounds_interleave_freely(
        n in 16usize..500,
        seed in 0u64..1_000_000,
        m in 2usize..8,
    ) {
        let active = ActiveSet::from_fn(n, |v| v % m == 0);
        let is_active = |v: usize| v % m == 0;

        let run_mixed = |sparse: bool| {
            let mut e = engine(n, seed, FailureModel::uniform(0.1).unwrap());
            for _ in 0..2 {
                // Dense pull (all nodes).
                e.pull_round(
                    |_, &s| s,
                    |_, st, p| {
                        if let Some(p) = p {
                            *st = fold_hash(*st, p);
                        }
                    },
                );
                // Sparse push from the subset vs dense push with silent
                // others.
                if sparse {
                    e.push_round_on(
                        &active,
                        |_, &s| Some(s),
                        |_, st, msg| *st = fold_hash(*st, msg),
                        |_, _, _| {},
                    );
                } else {
                    e.push_round(
                        |v, &s| if is_active(v) { Some(s) } else { None },
                        |_, st, msg| *st = fold_hash(*st, msg),
                        |_, _, _| {},
                    );
                }
            }
            e.into_states()
        };
        prop_assert_eq!(run_mixed(true), run_mixed(false));
    }
}

// ---------------------------------------------------------------------------
// ActiveSet algebra: union_sorted / rank against the dense bitmap oracle.
// ---------------------------------------------------------------------------

/// Reduces a raw draw to a strictly increasing member list in `0..n`.
fn sorted_members(n: usize, raw: &[u64]) -> Vec<usize> {
    let mut m: Vec<usize> = raw.iter().map(|&r| r as usize % n).collect();
    m.sort_unstable();
    m.dedup();
    m
}

proptest! {
    fn union_sorted_matches_from_members_and_is_idempotent(
        n in 1usize..512,
        raw in collection::vec(0u64..100_000, 0..64),
    ) {
        let members = sorted_members(n, &raw);
        let expect = ActiveSet::from_members(n, members.iter().copied()).unwrap();
        let mut set = ActiveSet::from_members(n, std::iter::empty()).unwrap();
        set.union_sorted(&members);
        prop_assert_eq!(&set, &expect);
        // Unioning the same list again changes nothing.
        set.union_sorted(&members);
        prop_assert_eq!(&set, &expect);
    }

    fn union_sorted_commutes_and_agrees_with_the_dense_bitmap(
        n in 1usize..512,
        raw_a in collection::vec(0u64..100_000, 0..48),
        raw_b in collection::vec(0u64..100_000, 0..48),
    ) {
        let a = sorted_members(n, &raw_a);
        let b = sorted_members(n, &raw_b);
        let mut ab = ActiveSet::from_members(n, a.iter().copied()).unwrap();
        ab.union_sorted(&b);
        let mut ba = ActiveSet::from_members(n, b.iter().copied()).unwrap();
        ba.union_sorted(&a);
        prop_assert_eq!(&ab, &ba);
        let dense = ActiveSet::from_fn(n, |v| {
            a.binary_search(&v).is_ok() || b.binary_search(&v).is_ok()
        });
        prop_assert_eq!(&ab, &dense);
    }

    fn rank_is_the_position_in_indices(
        n in 1usize..400,
        raw in collection::vec(0u64..100_000, 0..64),
    ) {
        let members = sorted_members(n, &raw);
        let set = ActiveSet::from_members(n, members.iter().copied()).unwrap();
        for (r, v) in set.iter().enumerate() {
            prop_assert_eq!(set.rank(v), Some(r));
        }
        for v in 0..n {
            if !set.contains(v) {
                prop_assert_eq!(set.rank(v), None);
            }
        }
        // `indices()` and `iter()` agree and are strictly increasing.
        let ids = set.indices();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(ids.len(), members.len());
    }
}

// ---------------------------------------------------------------------------
// Fault-active scenarios: the sparse faulty paths against the dense ones.
// ---------------------------------------------------------------------------

fn fault_engine(n: usize, seed: u64) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).fault(chaos_plan());
    let mut e = Engine::from_states((0..n as u64).map(|v| v.wrapping_mul(31)).collect(), config);
    e.set_threads(par::num_threads());
    e
}

/// Sparse rounds over the FULL active set take the same per-contact fault
/// decisions (same counter-keyed coins) as the dense engine, so the two
/// trajectories must be bit-identical — including the straggler buffers.
#[test]
fn full_set_fault_rounds_match_dense_fault_rounds() {
    full_vs_dense_fault_case(1000, 77).unwrap();
}

proptest! {
    /// The same full-set/dense equivalence, over generated sizes and seeds.
    fn full_set_fault_rounds_match_dense_fault_rounds_generated(
        n in 200usize..1000,
        seed in 0u64..1_000_000,
    ) {
        full_vs_dense_fault_case(n, seed)?;
    }
}

fn full_vs_dense_fault_case(n: usize, seed: u64) -> proptest::TestCaseResult {
    let full = ActiveSet::full(n);

    let mut dense = fault_engine(n, seed);
    let mut sparse = fault_engine(n, seed);
    for _ in 0..4 {
        dense.pull_round(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = fold_hash(*st, p);
                }
            },
        );
        sparse.pull_round_on(
            &full,
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = fold_hash(*st, p);
                }
            },
        );
        dense.push_round(
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
        sparse.push_round_on(
            &full,
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
        dense.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
        sparse.push_pull_round_on(&full, |_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
    }

    prop_assert_eq!(dense.states(), sparse.states());
    prop_assert_eq!(dense.crashed_nodes(), sparse.crashed_nodes());
    prop_assert_eq!(dense.delayed_in_flight(), sparse.delayed_in_flight());
    let (dm, sm) = (dense.metrics(), sparse.metrics());
    prop_assert!(dm.crashed_operations > 0, "churn did not fire");
    prop_assert!(dm.messages_dropped > 0, "loss did not fire");
    prop_assert!(dm.messages_delayed > 0, "stragglers did not fire");
    prop_assert_eq!(dm.crashed_operations, sm.crashed_operations);
    prop_assert_eq!(dm.messages_dropped, sm.messages_dropped);
    prop_assert_eq!(dm.messages_delayed, sm.messages_delayed);
    prop_assert_eq!(dm.messages_delivered, sm.messages_delivered);
    prop_assert_eq!(dm.failed_operations, sm.failed_operations);
    Ok(())
}

proptest! {
    /// Under stragglers, a sparse push round's reported receivers include the
    /// late arrivals drained that round — still sorted, unique, and exactly
    /// the nodes whose state changed.
    fn sparse_push_receivers_include_drained_stragglers(
        n in 90usize..600,
        seed in 0u64..1_000_000,
    ) {
        let active = ActiveSet::from_fn(n, |v| v % 3 == 0);
        let plan = FaultPlan::none().with_stragglers(StragglerModel::uniform(0.5, 1).unwrap());
        let mut e = Engine::from_states(vec![0u64; n], EngineConfig::with_seed(seed).fault(plan));
        e.set_threads(par::num_threads());
        let mut total_received = 0u64;
        for _ in 0..4 {
            let before = e.states().to_vec();
            let out = e.push_round_on(
                &active,
                |_, _| Some(1u64),
                |_, st, msg| *st += msg,
                |_, _, _| {},
            );
            prop_assert!(out.receivers.windows(2).all(|w| w[0] < w[1]));
            for (v, (&b, &a)) in before.iter().zip(e.states()).enumerate() {
                prop_assert_eq!(a != b, out.receivers.contains(&v), "node {}", v);
            }
            total_received = e.states().iter().sum();
        }
        // Every delivery (in-round or drained) incremented exactly one
        // counter.
        prop_assert_eq!(total_received, e.metrics().messages_delivered);
        // With delay 1 and four rounds, something straggled and something
        // drained.
        prop_assert!(e.metrics().messages_delayed > 0);
        prop_assert!(total_received > 0);
    }

    /// Sparse collect_samples under churn and loss: buckets stay within `k`,
    /// states untouched, and the crashed set is visible mid-protocol.
    fn collect_samples_on_under_faults_thins_buckets(
        n in 100usize..500,
        seed in 0u64..1_000_000,
    ) {
        let active = ActiveSet::from_fn(n, |v| v % 2 == 0);
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::with_rejoin(0.2, 1).unwrap())
            .with_loss(LossModel::uniform(0.3).unwrap());
        let mut e = Engine::from_states(
            (0..n as u64).collect(),
            EngineConfig::with_seed(seed).fault(plan),
        );
        e.set_threads(par::num_threads());
        let initial = e.states().to_vec();
        let samples = e.collect_samples_on(&active, 4, |_, &s| s);
        prop_assert_eq!(samples.len(), active.len());
        prop_assert!(samples.iter().all(|b| b.len() <= 4));
        let total: usize = samples.iter().map(Vec::len).sum();
        prop_assert!(total < 4 * active.len());
        prop_assert!(total > 0);
        prop_assert_eq!(e.states(), initial.as_slice());
        prop_assert!(e.metrics().messages_dropped > 0);
    }
}

#[test]
#[should_panic(expected = "ActiveSet was built for a")]
fn mismatched_active_set_size_panics() {
    let mut e = engine(64, 1, FailureModel::None);
    let wrong = ActiveSet::full(65);
    e.pull_round_on(&wrong, |_, &s| s, |_, _, _| {});
}
