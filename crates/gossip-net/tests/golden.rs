//! Golden-trajectory pins: exact fingerprints of engine executions.
//!
//! The determinism suite (`tests/determinism.rs`) proves runs are identical
//! *across thread counts*; this suite pins them to fixed hex values, so a perf
//! refactor of the round internals (pass fusion, buffer reuse, RNG keying
//! shortcuts) can *prove* it is bit-identical to the previous engine rather
//! than only self-consistent.
//!
//! The pinned constants live in `tests/data/goldens.txt`, shared with the
//! sparse full-set equivalence pins of `tests/sparse.rs`. If a change
//! legitimately alters the randomness contract, regenerate the file —
//! deliberately, in the same commit, with a CHANGES.md note — with
//!
//! ```text
//! cargo run -p gossip-net --example regen_goldens -- --write
//! ```
//!
//! (without `--write` the example recomputes everything, prints the drift and
//! exits non-zero, so it doubles as a standalone check).
//!
//! Every scenario runs at `par::num_threads()` worker threads, so CI's
//! `GOSSIP_NUM_THREADS=1/2/8` matrix checks each pin at all three thread
//! counts (including, at the large sizes, the parallel CSR bucketing path).

#[path = "support/goldens.rs"]
mod support;

use gossip_net::FailureModel;
use support::{
    engine, fault_metrics_line, faulted_mixed, fingerprint, hash_local_steps, initial_states,
    metrics_line, mixed_iteration, pinned, pull_rounds, push_pull_rounds, push_rounds, sample_fp,
};

#[test]
fn golden_pull() {
    let mut e = engine(512, 101, FailureModel::None);
    pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), pinned("pull.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("pull.fp"));
}

#[test]
fn golden_pull_with_failures() {
    let mut e = engine(512, 101, FailureModel::uniform(0.3).unwrap());
    pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), pinned("pull_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("pull_failures.fp"));
}

#[test]
fn golden_push() {
    let mut e = engine(512, 202, FailureModel::None);
    push_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), pinned("push.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push.fp"));
}

#[test]
fn golden_push_with_failures() {
    let mut e = engine(512, 202, FailureModel::uniform(0.3).unwrap());
    push_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), pinned("push_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push_failures.fp"));
}

#[test]
fn golden_push_pull() {
    let mut e = engine(512, 303, FailureModel::None);
    push_pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), pinned("push_pull.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push_pull.fp"));
}

#[test]
fn golden_push_pull_with_failures() {
    let mut e = engine(512, 303, FailureModel::uniform(0.3).unwrap());
    push_pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), pinned("push_pull_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("push_pull_failures.fp"));
}

#[test]
fn golden_collect_samples() {
    let mut e = engine(512, 404, FailureModel::None);
    let samples = e.collect_samples(3, |_, &s| s);
    assert_eq!(metrics_line(&e), pinned("collect.metrics"));
    assert_eq!(sample_fp(&samples), pinned("collect.sample_fp"));
    // Sampling leaves the node states untouched.
    assert_eq!(fingerprint(e.states()), fingerprint(&initial_states(512)));
}

#[test]
fn golden_collect_samples_with_failures() {
    let mut e = engine(512, 404, FailureModel::uniform(0.4).unwrap());
    let samples = e.collect_samples(3, |_, &s| s);
    assert_eq!(metrics_line(&e), pinned("collect_failures.metrics"));
    assert_eq!(sample_fp(&samples), pinned("collect_failures.sample_fp"));
}

#[test]
fn golden_faulted_mixed_sequence() {
    // One pin over all five primitives with the full fault plan active —
    // churn, loss, stragglers and failures together. This freezes the
    // fault-injection randomness contract: the per-contact coin streams,
    // the straggler buffering order, and the churn scan.
    let e = faulted_mixed(600, 909);
    assert_eq!(metrics_line(&e), pinned("faulted_mixed.metrics"));
    assert_eq!(fault_metrics_line(&e), pinned("faulted_mixed.faults"));
    assert_eq!(fingerprint(e.states()), pinned("faulted_mixed.fp"));
}

#[test]
fn golden_local_step() {
    let mut e = engine(512, 505, FailureModel::None);
    hash_local_steps(&mut e, 4);
    assert_eq!(metrics_line(&e), pinned("local_step.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("local_step.fp"));
}

#[test]
fn golden_mixed_sequence() {
    // One pin over an interleaving of all five primitives, failure injection
    // on — the broadest single trajectory.
    let mut e = engine(600, 606, FailureModel::uniform(0.2).unwrap());
    for _ in 0..3 {
        mixed_iteration(&mut e);
    }
    assert_eq!(metrics_line(&e), pinned("mixed.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("mixed.fp"));
}

#[test]
fn golden_large_n_covers_parallel_paths() {
    // Big enough that multi-thread runs of the CI matrix take the parallel
    // CSR bucketing and chunked round paths; the pins must match the
    // sequential values bit for bit.
    let mut e = engine(20_000, 707, FailureModel::None);
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    assert_eq!(metrics_line(&e), pinned("large.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("large.fp"));
}

#[test]
fn golden_large_n_with_failures() {
    let mut e = engine(20_000, 808, FailureModel::uniform(0.25).unwrap());
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    assert_eq!(metrics_line(&e), pinned("large_failures.metrics"));
    assert_eq!(fingerprint(e.states()), pinned("large_failures.fp"));
}

/// The constants the test suites read and the values `compute_all` (which the
/// regen example writes) produce must agree key-for-key, so the file can
/// never silently miss a scenario.
#[test]
fn pin_file_covers_exactly_the_computed_keys() {
    let mut file_keys: Vec<&str> = support::GOLDENS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_once('=').map(|(k, _)| k.trim()))
        .collect();
    // `compute_all` is expensive (it replays every scenario), so compare key
    // sets only — the values themselves are checked by the pins above.
    let expected = [
        "pull",
        "pull_failures",
        "push",
        "push_failures",
        "push_pull",
        "push_pull_failures",
        "collect",
        "collect_failures",
        "local_step",
        "mixed",
        "faulted_mixed",
        "large",
        "large_failures",
    ];
    let mut want: Vec<String> = Vec::new();
    for name in expected {
        want.push(format!("{name}.metrics"));
        match name {
            "collect" | "collect_failures" => want.push(format!("{name}.sample_fp")),
            _ => want.push(format!("{name}.fp")),
        }
        if name == "faulted_mixed" {
            want.insert(want.len() - 1, format!("{name}.faults"));
        }
    }
    file_keys.sort_unstable();
    let mut want: Vec<&str> = want.iter().map(String::as_str).collect();
    want.sort_unstable();
    assert_eq!(file_keys, want);
}
