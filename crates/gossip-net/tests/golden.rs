//! Golden-trajectory pins: exact fingerprints of engine executions.
//!
//! The determinism suite (`tests/determinism.rs`) proves runs are identical
//! *across thread counts*; this suite pins them to fixed hex values, so a perf
//! refactor of the round internals (pass fusion, buffer reuse, RNG keying
//! shortcuts) can *prove* it is bit-identical to the previous engine rather
//! than only self-consistent. If a change legitimately alters the randomness
//! contract, these constants must be regenerated — deliberately, in the same
//! commit, with a CHANGES.md note.
//!
//! Every scenario runs at `par::num_threads()` worker threads, so CI's
//! `RAYON_NUM_THREADS=1/2/8` matrix checks each pin at all three thread
//! counts (including, at the large sizes, the parallel CSR bucketing path).

use gossip_net::{
    par, ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, LossModel, StragglerModel,
};
use rand::Rng;

/// SplitMix64 finalizer, re-stated here so the fingerprint is independent of
/// the crate's internals.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive fingerprint of a state vector.
fn fingerprint(states: &[u64]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (i, &s) in states.iter().enumerate() {
        h = mix64(h ^ s ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    format!("{h:016x}")
}

/// Order-sensitive message fold (any reordering or content change shows up).
fn fold_hash(state: u64, msg: u64) -> u64 {
    (state.rotate_left(7) ^ msg).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Compact fingerprint of the metrics counters, pinned alongside the states.
fn metrics_line(e: &Engine<u64>) -> String {
    let m = e.metrics();
    format!(
        "r{} pa{} psa{} f{} d{} b{}",
        m.rounds,
        m.pulls_attempted,
        m.pushes_attempted,
        m.failed_operations,
        m.messages_delivered,
        m.bits_delivered
    )
}

fn engine(n: usize, seed: u64, failure: FailureModel) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).failure(failure);
    let mut e = Engine::from_states((0..n as u64).map(|v| v.wrapping_mul(31)).collect(), config);
    e.set_threads(par::num_threads());
    e
}

fn pull_rounds(e: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        e.pull_round(
            |_, &s| s,
            |_, st, pulled| {
                if let Some(p) = pulled {
                    *st = fold_hash(*st, p);
                }
            },
        );
    }
}

fn push_rounds(e: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        e.push_round(
            |v, &s| if v % 5 == 0 { None } else { Some(s) },
            |_, st, msg| *st = fold_hash(*st, msg),
            |_, st, delivered| {
                if !delivered {
                    *st = st.wrapping_add(1);
                }
            },
        );
    }
}

fn push_pull_rounds(e: &mut Engine<u64>, rounds: usize) {
    for _ in 0..rounds {
        e.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
    }
}

#[test]
fn golden_pull() {
    let mut e = engine(512, 101, FailureModel::None);
    pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa0 f0 d4096 b262144");
    assert_eq!(fingerprint(e.states()), "ae3cc56cd1a65f40");
}

#[test]
fn golden_pull_with_failures() {
    let mut e = engine(512, 101, FailureModel::uniform(0.3).unwrap());
    pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa0 f1208 d2888 b184832");
    assert_eq!(fingerprint(e.states()), "5cc28a958ed5bb0b");
}

#[test]
fn golden_push() {
    let mut e = engine(512, 202, FailureModel::None);
    push_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), "r8 pa0 psa3272 f0 d3272 b209408");
    assert_eq!(fingerprint(e.states()), "70bd75821469e779");
}

#[test]
fn golden_push_with_failures() {
    let mut e = engine(512, 202, FailureModel::uniform(0.3).unwrap());
    push_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), "r8 pa0 psa3272 f1006 d2266 b145024");
    assert_eq!(fingerprint(e.states()), "b26c113c63bb08b6");
}

#[test]
fn golden_push_pull() {
    let mut e = engine(512, 303, FailureModel::None);
    push_pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa4096 f0 d8192 b524288");
    assert_eq!(fingerprint(e.states()), "db3b2d32aeb47638");
}

#[test]
fn golden_push_pull_with_failures() {
    let mut e = engine(512, 303, FailureModel::uniform(0.3).unwrap());
    push_pull_rounds(&mut e, 8);
    assert_eq!(metrics_line(&e), "r8 pa4096 psa4096 f1190 d5812 b371968");
    assert_eq!(fingerprint(e.states()), "a583e9ce52831840");
}

#[test]
fn golden_collect_samples() {
    let mut e = engine(512, 404, FailureModel::None);
    let samples = e.collect_samples(3, |_, &s| s);
    let mut h = 0u64;
    for bucket in &samples {
        h = mix64(h ^ 0x5eed);
        for &s in bucket {
            h = mix64(h ^ s);
        }
    }
    assert_eq!(metrics_line(&e), "r3 pa1536 psa0 f0 d1536 b98304");
    assert_eq!(format!("{h:016x}"), "72f9976bf7245804");
    // Sampling leaves the node states untouched.
    assert_eq!(fingerprint(e.states()), fingerprint(&initial_states(512)));
}

#[test]
fn golden_collect_samples_with_failures() {
    let mut e = engine(512, 404, FailureModel::uniform(0.4).unwrap());
    let samples = e.collect_samples(3, |_, &s| s);
    let mut h = 0u64;
    for bucket in &samples {
        h = mix64(h ^ 0x5eed);
        for &s in bucket {
            h = mix64(h ^ s);
        }
    }
    assert_eq!(metrics_line(&e), "r3 pa1536 psa0 f636 d900 b57600");
    assert_eq!(format!("{h:016x}"), "360c83eb4521da94");
}

fn initial_states(n: usize) -> Vec<u64> {
    (0..n as u64).map(|v| v.wrapping_mul(31)).collect()
}

/// The fault counters, pinned alongside the classic metrics line for the
/// faulted trajectory.
fn fault_metrics_line(e: &Engine<u64>) -> String {
    let m = e.metrics();
    format!(
        "c{} dr{} dl{}",
        m.crashed_operations, m.messages_dropped, m.messages_delayed
    )
}

/// The full fault plan of the faulted golden pin: churn with rejoin, message
/// loss, stragglers, and the Section 5 failure model all at once.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
        .with_loss(LossModel::uniform(0.15).unwrap())
        .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap())
        .with_failure(FailureModel::uniform(0.1).unwrap())
}

fn faulted_mixed(n: usize, seed: u64) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).fault(chaos_plan());
    let mut e = Engine::from_states(initial_states(n), config);
    e.set_threads(par::num_threads());
    for _ in 0..3 {
        pull_rounds(&mut e, 1);
        push_rounds(&mut e, 1);
        push_pull_rounds(&mut e, 1);
        let samples = e.collect_samples(2, |_, &s| s);
        e.local_step(|v, st, rng| {
            for &s in &samples[v] {
                *st = fold_hash(*st, s);
            }
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    e
}

#[test]
fn golden_faulted_mixed_sequence() {
    // One pin over all five primitives with the full fault plan active —
    // churn, loss, stragglers and failures together. This freezes the
    // fault-injection randomness contract: the per-contact coin streams,
    // the straggler buffering order, and the churn scan.
    let e = faulted_mixed(600, 909);
    assert_eq!(metrics_line(&e), "r15 pa5958 psa2664 f753 d5343 b341952");
    assert_eq!(fault_metrics_line(&e), "c1559 dr2212 dl472");
    assert_eq!(fingerprint(e.states()), "ed74a06557460d5c");
}

#[test]
fn golden_local_step() {
    let mut e = engine(512, 505, FailureModel::None);
    for _ in 0..4 {
        e.local_step(|v, st, rng| {
            *st = fold_hash(*st, rng.gen::<u64>() ^ v as u64);
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    assert_eq!(metrics_line(&e), "r0 pa0 psa0 f0 d0 b0");
    assert_eq!(fingerprint(e.states()), "c3d212c26e4f1768");
}

#[test]
fn golden_mixed_sequence() {
    // One pin over an interleaving of all five primitives, failure injection
    // on — the broadest single trajectory.
    let mut e = engine(600, 606, FailureModel::uniform(0.2).unwrap());
    for _ in 0..3 {
        pull_rounds(&mut e, 1);
        push_rounds(&mut e, 1);
        push_pull_rounds(&mut e, 1);
        let samples = e.collect_samples(2, |_, &s| s);
        e.local_step(|v, st, rng| {
            for &s in &samples[v] {
                *st = fold_hash(*st, s);
            }
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    assert_eq!(metrics_line(&e), "r15 pa7200 psa3240 f1686 d8410 b538240");
    assert_eq!(fingerprint(e.states()), "4d66d6a6035be06a");
}

#[test]
fn golden_large_n_covers_parallel_paths() {
    // Big enough that multi-thread runs of the CI matrix take the parallel
    // CSR bucketing and chunked round paths; the pins must match the
    // sequential values bit for bit.
    let mut e = engine(20_000, 707, FailureModel::None);
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    assert_eq!(metrics_line(&e), "r6 pa80000 psa72000 f0 d152000 b9728000");
    assert_eq!(fingerprint(e.states()), "dacf5252bb6fbfd3");
}

#[test]
fn golden_large_n_with_failures() {
    let mut e = engine(20_000, 808, FailureModel::uniform(0.25).unwrap());
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    assert_eq!(
        metrics_line(&e),
        "r6 pa80000 psa72000 f27942 d114162 b7306368"
    );
    assert_eq!(fingerprint(e.states()), "0c3a3c5e2e310ca3");
}

/// Prints the current values of every pin above. When a change legitimately
/// alters the randomness contract, regenerate with
///
/// ```text
/// cargo test -p gossip-net --test golden dump -- --ignored --nocapture
/// ```
///
/// and update the constants in the same commit.
#[test]
#[ignore = "generator for the pinned constants, not a check"]
fn dump_golden_values() {
    let scenario = |name: &str, e: &mut Engine<u64>| {
        println!(
            "{name}: metrics=\"{}\" fp=\"{}\"",
            metrics_line(e),
            fingerprint(e.states())
        );
    };
    let mut e = engine(512, 101, FailureModel::None);
    pull_rounds(&mut e, 8);
    scenario("pull", &mut e);
    let mut e = engine(512, 101, FailureModel::uniform(0.3).unwrap());
    pull_rounds(&mut e, 8);
    scenario("pull_failures", &mut e);
    let mut e = engine(512, 202, FailureModel::None);
    push_rounds(&mut e, 8);
    scenario("push", &mut e);
    let mut e = engine(512, 202, FailureModel::uniform(0.3).unwrap());
    push_rounds(&mut e, 8);
    scenario("push_failures", &mut e);
    let mut e = engine(512, 303, FailureModel::None);
    push_pull_rounds(&mut e, 8);
    scenario("push_pull", &mut e);
    let mut e = engine(512, 303, FailureModel::uniform(0.3).unwrap());
    push_pull_rounds(&mut e, 8);
    scenario("push_pull_failures", &mut e);
    for (name, fail) in [
        ("collect", FailureModel::None),
        ("collect_failures", FailureModel::uniform(0.4).unwrap()),
    ] {
        let mut e = engine(512, 404, fail);
        let samples = e.collect_samples(3, |_, &s| s);
        let mut h = 0u64;
        for bucket in &samples {
            h = mix64(h ^ 0x5eed);
            for &s in bucket {
                h = mix64(h ^ s);
            }
        }
        println!(
            "{name}: metrics=\"{}\" sample_fp=\"{h:016x}\"",
            metrics_line(&e)
        );
    }
    let mut e = engine(512, 505, FailureModel::None);
    for _ in 0..4 {
        e.local_step(|v, st, rng| {
            *st = fold_hash(*st, rng.gen::<u64>() ^ v as u64);
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    scenario("local_step", &mut e);
    let mut e = engine(600, 606, FailureModel::uniform(0.2).unwrap());
    for _ in 0..3 {
        pull_rounds(&mut e, 1);
        push_rounds(&mut e, 1);
        push_pull_rounds(&mut e, 1);
        let samples = e.collect_samples(2, |_, &s| s);
        e.local_step(|v, st, rng| {
            for &s in &samples[v] {
                *st = fold_hash(*st, s);
            }
            if rng.gen::<f64>() < 0.25 {
                *st = st.rotate_right(3);
            }
        });
    }
    scenario("mixed", &mut e);
    let e = faulted_mixed(600, 909);
    println!(
        "faulted_mixed: metrics=\"{}\" faults=\"{}\" fp=\"{}\"",
        metrics_line(&e),
        fault_metrics_line(&e),
        fingerprint(e.states())
    );
    let mut e = engine(20_000, 707, FailureModel::None);
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    scenario("large", &mut e);
    let mut e = engine(20_000, 808, FailureModel::uniform(0.25).unwrap());
    pull_rounds(&mut e, 2);
    push_rounds(&mut e, 2);
    push_pull_rounds(&mut e, 2);
    scenario("large_failures", &mut e);
}
