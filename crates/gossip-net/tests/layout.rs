//! Bit-identity of the PR 8 memory-layout machinery: the cache-blocked
//! back-buffer refresh, the batched target gather with software prefetch,
//! the flat column-major sample matrix, and the run-batched copy-on-write
//! commit are *mechanical* rewrites of the per-slot paths — for every block
//! size, prefetch distance, active-set shape, and failure model they must
//! produce exactly the states, metrics, and sample values of the reference
//! code (kept in-tree as [`Engine::pull_round_reference`] and behind
//! `set_batch_commit(false)`).
//!
//! Property tests draw those knobs arbitrarily (proptest); every test runs
//! at `par::num_threads()` workers, so CI's 1/2/8-thread matrix exercises
//! the blocked paths at each thread count.

use gossip_net::{par, soa, ActiveSet, Engine, EngineConfig, FailureModel, Metrics};
use proptest::prelude::*;

fn fold_hash(state: u64, msg: u64) -> u64 {
    (state.rotate_left(7) ^ msg).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn engine(n: usize, seed: u64, failure: FailureModel) -> Engine<u64> {
    let config = EngineConfig::with_seed(seed).failure(failure);
    let mut e = Engine::from_states((0..n as u64).map(|v| v.wrapping_mul(31)).collect(), config);
    e.set_threads(par::num_threads());
    e
}

fn failure_for(p: f64) -> FailureModel {
    if p <= 0.0 {
        FailureModel::None
    } else {
        FailureModel::uniform(p).expect("valid probability")
    }
}

fn pull_rounds(e: &mut Engine<u64>, rounds: usize, reference: bool) -> (Vec<u64>, Metrics) {
    let serve = |_: usize, &s: &u64| s;
    let apply = |_: usize, st: &mut u64, pulled: Option<u64>| {
        if let Some(p) = pulled {
            *st = fold_hash(*st, p);
        }
    };
    for _ in 0..rounds {
        if reference {
            e.pull_round_reference(serve, apply);
        } else {
            e.pull_round(serve, apply);
        }
    }
    (e.states().to_vec(), e.metrics())
}

proptest! {
    /// The blocked + prefetched pull round is bit-identical to the verbatim
    /// pre-PR-8 loop for arbitrary sizes, block sizes, prefetch distances,
    /// and failure rates.
    fn blocked_pull_matches_reference(
        size in (16usize..600, 0u64..1_000_000),
        knobs in (1usize..512, 0usize..64),
        fail_p in proptest::f64_range(0.0, 0.4),
    ) {
        let (n, seed) = size;
        let (block, dist) = knobs;
        let reference = pull_rounds(&mut engine(n, seed, failure_for(fail_p)), 4, true);
        let mut e = engine(n, seed, failure_for(fail_p));
        e.set_copy_block(block).set_prefetch_dist(dist);
        let blocked = pull_rounds(&mut e, 4, false);
        prop_assert_eq!(reference, blocked);
    }

    /// Push and push–pull rounds (whose pass 2 now refreshes the back buffer
    /// in blocks and prefetches the CSR sender gather) are invariant under
    /// the layout knobs.
    fn dense_push_rounds_are_knob_invariant(
        size in (16usize..600, 0u64..1_000_000),
        knobs in (1usize..512, 0usize..64),
        fail_p in proptest::f64_range(0.0, 0.4),
    ) {
        let (n, seed) = size;
        let run = |block_dist: Option<(usize, usize)>| {
            let mut e = engine(n, seed, failure_for(fail_p));
            if let Some((b, d)) = block_dist {
                e.set_copy_block(b).set_prefetch_dist(d);
            }
            for _ in 0..3 {
                e.push_round(
                    |v, &s| if v % 3 == 0 { None } else { Some(s) },
                    |_, st, msg| *st = fold_hash(*st, msg),
                    |_, st, delivered| {
                        if !delivered {
                            *st = st.wrapping_add(1);
                        }
                    },
                );
                e.push_pull_round(|_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
            }
            (e.states().to_vec(), e.metrics())
        };
        prop_assert_eq!(run(None), run(Some(knobs)));
    }

    /// The run-batched copy-on-write commit equals the per-slot swap for
    /// arbitrary active-set shapes (density sweeps from a handful of nodes to
    /// nearly all of them, producing every run structure from singletons to
    /// long dense stretches).
    fn batched_commit_matches_per_slot(
        size in (16usize..600, 0u64..1_000_000),
        shape in (1u64..100, 0usize..64),
        fail_p in proptest::f64_range(0.0, 0.4),
    ) {
        let (n, seed) = size;
        let (density, dist) = shape;
        let run = |batch: bool| {
            let mut e = engine(n, seed, failure_for(fail_p));
            e.set_batch_commit(batch).set_prefetch_dist(dist);
            let active = ActiveSet::from_fn(n, |v| {
                (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed) % 100 < density
            });
            for _ in 0..3 {
                e.pull_round_on(
                    &active,
                    |_, &s| s,
                    |_, st, pulled| {
                        if let Some(p) = pulled {
                            *st = fold_hash(*st, p);
                        }
                    },
                );
                e.push_round_on(
                    &active,
                    |_, &s| Some(s),
                    |_, st, msg| *st = fold_hash(*st, msg),
                    |_, _, _| {},
                );
                e.push_pull_round_on(&active, |_, &s| s, |_, st, msg| *st = fold_hash(*st, msg));
            }
            (e.states().to_vec(), e.metrics())
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// `swap_runs` itself, against the per-slot reference, for arbitrary
    /// sorted id sets over an arbitrary chunk base.
    fn swap_runs_matches_per_slot_swap(
        shape in (1usize..200, 0usize..50),
        picks in proptest::collection::vec(0usize..200, 0..100),
    ) {
        let (len, base) = shape;
        let mut ids: Vec<u32> = picks.into_iter().filter(|&i| i < len).map(|i| (i + base) as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut a: Vec<u64> = (0..len as u64).collect();
        let mut b: Vec<u64> = (0..len as u64).map(|v| v.wrapping_mul(97).wrapping_add(13)).collect();
        let (mut a_ref, mut b_ref) = (a.clone(), b.clone());
        for &id in &ids {
            let i = id as usize - base;
            std::mem::swap(&mut a_ref[i], &mut b_ref[i]);
        }
        soa::swap_runs(&ids, base, &mut a, &mut b);
        prop_assert_eq!(a, a_ref);
        prop_assert_eq!(b, b_ref);
    }

    /// The flat column-major sample matrix holds exactly the samples of the
    /// nested `collect_samples` layout — same values, same round order, same
    /// metrics — under arbitrary failure rates.
    fn flat_sample_matrix_matches_nested_collection(
        size in (16usize..600, 0u64..1_000_000),
        k in 1usize..6,
        fail_p in proptest::f64_range(0.0, 0.4),
    ) {
        let (n, seed) = size;
        let mut nested_engine = engine(n, seed, failure_for(fail_p));
        let nested = nested_engine.collect_samples(k, |_, &s| s);
        let mut flat_engine = engine(n, seed, failure_for(fail_p));
        let flat = flat_engine.collect_samples_flat(k, |_, &s| s);
        prop_assert_eq!(nested_engine.metrics(), flat_engine.metrics());
        for (v, nested_row) in nested.iter().enumerate() {
            let row: Vec<u64> = flat.row(v).copied().collect();
            prop_assert_eq!(nested_row, &row, "node {}", v);
            prop_assert_eq!(flat.count(v), nested_row.len());
        }
    }
}

/// The block loop's edge cases — block ≥ chunk, block = 1, and a block that
/// straddles the parallel chunk boundary — pinned explicitly on top of the
/// random sweep.
#[test]
fn pull_block_edge_cases_match_reference() {
    for block in [1, 7, 1 << 14, usize::MAX / 2] {
        let reference = pull_rounds(&mut engine(300, 5, FailureModel::None), 4, true);
        let mut e = engine(300, 5, FailureModel::None);
        e.set_copy_block(block);
        let blocked = pull_rounds(&mut e, 4, false);
        assert_eq!(reference, blocked, "block = {block}");
    }
}

/// A prefetch distance beyond every batch and pair list is a no-op hint, not
/// an out-of-bounds access.
#[test]
fn oversized_prefetch_distance_is_harmless() {
    let reference = pull_rounds(&mut engine(200, 9, FailureModel::None), 4, true);
    let mut e = engine(200, 9, FailureModel::None);
    e.set_prefetch_dist(1 << 20);
    let far = pull_rounds(&mut e, 4, false);
    assert_eq!(reference, far);
}
