//! Regenerates (or checks) the pinned golden fingerprints in
//! `tests/data/goldens.txt`, which back both the dense pins of
//! `tests/golden.rs` and the sparse full-set equivalence pins of
//! `tests/sparse.rs`.
//!
//! ```text
//! cargo run -p gossip-net --example regen_goldens            # check: exit 1 on drift
//! cargo run -p gossip-net --example regen_goldens -- --write # rewrite the file
//! ```
//!
//! Pins must only be regenerated deliberately — in the same commit as the
//! change that alters the randomness contract, with a CHANGES.md note.
//! Before writing, the tool re-derives every sparse full-set trajectory and
//! refuses to proceed if it diverges from the dense one, so a regeneration
//! can never pin a dense/sparse disagreement.

#[path = "../tests/support/goldens.rs"]
mod support;

use gossip_net::{ActiveSet, FailureModel};
use std::process::ExitCode;

const PIN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/goldens.txt");

const HEADER: &str = "\
# Pinned golden fingerprints for the gossip-net engine.
#
# Consumed by tests/golden.rs (dense engine) and tests/sparse.rs (sparse
# full-set equivalence pins). Regenerate deliberately — in the same commit as
# the change that alters the randomness contract, with a CHANGES.md note —
# via:
#
#     cargo run -p gossip-net --example regen_goldens -- --write
#
# Running the example without --write recomputes every value, prints any
# drift, and exits non-zero; CI treats that as a failed check.
";

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write");

    verify_sparse_full_set_equivalence();

    let computed = support::compute_all();
    let mut rendered = String::from(HEADER);
    for (k, v) in &computed {
        rendered.push_str(k);
        rendered.push('=');
        rendered.push_str(v);
        rendered.push('\n');
    }

    let on_disk = std::fs::read_to_string(PIN_PATH).unwrap_or_default();
    let mut drift = 0;
    for (k, v) in &computed {
        match support::lookup(&on_disk, k) {
            Some(pinned) if pinned == v => {}
            Some(pinned) => {
                drift += 1;
                println!("DRIFT  {k}\n  pinned:   {pinned}\n  computed: {v}");
            }
            None => {
                drift += 1;
                println!("MISSING {k}\n  computed: {v}");
            }
        }
    }
    for key in keys_of(&on_disk) {
        if !computed.iter().any(|(k, _)| *k == key) {
            drift += 1;
            println!("STALE  {key} (pinned but no scenario computes it)");
        }
    }

    if drift == 0 && on_disk == rendered {
        println!("goldens: {} pins, no drift", computed.len());
        return ExitCode::SUCCESS;
    }

    if write {
        std::fs::write(PIN_PATH, &rendered).expect("writing tests/data/goldens.txt");
        println!(
            "goldens: rewrote {} pins ({} changed) at {PIN_PATH}",
            computed.len(),
            drift
        );
        println!("note the regeneration in CHANGES.md and commit the file with the change.");
        ExitCode::SUCCESS
    } else if drift == 0 {
        // Values agree but formatting/comments differ from the canonical
        // rendering; still a failure so the file stays canonical.
        println!(
            "goldens: values match but the file is not canonically formatted; rerun with --write"
        );
        ExitCode::FAILURE
    } else {
        println!("goldens: {drift} pins drifted; rerun with --write to regenerate");
        ExitCode::FAILURE
    }
}

fn keys_of(file: &str) -> Vec<&str> {
    file.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_once('=').map(|(k, _)| k.trim()))
        .collect()
}

/// Re-derives every scenario through the sparse `*_on` primitives over the
/// full active set and asserts bit-identity with the dense run, mirroring the
/// equivalence pins of `tests/sparse.rs`. A regeneration that would break
/// sparse/dense agreement aborts here instead of writing a bad pin file.
fn verify_sparse_full_set_equivalence() {
    let check = |name: &str, dense: &gossip_net::Engine<u64>, sparse: &gossip_net::Engine<u64>| {
        assert_eq!(
            (
                support::metrics_line(dense),
                support::fingerprint(dense.states())
            ),
            (
                support::metrics_line(sparse),
                support::fingerprint(sparse.states())
            ),
            "sparse full-set trajectory diverged from dense for scenario {name:?}",
        );
    };

    for (name, seed, failure) in [
        ("pull", 101, FailureModel::None),
        ("pull_failures", 101, FailureModel::uniform(0.3).unwrap()),
    ] {
        let mut d = support::engine(512, seed, failure.clone());
        support::pull_rounds(&mut d, 8);
        let mut s = support::engine(512, seed, failure);
        support::sparse_pull_rounds(&mut s, &ActiveSet::full(512), 8);
        check(name, &d, &s);
    }
    for (name, seed, failure) in [
        ("push", 202, FailureModel::None),
        ("push_failures", 202, FailureModel::uniform(0.3).unwrap()),
    ] {
        let mut d = support::engine(512, seed, failure.clone());
        support::push_rounds(&mut d, 8);
        let mut s = support::engine(512, seed, failure);
        support::sparse_push_rounds(&mut s, &ActiveSet::full(512), 8);
        check(name, &d, &s);
    }
    for (name, seed, failure) in [
        ("push_pull", 303, FailureModel::None),
        (
            "push_pull_failures",
            303,
            FailureModel::uniform(0.3).unwrap(),
        ),
    ] {
        let mut d = support::engine(512, seed, failure.clone());
        support::push_pull_rounds(&mut d, 8);
        let mut s = support::engine(512, seed, failure);
        support::sparse_push_pull_rounds(&mut s, &ActiveSet::full(512), 8);
        check(name, &d, &s);
    }
    for (name, seed, failure) in [
        ("collect", 404, FailureModel::None),
        ("collect_failures", 404, FailureModel::uniform(0.4).unwrap()),
    ] {
        let mut d = support::engine(512, seed, failure.clone());
        let ds = d.collect_samples(3, |_, &s| s);
        let mut s = support::engine(512, seed, failure);
        let ss = s.collect_samples_on(&ActiveSet::full(512), 3, |_, &v| v);
        assert_eq!(
            support::sample_fp(&ds),
            support::sample_fp(&ss),
            "sparse full-set samples diverged from dense for scenario {name:?}",
        );
        check(name, &d, &s);
    }
    {
        let mut d = support::engine(20_000, 707, FailureModel::None);
        support::pull_rounds(&mut d, 2);
        support::push_rounds(&mut d, 2);
        support::push_pull_rounds(&mut d, 2);
        let mut s = support::engine(20_000, 707, FailureModel::None);
        let full = ActiveSet::full(20_000);
        support::sparse_pull_rounds(&mut s, &full, 2);
        support::sparse_push_rounds(&mut s, &full, 2);
        support::sparse_push_pull_rounds(&mut s, &full, 2);
        check("large", &d, &s);
    }
    println!("sparse full-set trajectories match dense on all scenarios");
}
