//! Bench smoke comparison: flag quick-mode medians that drift outside the
//! noise band of the committed `BENCH_engine.json`.
//!
//! CI's bench smoke step snapshots the committed report, re-runs the benches
//! in quick mode, and then calls [`compare`] (via the `bench_smoke` binary)
//! on the two files. Rows are matched by their **identity keys** (`n`,
//! `threads`, `active_frac`, `change` — whichever are present); within a
//! matched pair, every `rounds_per_sec*` measurement is compared against the
//! committed median ± 3·(committed std) band, using the paired `std*` key
//! with the same suffix. Anything outside the band becomes a **warning** —
//! never a failure, because quick mode trades stability for runtime and a
//! CI container's noise floor is unknowable — so a silent perf regression at
//! least leaves a trace in the job log at PR time.
//!
//! The parser is deliberately matched to [`crate::report_json`]'s fixed
//! row-per-line format rather than being a general JSON reader: one object
//! per line, `"key": value` pairs, flat scalars only.

use std::collections::BTreeMap;

/// Keys that identify a row within its section rather than measuring it.
const IDENTITY_KEYS: &[&str] = &["n", "threads", "active_frac", "change"];

/// How many committed standard deviations of drift count as noise.
pub const NOISE_SIGMAS: f64 = 3.0;

/// One parsed report row: the section it came from, its identity-key values
/// (in key order), and its numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Section name (`results`, `active_set`, `layout`, …).
    pub section: String,
    /// Identity, e.g. `n=1000000 threads=4`.
    pub identity: String,
    /// All numeric fields of the row, by key.
    pub values: BTreeMap<String, f64>,
}

/// Parses the fixed `report_json` format into rows, tolerating unknown
/// sections. Header keys (`"bench"`, `"primitive"`) and non-numeric fields
/// are ignored.
pub fn parse_rows(report: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut section: Option<String> = None;
    for line in report.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix('"') {
            // A section opener looks like `"results": [`.
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim_start().starts_with(':') && tail.trim_end().ends_with('[') {
                    section = Some(name.to_string());
                    continue;
                }
            }
        }
        if trimmed.starts_with(']') {
            section = None;
            continue;
        }
        let Some(sec) = &section else { continue };
        if !trimmed.starts_with('{') {
            continue;
        }
        let body = trimmed
            .trim_start_matches('{')
            .trim_end_matches(',')
            .trim_end_matches('}');
        let mut values = BTreeMap::new();
        let mut identity_parts = Vec::new();
        for field in body.split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            if IDENTITY_KEYS.contains(&key.as_str()) {
                identity_parts.push(format!("{key}={}", value.trim_matches('"')));
            }
            if let Ok(num) = value.parse::<f64>() {
                values.insert(key, num);
            }
        }
        rows.push(Row {
            section: sec.clone(),
            identity: identity_parts.join(" "),
            values,
        });
    }
    rows
}

/// Compares a freshly generated report against the committed one and returns
/// one human-readable warning per median outside the committed noise band
/// (empty = all within noise). Rows present on only one side are skipped —
/// quick mode legitimately produces fewer sections.
pub fn compare(committed: &str, fresh: &str) -> Vec<String> {
    let committed_rows = parse_rows(committed);
    let fresh_rows = parse_rows(fresh);
    let mut warnings = Vec::new();
    for fresh_row in &fresh_rows {
        let Some(base) = committed_rows
            .iter()
            .find(|r| r.section == fresh_row.section && r.identity == fresh_row.identity)
        else {
            continue;
        };
        for (key, &fresh_value) in &fresh_row.values {
            let Some(suffix) = key.strip_prefix("rounds_per_sec") else {
                continue;
            };
            let Some(&committed_value) = base.values.get(key) else {
                continue;
            };
            let std_key = format!("std{suffix}");
            let Some(&std) = base.values.get(&std_key) else {
                continue;
            };
            let band = NOISE_SIGMAS * std;
            let drift = fresh_value - committed_value;
            if drift.abs() > band {
                warnings.push(format!(
                    "[{}] {}: {key} = {fresh_value:.3} drifted {drift:+.3} from committed \
                     {committed_value:.3} (band ±{band:.3} = {NOISE_SIGMAS}·std {std:.3})",
                    fresh_row.section, fresh_row.identity
                ));
            }
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMMITTED: &str = r#"{
  "bench": "engine",
  "primitive": "pull_round(max-spread, u64)",
  "results": [
    {"n": 1000, "threads": 4, "rounds_per_sec_1t": 1000.0, "std_1t": 10.0, "rounds_per_sec_mt": 500.0, "std_mt": 50.0},
    {"n": 4000, "threads": 4, "rounds_per_sec_1t": 200.0, "std_1t": 5.0, "rounds_per_sec_mt": 100.0, "std_mt": 5.0}
  ],
  "layout": [
    {"change": "pull_blocked_prefetch", "n": 1000, "threads": 1, "rounds_per_sec_old": 70.0, "std_old": 2.0, "rounds_per_sec_new": 100.0, "std_new": 3.0, "speedup": 1.429}
  ]
}
"#;

    #[test]
    fn parses_sections_identities_and_numbers() {
        let rows = parse_rows(COMMITTED);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].section, "results");
        assert_eq!(rows[0].identity, "n=1000 threads=4");
        assert_eq!(rows[0].values["rounds_per_sec_1t"], 1000.0);
        assert_eq!(rows[2].section, "layout");
        assert_eq!(
            rows[2].identity,
            "change=pull_blocked_prefetch n=1000 threads=1"
        );
        assert_eq!(rows[2].values["std_new"], 3.0);
    }

    #[test]
    fn within_band_produces_no_warnings() {
        // +3·std exactly is the band edge — still inside.
        let fresh = COMMITTED.replace(
            "\"rounds_per_sec_1t\": 1000.0",
            "\"rounds_per_sec_1t\": 1030.0",
        );
        assert_eq!(compare(COMMITTED, &fresh), Vec::<String>::new());
    }

    #[test]
    fn drift_beyond_band_warns_with_the_pairing_std() {
        let fresh = COMMITTED
            .replace(
                "\"rounds_per_sec_mt\": 500.0",
                "\"rounds_per_sec_mt\": 300.0",
            )
            .replace(
                "\"rounds_per_sec_new\": 100.0",
                "\"rounds_per_sec_new\": 80.0",
            );
        let warnings = compare(COMMITTED, &fresh);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("rounds_per_sec_mt = 300.000"));
        assert!(warnings[0].contains("band ±150.000"));
        assert!(warnings[1].contains("[layout] change=pull_blocked_prefetch"));
        assert!(warnings[1].contains("band ±9.000"));
    }

    #[test]
    fn unmatched_rows_and_sections_are_skipped() {
        // Fresh run covering only one committed row, plus a brand-new row.
        let fresh = r#"{
  "results": [
    {"n": 1000, "threads": 4, "rounds_per_sec_1t": 995.0, "std_1t": 12.0},
    {"n": 999999, "threads": 4, "rounds_per_sec_1t": 1.0, "std_1t": 0.1}
  ]
}
"#;
        assert!(compare(COMMITTED, fresh).is_empty());
    }

    #[test]
    fn measurements_without_committed_std_are_skipped() {
        let committed = r#"{
  "results": [
    {"n": 7, "rounds_per_sec_1t": 10.0}
  ]
}
"#;
        let fresh = committed.replace("10.0", "99.0");
        assert!(compare(committed, &fresh).is_empty());
    }
}
