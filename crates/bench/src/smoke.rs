//! Bench smoke comparison: flag quick-mode medians that drift outside the
//! noise band of the committed bench reports (`BENCH_engine.json`,
//! `BENCH_service.json`, `BENCH_robustness.json`).
//!
//! CI's bench smoke step snapshots the committed reports, re-runs the
//! benches in quick mode, and then calls [`compare`] (via the `bench_smoke`
//! binary) on each committed/fresh pair. Rows are matched by their
//! **identity keys** (`n`, `threads`, `kind`, `fault`, … — whichever are
//! present); within a matched pair a measurement `K` is compared when the
//! committed row carries a noise estimate for it, under either naming
//! convention:
//!
//! - the engine report's suffix style, `rounds_per_sec_1t` ↔ `std_1t`;
//! - the generic style used elsewhere, `within_eps` ↔ `std_within_eps`.
//!
//! The band is the committed median ± [`NOISE_SIGMAS`]·(committed std). A
//! handful of keys ([`DETERMINISTIC_KEYS`]) are *derived counts* — round
//! totals, amortisation ratios, per-round byte footprints — that are exact
//! functions of the seed; those are compared exactly even without a
//! committed std, because any drift there is a behavioural change, not
//! noise. Wall-clock keys with neither a std pair nor a determinism
//! guarantee (`qps`, `speedup`, `epoch_secs`, …) are skipped: with no
//! committed noise estimate there is no honest band to test against.
//!
//! Anything outside its band becomes a **warning** — never a failure,
//! because quick mode trades stability for runtime and a CI container's
//! noise floor is unknowable — so a silent regression at least leaves a
//! trace in the job log at PR time.
//!
//! The parser is deliberately matched to [`crate::report_json`]'s fixed
//! row-per-line format rather than being a general JSON reader: one object
//! per line, `"key": value` pairs, flat scalars only.

use std::collections::BTreeMap;

/// Keys that identify a row within its section rather than measuring it.
/// Spans all three reports: engine rows (`n`/`threads`/`active_frac`/
/// `change`), service rows (`kind`/`q`/`dirty_fraction`/`perturbation`) and
/// robustness rows (in-row `section` plus `fault`/`intensity` for the sweep,
/// `mode`/`mu` for the schedule comparison).
const IDENTITY_KEYS: &[&str] = &[
    "n",
    "threads",
    "active_frac",
    "change",
    "kind",
    "q",
    "dirty_fraction",
    "perturbation",
    "section",
    "fault",
    "intensity",
    "mode",
    "mu",
];

/// Measurements that are deterministic functions of the seed (round counts
/// and quantities derived from them). Compared exactly when the committed
/// row has no std pair for them — drift here means the algorithm's
/// trajectory changed, not that the machine was noisy.
const DETERMINISTIC_KEYS: &[&str] = &[
    "rounds",
    "seq_rounds",
    "solo_rounds_total",
    "dirty_nodes",
    "amortisation",
    "bytes_per_node_round",
    "dispatches_loop",
    "dispatches_program",
];

/// How many committed standard deviations of drift count as noise.
pub const NOISE_SIGMAS: f64 = 3.0;

/// One parsed report row: the section it came from, its identity-key values
/// (in key order), and its numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Section name (`results`, `active_set`, `layout`, …).
    pub section: String,
    /// Identity, e.g. `n=1000000 threads=4`.
    pub identity: String,
    /// All numeric fields of the row, by key.
    pub values: BTreeMap<String, f64>,
}

/// Parses the fixed `report_json` format into rows, tolerating unknown
/// sections. Header keys (`"bench"`, `"primitive"`) and non-numeric fields
/// are ignored.
pub fn parse_rows(report: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut section: Option<String> = None;
    for line in report.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix('"') {
            // A section opener looks like `"results": [`.
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim_start().starts_with(':') && tail.trim_end().ends_with('[') {
                    section = Some(name.to_string());
                    continue;
                }
            }
        }
        if trimmed.starts_with(']') {
            section = None;
            continue;
        }
        let Some(sec) = &section else { continue };
        if !trimmed.starts_with('{') {
            continue;
        }
        let body = trimmed
            .trim_start_matches('{')
            .trim_end_matches(',')
            .trim_end_matches('}');
        let mut values = BTreeMap::new();
        let mut identity_parts = Vec::new();
        for field in body.split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            if IDENTITY_KEYS.contains(&key.as_str()) {
                identity_parts.push(format!("{key}={}", value.trim_matches('"')));
            }
            if let Ok(num) = value.parse::<f64>() {
                values.insert(key, num);
            }
        }
        rows.push(Row {
            section: sec.clone(),
            identity: identity_parts.join(" "),
            values,
        });
    }
    rows
}

/// Compares a freshly generated report against the committed one and returns
/// one human-readable warning per median outside the committed noise band
/// (empty = all within noise). Rows present on only one side are skipped —
/// quick mode legitimately produces fewer sections.
pub fn compare(committed: &str, fresh: &str) -> Vec<String> {
    let committed_rows = parse_rows(committed);
    let fresh_rows = parse_rows(fresh);
    let mut warnings = Vec::new();
    for fresh_row in &fresh_rows {
        let Some(base) = committed_rows
            .iter()
            .find(|r| r.section == fresh_row.section && r.identity == fresh_row.identity)
        else {
            continue;
        };
        for (key, &fresh_value) in &fresh_row.values {
            if key.starts_with("std") || IDENTITY_KEYS.contains(&key.as_str()) {
                continue;
            }
            let Some(&committed_value) = base.values.get(key) else {
                continue;
            };
            match committed_std(base, key) {
                Some(std) => {
                    let band = NOISE_SIGMAS * std;
                    let drift = fresh_value - committed_value;
                    if drift.abs() > band {
                        warnings.push(format!(
                            "[{}] {}: {key} = {fresh_value:.3} drifted {drift:+.3} from committed \
                             {committed_value:.3} (band ±{band:.3} = {NOISE_SIGMAS}·std {std:.3})",
                            fresh_row.section, fresh_row.identity
                        ));
                    }
                }
                None if DETERMINISTIC_KEYS.contains(&key.as_str())
                    && fresh_value != committed_value =>
                {
                    warnings.push(format!(
                        "[{}] {}: {key} = {fresh_value:.3} differs from committed \
                         {committed_value:.3} (deterministic count — expected exact match)",
                        fresh_row.section, fresh_row.identity
                    ));
                }
                // Wall-clock measurement with no committed noise estimate:
                // nothing honest to compare against.
                None => {}
            }
        }
    }
    warnings
}

/// Looks up the committed noise estimate for measurement `key`, accepting
/// both std-naming conventions: the engine report's suffix style
/// (`rounds_per_sec_1t` ↔ `std_1t`) and the generic `K` ↔ `std_K` style
/// used by the robustness report.
fn committed_std(row: &Row, key: &str) -> Option<f64> {
    if let Some(suffix) = key.strip_prefix("rounds_per_sec") {
        if let Some(&std) = row.values.get(&format!("std{suffix}")) {
            return Some(std);
        }
    }
    row.values.get(&format!("std_{key}")).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMMITTED: &str = r#"{
  "bench": "engine",
  "primitive": "pull_round(max-spread, u64)",
  "results": [
    {"n": 1000, "threads": 4, "rounds_per_sec_1t": 1000.0, "std_1t": 10.0, "rounds_per_sec_mt": 500.0, "std_mt": 50.0},
    {"n": 4000, "threads": 4, "rounds_per_sec_1t": 200.0, "std_1t": 5.0, "rounds_per_sec_mt": 100.0, "std_mt": 5.0}
  ],
  "layout": [
    {"change": "pull_blocked_prefetch", "n": 1000, "threads": 1, "rounds_per_sec_old": 70.0, "std_old": 2.0, "rounds_per_sec_new": 100.0, "std_new": 3.0, "speedup": 1.429}
  ]
}
"#;

    #[test]
    fn parses_sections_identities_and_numbers() {
        let rows = parse_rows(COMMITTED);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].section, "results");
        assert_eq!(rows[0].identity, "n=1000 threads=4");
        assert_eq!(rows[0].values["rounds_per_sec_1t"], 1000.0);
        assert_eq!(rows[2].section, "layout");
        assert_eq!(
            rows[2].identity,
            "change=pull_blocked_prefetch n=1000 threads=1"
        );
        assert_eq!(rows[2].values["std_new"], 3.0);
    }

    #[test]
    fn within_band_produces_no_warnings() {
        // +3·std exactly is the band edge — still inside.
        let fresh = COMMITTED.replace(
            "\"rounds_per_sec_1t\": 1000.0",
            "\"rounds_per_sec_1t\": 1030.0",
        );
        assert_eq!(compare(COMMITTED, &fresh), Vec::<String>::new());
    }

    #[test]
    fn drift_beyond_band_warns_with_the_pairing_std() {
        let fresh = COMMITTED
            .replace(
                "\"rounds_per_sec_mt\": 500.0",
                "\"rounds_per_sec_mt\": 300.0",
            )
            .replace(
                "\"rounds_per_sec_new\": 100.0",
                "\"rounds_per_sec_new\": 80.0",
            );
        let warnings = compare(COMMITTED, &fresh);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("rounds_per_sec_mt = 300.000"));
        assert!(warnings[0].contains("band ±150.000"));
        assert!(warnings[1].contains("[layout] change=pull_blocked_prefetch"));
        assert!(warnings[1].contains("band ±9.000"));
    }

    #[test]
    fn unmatched_rows_and_sections_are_skipped() {
        // Fresh run covering only one committed row, plus a brand-new row.
        let fresh = r#"{
  "results": [
    {"n": 1000, "threads": 4, "rounds_per_sec_1t": 995.0, "std_1t": 12.0},
    {"n": 999999, "threads": 4, "rounds_per_sec_1t": 1.0, "std_1t": 0.1}
  ]
}
"#;
        assert!(compare(COMMITTED, fresh).is_empty());
    }

    #[test]
    fn measurements_without_committed_std_are_skipped() {
        let committed = r#"{
  "results": [
    {"n": 7, "rounds_per_sec_1t": 10.0}
  ]
}
"#;
        let fresh = committed.replace("10.0", "99.0");
        assert!(compare(committed, &fresh).is_empty());
    }

    #[test]
    fn robustness_rows_pair_measurements_with_generic_std_keys() {
        // Robustness rows use the `K` ↔ `std_K` convention and are keyed by
        // the in-row `section` plus fault/intensity.
        let committed = r#"{
  "results": [
    {"section": "sweep", "fault": "loss", "intensity": 0.2, "n": 20000, "within_eps": 1.0, "std_within_eps": 0.01, "answered": 1.0, "std_answered": 0.0, "rounds": 155.0, "std_rounds": 2.0},
    {"section": "schedule", "mode": "adaptive", "mu": 0.3, "n": 20000, "rounds": 189.0, "std_rounds": 0.0}
  ]
}
"#;
        let fresh = committed
            .replace("\"within_eps\": 1.0,", "\"within_eps\": 0.8,")
            .replace("\"rounds\": 155.0,", "\"rounds\": 162.0,")
            .replace("\"rounds\": 189.0,", "\"rounds\": 190.0,");
        let warnings = compare(committed, &fresh);
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        assert!(warnings[0].contains("[results] section=sweep fault=loss intensity=0.2 n=20000"));
        assert!(warnings[0].contains("rounds = 162.000"));
        assert!(warnings[0].contains("band ±6.000"));
        assert!(warnings[1].contains("within_eps = 0.800"));
        // The zero-std schedule row treats any round drift as real.
        assert!(warnings[2].contains("section=schedule mode=adaptive mu=0.3"));
        assert!(warnings[2].contains("band ±0.000"));
    }

    #[test]
    fn deterministic_service_counters_must_match_exactly() {
        let committed = r#"{
  "results": [
    {"kind": "batch", "n": 10000, "q": 8, "rounds": 49, "solo_rounds_total": 380, "amortisation": 7.755, "qps": 107.822, "epoch_secs": 0.074}
  ]
}
"#;
        // Wall-clock keys (`qps`) are free to move without a committed noise
        // estimate; the deterministic round count is not.
        let fresh = committed
            .replace("107.822", "3.001")
            .replace("\"rounds\": 49", "\"rounds\": 53");
        let warnings = compare(committed, &fresh);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("[results] kind=batch n=10000 q=8"));
        assert!(warnings[0].contains("rounds = 53.000"));
        assert!(warnings[0].contains("deterministic count"));
    }
}
