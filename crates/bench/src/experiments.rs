//! Experiment drivers E1–E10 (see DESIGN.md §3 and EXPERIMENTS.md).

use analysis::{run_trials, RankOracle, Summary, Table, TrialSpec, Workload};
use baselines::{
    compactor, doubling, kdg_selection, median_rule, push_sum, sampling, KdgSelectionConfig,
    MedianRuleConfig, PushSumConfig,
};
use gossip_net::{EngineConfig, FailureModel};
use quantile_gossip::{
    approx, exact, own_rank, robust, NarrowingConfig, OwnRankConfig, RobustConfig, TournamentConfig,
};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes and few trials — used by CI-style runs and the benches.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn trials(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 8,
        }
    }
}

fn cfg(seed: u64) -> EngineConfig {
    EngineConfig::with_seed(seed)
}

fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// E1 — Theorem 1.1: exact quantile rounds, ours vs the KDG03 baseline.
pub fn e1_exact_vs_kdg(scale: Scale, master_seed: u64) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[1 << 10, 1 << 12, 1 << 14],
        Scale::Full => &[1 << 12, 1 << 14, 1 << 16, 1 << 18],
    };
    let mut table = Table::new(
        "E1  Exact phi-quantile: rounds vs n (ours, Theorem 1.1) vs KDG03 O(log^2 n)",
        &[
            "n",
            "phi",
            "ours rounds (mean)",
            "KDG03 rounds (mean)",
            "speedup",
            "both exact",
        ],
    );
    for &n in sizes {
        for &phi in &[0.5f64, 0.9] {
            let spec = TrialSpec::new(master_seed ^ (n as u64) ^ phi.to_bits(), scale.trials());
            let rows = run_trials(&spec, |_, seed| {
                let values = Workload::UniformDistinct.generate(n, seed);
                let oracle = RankOracle::new(&values);
                let truth = oracle.quantile(phi);
                let ours =
                    exact::exact_quantile(&values, phi, &NarrowingConfig::default(), cfg(seed ^ 1))
                        .expect("exact");
                let kdg = kdg_selection::exact_quantile(
                    &values,
                    phi,
                    &KdgSelectionConfig::default(),
                    cfg(seed ^ 2),
                )
                .expect("kdg");
                (
                    ours.rounds,
                    kdg.rounds,
                    ours.answer == truth && kdg.answer == truth,
                )
            });
            let ours = Summary::of_u64(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
            let kdg = Summary::of_u64(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
            let all_exact = rows.iter().all(|r| r.2);
            table.add_row(&[
                n.to_string(),
                format!("{phi}"),
                fmt(ours.mean),
                fmt(kdg.mean),
                format!("{:.2}x", kdg.mean / ours.mean),
                if all_exact { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    table
}

/// E2 — Theorem 1.2/2.1: approximate quantile rounds vs ε at fixed n.
pub fn e2_approx_rounds_vs_eps(scale: Scale, master_seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 14,
        Scale::Full => 1 << 17,
    };
    let epsilons: &[f64] = &[0.5, 0.25, 0.125, 0.0625, 0.03125];
    let mut table = Table::new(
        format!("E2  Approximate phi-quantile (tournament): rounds vs epsilon at n = {n}"),
        &[
            "epsilon",
            "phi",
            "rounds (mean)",
            "naive sampling rounds",
            "worst |rank err|/n",
            "within eps",
        ],
    );
    for &eps in epsilons {
        for &phi in &[0.25f64, 0.5] {
            if eps < quantile_gossip::tournament_min_epsilon(n) {
                continue;
            }
            let spec = TrialSpec::new(master_seed ^ eps.to_bits() ^ phi.to_bits(), scale.trials());
            let rows = run_trials(&spec, |_, seed| {
                let values = Workload::UniformDistinct.generate(n, seed);
                let oracle = RankOracle::new(&values);
                let out = approx::tournament_quantile(
                    &values,
                    phi,
                    eps,
                    &TournamentConfig::default(),
                    cfg(seed),
                )
                .expect("approx");
                let worst = oracle.worst_error(&out.outputs, phi);
                let ok = out
                    .outputs
                    .iter()
                    .all(|o| oracle.within_epsilon(o, phi, eps + 0.005));
                (out.rounds, worst, ok)
            });
            let rounds = Summary::of_u64(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
            let worst = rows.iter().map(|r| r.1).fold(0.0, f64::max);
            let ok = rows.iter().all(|r| r.2);
            let naive = sampling::SamplingConfig::new(eps.min(0.99))
                .unwrap()
                .samples_for(n);
            table.add_row(&[
                format!("{eps}"),
                format!("{phi}"),
                fmt(rounds.mean),
                naive.to_string(),
                format!("{worst:.4}"),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    table
}

/// E3 — round growth in n for fixed ε (doubly logarithmic).
pub fn e3_approx_rounds_vs_n(scale: Scale, master_seed: u64) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[1 << 12, 1 << 14, 1 << 16],
        Scale::Full => &[1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20],
    };
    let eps = 0.05;
    let mut table = Table::new(
        format!("E3  Approximate median (tournament): rounds vs n at epsilon = {eps}"),
        &[
            "n",
            "rounds (mean)",
            "log2(n)",
            "log2 log2(n) + log2(1/eps)",
            "within eps",
        ],
    );
    for &n in sizes {
        let spec = TrialSpec::new(master_seed ^ n as u64, scale.trials());
        let rows = run_trials(&spec, |_, seed| {
            let values = Workload::UniformDistinct.generate(n, seed);
            let oracle = RankOracle::new(&values);
            let out = approx::tournament_quantile(
                &values,
                0.5,
                eps,
                &TournamentConfig::default(),
                cfg(seed),
            )
            .expect("approx");
            let ok = out
                .outputs
                .iter()
                .all(|o| oracle.within_epsilon(o, 0.5, eps + 0.005));
            (out.rounds, ok)
        });
        let rounds = Summary::of_u64(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let lg = (n as f64).log2();
        table.add_row(&[
            n.to_string(),
            fmt(rounds.mean),
            fmt(lg),
            fmt(lg.log2() + (1.0 / eps).log2()),
            if rows.iter().all(|r| r.1) {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table
}

/// E4 — correctness across workloads.
pub fn e4_accuracy_across_workloads(scale: Scale, master_seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 13,
        Scale::Full => 1 << 16,
    };
    let eps = 0.05;
    let phi = 0.9;
    let mut table = Table::new(
        format!("E4  Accuracy across workloads (n = {n}, phi = {phi}, eps = {eps})"),
        &[
            "workload",
            "trials",
            "worst |rank err|/n",
            "all nodes within eps",
        ],
    );
    for w in Workload::all() {
        let spec = TrialSpec::new(master_seed ^ w.name().len() as u64, scale.trials());
        let rows = run_trials(&spec, |i, seed| {
            let values = w.generate(n, seed ^ i as u64);
            let oracle = RankOracle::new(&values);
            let out = approx::tournament_quantile(
                &values,
                phi,
                eps,
                &TournamentConfig::default(),
                cfg(seed),
            )
            .expect("approx");
            let worst = oracle.worst_error(&out.outputs, phi);
            let ok = out
                .outputs
                .iter()
                .all(|o| oracle.within_epsilon(o, phi, eps + 0.005));
            (worst, ok)
        });
        let worst = rows.iter().map(|r| r.0).fold(0.0, f64::max);
        table.add_row(&[
            w.name().to_string(),
            rows.len().to_string(),
            format!("{worst:.4}"),
            if rows.iter().all(|r| r.1) {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table
}

/// E5 — Theorem 1.4: robustness under per-round failure probability μ.
pub fn e5_robust_failures(scale: Scale, master_seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 13,
        Scale::Full => 1 << 15,
    };
    let eps = 0.08;
    let mus: &[f64] = &[0.0, 0.2, 0.4, 0.6, 0.8];
    let mut table = Table::new(
        format!("E5  Robust approximate quantile under failures (n = {n}, phi = 0.5, eps = {eps})"),
        &[
            "mu",
            "pulls/iter",
            "rounds (mean)",
            "answered frac",
            "good frac",
            "answers within eps",
        ],
    );
    for &mu in mus {
        let spec = TrialSpec::new(master_seed ^ mu.to_bits(), scale.trials());
        let rows = run_trials(&spec, |_, seed| {
            let values = Workload::UniformDistinct.generate(n, seed);
            let oracle = RankOracle::new(&values);
            let engine_config =
                EngineConfig::with_seed(seed).failure(FailureModel::uniform(mu).expect("mu"));
            let out = robust::robust_approximate_quantile(
                &values,
                0.5,
                eps,
                &RobustConfig::default(),
                engine_config,
            )
            .expect("robust");
            let ok = out
                .outputs
                .iter()
                .flatten()
                .all(|o| oracle.within_epsilon(o, 0.5, eps + 0.02));
            (out.rounds, out.answered_fraction, out.good_fraction, ok)
        });
        let rounds = Summary::of_u64(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let answered = Summary::of(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let good = Summary::of(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        table.add_row(&[
            format!("{mu}"),
            RobustConfig::default().pulls_for(mu).to_string(),
            fmt(rounds.mean),
            format!("{:.4}", answered.mean),
            format!("{:.3}", good.mean),
            if rows.iter().all(|r| r.3) {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table
}

/// E6 — Theorem 1.3: the information-spreading lower bound.
pub fn e6_lower_bound(scale: Scale, master_seed: u64) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[1 << 12, 1 << 16],
        Scale::Full => &[1 << 12, 1 << 16, 1 << 20],
    };
    let epsilons: &[f64] = &[0.06, 0.01, 0.002];
    let mut table = Table::new(
        "E6  Lower bound (Theorem 1.3): idealised spreading rounds vs the barrier",
        &[
            "n",
            "epsilon",
            "informed start",
            "rounds to all informed",
            "barrier 0.5*lglg n + log4(8/eps)",
        ],
    );
    for &n in sizes {
        for &eps in epsilons {
            let spec = TrialSpec::new(master_seed ^ n as u64 ^ eps.to_bits(), scale.trials());
            let rows = run_trials(&spec, |_, seed| {
                lower_bound::spreading_rounds(n, eps, seed).expect("spreading")
            });
            let rounds = Summary::of_u64(
                &rows
                    .iter()
                    .map(|r| r.rounds_to_all_informed)
                    .collect::<Vec<_>>(),
            );
            table.add_row(&[
                n.to_string(),
                format!("{eps}"),
                rows[0].initially_informed.to_string(),
                fmt(rounds.mean),
                fmt(rows[0].theorem_barrier),
            ]);
        }
    }
    table
}

/// E7 — Corollary 1.5: every node estimates its own quantile.
pub fn e7_own_rank(scale: Scale, master_seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 15,
        Scale::Full => 1 << 17,
    };
    let epsilons: &[f64] = &[0.25, 0.125];
    let mut table = Table::new(
        format!("E7  Own-quantile estimation at every node (n = {n})"),
        &[
            "epsilon",
            "thresholds",
            "rounds",
            "worst |quantile err|",
            "mean |quantile err|",
        ],
    );
    for &eps in epsilons {
        let spec = TrialSpec::new(master_seed ^ eps.to_bits(), scale.trials());
        let rows = run_trials(&spec, |_, seed| {
            let values = Workload::UniformDistinct.generate(n, seed);
            let oracle = RankOracle::new(&values);
            let out = own_rank::estimate_own_quantiles(
                &values,
                eps,
                &OwnRankConfig::default(),
                cfg(seed),
            )
            .expect("own rank");
            let errs: Vec<f64> = out
                .quantiles
                .iter()
                .enumerate()
                .map(|(v, &q)| (q - oracle.quantile_of(&values[v])).abs())
                .collect();
            let worst = errs.iter().copied().fold(0.0, f64::max);
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            (out.rounds, out.thresholds, worst, mean)
        });
        let rounds = Summary::of_u64(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let worst = rows.iter().map(|r| r.2).fold(0.0, f64::max);
        let mean = Summary::of(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
        table.add_row(&[
            format!("{eps}"),
            rows[0].1.to_string(),
            fmt(rounds.mean),
            format!("{worst:.3}"),
            format!("{:.3}", mean.mean),
        ]);
    }
    table
}

/// E8 — message-size trade-off: tournament vs doubling vs compaction.
pub fn e8_message_complexity(scale: Scale, master_seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 11,
        Scale::Full => 1 << 13,
    };
    let eps = 0.1;
    let phi = 0.5;
    let mut table = Table::new(
        format!("E8  Message size vs rounds (n = {n}, phi = {phi}, eps = {eps})"),
        &[
            "algorithm",
            "rounds",
            "max message bits",
            "mean message bits",
            "worst |rank err|/n",
        ],
    );
    let spec = TrialSpec::new(master_seed, 1.max(scale.trials() / 2));
    #[allow(clippy::type_complexity)]
    let rows: Vec<Vec<(String, u64, u64, f64, f64)>> = run_trials(&spec, |_, seed| {
        let values = Workload::UniformDistinct.generate(n, seed);
        let oracle = RankOracle::new(&values);
        let mut out = Vec::new();

        let t =
            approx::tournament_quantile(&values, phi, eps, &TournamentConfig::default(), cfg(seed))
                .expect("tournament");
        out.push((
            "tournament (Thm 2.1)".to_string(),
            t.rounds,
            t.metrics.max_message_bits,
            t.metrics.mean_message_bits(),
            oracle.worst_error(&t.outputs, phi),
        ));

        let s = sampling::approximate_quantile(
            &values,
            phi,
            &sampling::SamplingConfig::new(eps).unwrap(),
            cfg(seed ^ 1),
        )
        .expect("sampling");
        out.push((
            "naive sampling".to_string(),
            s.rounds,
            s.metrics.max_message_bits,
            s.metrics.mean_message_bits(),
            oracle.worst_error(&s.estimates, phi),
        ));

        let d = doubling::approximate_quantile(
            &values,
            phi,
            &doubling::DoublingConfig::new(eps).unwrap(),
            cfg(seed ^ 2),
        )
        .expect("doubling");
        out.push((
            "doubling (App. A)".to_string(),
            d.rounds,
            d.metrics.max_message_bits,
            d.metrics.mean_message_bits(),
            oracle.worst_error(&d.estimates, phi),
        ));

        let c = compactor::approximate_quantile(
            &values,
            phi,
            &compactor::CompactorConfig::new(eps).unwrap(),
            cfg(seed ^ 3),
        )
        .expect("compactor");
        out.push((
            "compaction (App. A.1)".to_string(),
            c.rounds,
            c.metrics.max_message_bits,
            c.metrics.mean_message_bits(),
            oracle.worst_error(&c.estimates, phi),
        ));
        out
    });
    // Average across trials per algorithm.
    for alg in 0..rows[0].len() {
        let name = rows[0][alg].0.clone();
        let rounds = Summary::of_u64(&rows.iter().map(|r| r[alg].1).collect::<Vec<_>>());
        let maxbits = rows.iter().map(|r| r[alg].2).max().unwrap_or(0);
        let meanbits = Summary::of(&rows.iter().map(|r| r[alg].3).collect::<Vec<_>>());
        let worst = rows.iter().map(|r| r[alg].4).fold(0.0, f64::max);
        table.add_row(&[
            name,
            fmt(rounds.mean),
            maxbits.to_string(),
            fmt(meanbits.mean),
            format!("{worst:.4}"),
        ]);
    }
    table
}

/// E9 — the tournament dynamics themselves (Lemmas 2.6, 2.10, 2.16) plus the
/// Doerr et al. median rule for context.
pub fn e9_tournament_dynamics(scale: Scale, master_seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 14,
        Scale::Full => 1 << 17,
    };
    let eps = 0.05;
    let phi = 0.2;
    let mut table = Table::new(
        format!("E9  Tournament dynamics (n = {n}, phi = {phi}, eps = {eps})"),
        &["quantity", "paper prediction", "measured (mean)"],
    );
    let spec = TrialSpec::new(master_seed, scale.trials());
    let rows = run_trials(&spec, |_, seed| {
        let values: Vec<u64> = (0..n as u64).collect();
        let schedule = quantile_gossip::TwoTournamentSchedule::compute(phi, eps).expect("schedule");
        let out = quantile_gossip::two_tournament::run(&values, &schedule, cfg(seed)).expect("2t");
        let above = out
            .values
            .iter()
            .filter(|&&v| (v as f64 / n as f64) > phi + eps)
            .count() as f64
            / n as f64;
        let band = out
            .values
            .iter()
            .filter(|&&v| {
                let q = v as f64 / n as f64;
                (phi - eps..=phi + eps).contains(&q)
            })
            .count() as f64
            / n as f64;

        let s3 = quantile_gossip::ThreeTournamentSchedule::compute(eps, n).expect("schedule");
        let out3 = quantile_gossip::three_tournament::run(
            &values,
            &s3,
            quantile_gossip::FinalVote::default(),
            cfg(seed ^ 9),
        )
        .expect("3t");
        let outside = out3
            .converged_values
            .iter()
            .filter(|&&v| {
                let q = v as f64 / n as f64;
                !(0.5 - eps..=0.5 + eps).contains(&q)
            })
            .count() as f64
            / n as f64;

        let mr = median_rule::run(&values, &MedianRuleConfig::default(), cfg(seed ^ 17))
            .expect("median rule");
        (above, band, outside, mr.iterations)
    });
    let above = Summary::of(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
    let band = Summary::of(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
    let outside = Summary::of(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
    let mr_iters = Summary::of_u64(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
    table.add_row(&[
        "|H_t|/n after 2-TOURNAMENT".into(),
        format!("{} ± {}", 0.5 - eps, eps / 2.0),
        format!("{:.4}", above.mean),
    ]);
    table.add_row(&[
        "|M_t|/n after 2-TOURNAMENT".into(),
        format!(">= {}", 1.75 * eps),
        format!("{:.4}", band.mean),
    ]);
    table.add_row(&[
        "mass outside median band after 3-TOURNAMENT".into(),
        format!("<= {:.5}", 4.0 * (n as f64).powf(-1.0 / 3.0)),
        format!("{:.5}", outside.mean),
    ]);
    table.add_row(&[
        "median-rule (DGM+11) iterations to consensus".into(),
        "O(log n)".into(),
        fmt(mr_iters.mean),
    ]);
    table
}

/// E10 — the push-sum primitive (KDG03) used by Algorithm 3 Step 5.
pub fn e10_push_sum(scale: Scale, master_seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 12,
        Scale::Full => 1 << 15,
    };
    let mut table = Table::new(
        format!("E10  Push-sum counting accuracy vs rounds (n = {n})"),
        &["rounds", "max |count error|", "exact after rounding"],
    );
    let truth_fraction = 3;
    for rounds in [10u64, 20, 40, 60] {
        let spec = TrialSpec::new(master_seed ^ rounds, scale.trials());
        let rows = run_trials(&spec, |_, seed| {
            let indicators: Vec<bool> = (0..n).map(|i| i % truth_fraction == 0).collect();
            let truth = indicators.iter().filter(|&&b| b).count() as f64;
            let out = push_sum::count_matching(
                &indicators,
                &PushSumConfig::fixed_rounds(rounds),
                cfg(seed),
            )
            .expect("push-sum");
            let err = out.max_absolute_error(truth);
            (err, err < 0.5)
        });
        let worst = rows.iter().map(|r| r.0).fold(0.0, f64::max);
        table.add_row(&[
            rounds.to_string(),
            format!("{worst:.3}"),
            if rows.iter().all(|r| r.1) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table
}

/// Runs one experiment by id; `None` if the id is unknown.
pub fn run_experiment(id: &str, scale: Scale, master_seed: u64) -> Option<Table> {
    let table = match id {
        "e1" => e1_exact_vs_kdg(scale, master_seed),
        "e2" => e2_approx_rounds_vs_eps(scale, master_seed),
        "e3" => e3_approx_rounds_vs_n(scale, master_seed),
        "e4" => e4_accuracy_across_workloads(scale, master_seed),
        "e5" => e5_robust_failures(scale, master_seed),
        "e6" => e6_lower_bound(scale, master_seed),
        "e7" => e7_own_rank(scale, master_seed),
        "e8" => e8_message_complexity(scale, master_seed),
        "e9" => e9_tournament_dynamics(scale, master_seed),
        "e10" => e10_push_sum(scale, master_seed),
        _ => return None,
    };
    Some(table)
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 10] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_resolves() {
        for id in ALL_EXPERIMENTS {
            // Just resolve the id; running them all at Quick scale is done by
            // the integration tests / the reproduce binary.
            assert!(ALL_EXPERIMENTS.contains(&id));
        }
        assert!(run_experiment("nope", Scale::Quick, 0).is_none());
    }

    #[test]
    fn quick_lower_bound_experiment_produces_rows() {
        let t = e6_lower_bound(Scale::Quick, 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn quick_push_sum_experiment_produces_rows() {
        let t = e10_push_sum(Scale::Quick, 1);
        assert_eq!(t.len(), 4);
    }
}
