//! Section-preserving writer for `BENCH_engine.json`.
//!
//! Two benches contribute to the same perf record: `engine_scaling` writes
//! the `"results"` rows (dense pull throughput per `n`) and `engine_ablation`
//! writes the `"active_set"` rows (dense vs sparse rounds per active
//! fraction). Either may run alone, so each updates *its* section in place
//! and leaves the other's untouched. There is no JSON parser in the offline
//! dependency set; instead the file format is fixed (2-space-indented
//! sections of one-line rows, exactly what [`update_section`] emits), and the
//! merge is plain string surgery over that format — with unit tests pinning
//! the round-trip.

use std::path::PathBuf;

/// The canonical report path: `$BENCH_ENGINE_JSON`, or `BENCH_engine.json`
/// in the workspace root.
pub fn bench_engine_json_path() -> PathBuf {
    std::env::var("BENCH_ENGINE_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_engine.json"
            ))
        })
}

/// The empty skeleton a section is inserted into when no report exists yet.
fn skeleton() -> String {
    "{\n  \"bench\": \"engine\",\n  \"primitive\": \"pull_round(max-spread, u64)\"\n}\n".to_string()
}

/// Returns `existing` (or a fresh skeleton if `None`/unusable) with the
/// `key` section replaced by `rows` — other sections and the header keys are
/// preserved verbatim.
pub fn update_section(existing: Option<&str>, key: &str, rows: &[String]) -> String {
    let existing = match existing {
        Some(s) if s.trim_start().starts_with('{') && s.contains('}') => s.to_string(),
        _ => skeleton(),
    };
    let section = format!("  \"{key}\": [\n{}\n  ]", rows.join(",\n"));
    let marker = format!("\"{key}\": [");
    if let Some(start) = existing.find(&marker) {
        if let Some(end_rel) = existing[start..].find("\n  ]") {
            let line_start = existing[..start].rfind('\n').map_or(0, |i| i + 1);
            let end = start + end_rel + "\n  ]".len();
            return format!("{}{}{}", &existing[..line_start], section, &existing[end..]);
        }
    }
    // No such section yet: insert before the final closing brace.
    match existing.rfind('}') {
        Some(pos) => {
            let before = existing[..pos].trim_end();
            format!("{before},\n{section}\n}}\n")
        }
        None => format!("{{\n{section}\n}}\n"),
    }
}

/// Reads the current report (if any), updates the `key` section with `rows`,
/// and writes it back. Errors are reported to stderr, never fatal — a bench
/// run should not die on a read-only checkout.
pub fn write_section(key: &str, rows: &[String]) {
    let path = bench_engine_json_path();
    let existing = std::fs::read_to_string(&path).ok();
    let updated = update_section(existing.as_deref(), key, rows);
    match std::fs::write(&path, &updated) {
        Ok(()) => println!("wrote {} section of {}", key, path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> String {
        format!("    {{\"n\": {i}}}")
    }

    #[test]
    fn creates_a_skeleton_with_the_section() {
        let out = update_section(None, "results", &[row(1), row(2)]);
        assert!(out.starts_with("{\n  \"bench\": \"engine\""));
        assert!(out.contains("\"results\": [\n    {\"n\": 1},\n    {\"n\": 2}\n  ]"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn adds_a_second_section_preserving_the_first() {
        let first = update_section(None, "results", &[row(1)]);
        let both = update_section(Some(&first), "active_set", &[row(7)]);
        assert!(both.contains("\"results\": [\n    {\"n\": 1}\n  ]"));
        assert!(both.contains("\"active_set\": [\n    {\"n\": 7}\n  ]"));
        // Sections are comma-separated, single trailing brace.
        assert_eq!(
            both.matches('}').count() - both.matches("{\"n\"").count(),
            1
        );
    }

    #[test]
    fn replaces_a_section_in_place() {
        let first = update_section(None, "results", &[row(1)]);
        let both = update_section(Some(&first), "active_set", &[row(7)]);
        let replaced = update_section(Some(&both), "results", &[row(2), row(3)]);
        assert!(!replaced.contains("{\"n\": 1}"));
        assert!(replaced.contains("{\"n\": 2},\n    {\"n\": 3}"));
        assert!(replaced.contains("{\"n\": 7}"), "other section lost");
        // Replacing the last section keeps the structure intact too.
        let replaced2 = update_section(Some(&replaced), "active_set", &[row(8)]);
        assert!(replaced2.contains("{\"n\": 8}"));
        assert!(replaced2.contains("{\"n\": 2}"));
        assert!(!replaced2.contains("{\"n\": 7}"));
    }

    #[test]
    fn survives_the_pre_section_legacy_format() {
        // The PR-3/PR-4 file shape: header + results only, written wholesale.
        let legacy = "{\n  \"bench\": \"engine_scaling\",\n  \"primitive\": \
                      \"pull_round(max-spread, u64)\",\n  \"results\": [\n    \
                      {\"n\": 1000}\n  ]\n}\n";
        let updated = update_section(Some(legacy), "active_set", &[row(9)]);
        assert!(updated.contains("\"bench\": \"engine_scaling\""));
        assert!(updated.contains("{\"n\": 1000}"));
        assert!(updated.contains("\"active_set\": [\n    {\"n\": 9}\n  ]"));
    }

    #[test]
    fn garbage_input_falls_back_to_the_skeleton() {
        let out = update_section(Some("not json"), "results", &[row(4)]);
        assert!(out.contains("\"bench\": \"engine\""));
        assert!(out.contains("{\"n\": 4}"));
    }
}
