//! CI bench smoke comparator: `bench_smoke <committed.json> <fresh.json>`.
//!
//! Prints one warning line per measurement outside the committed noise band
//! (see [`bench::smoke`]) and always exits 0 — quick-mode numbers are noisy
//! by construction, so drift is surfaced in the job log, not enforced. CI
//! invokes it once per report pair (`BENCH_engine.json`,
//! `BENCH_service.json`, `BENCH_robustness.json`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [committed_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_smoke <committed.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            println!("bench_smoke: cannot read {path}: {e} — skipping comparison");
            None
        }
    };
    let (Some(committed), Some(fresh)) = (read(committed_path), read(fresh_path)) else {
        return ExitCode::SUCCESS; // missing file: nothing to compare, not an error
    };
    let warnings = bench::smoke::compare(&committed, &fresh);
    if warnings.is_empty() {
        println!("bench_smoke: all medians within ±3·std of the committed report");
    } else {
        for w in &warnings {
            println!("::warning::bench_smoke: {w}");
        }
        println!(
            "bench_smoke: {} median(s) outside the committed noise band (warning only)",
            warnings.len()
        );
    }
    ExitCode::SUCCESS
}
