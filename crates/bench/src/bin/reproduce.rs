//! Reproduction harness: prints the experiment tables recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all            # every experiment
//! cargo run --release -p bench --bin reproduce -- e1 e5          # selected experiments
//! cargo run --release -p bench --bin reproduce -- --quick all    # smaller sizes / fewer trials
//! cargo run --release -p bench --bin reproduce -- --seed 7 e2    # change the master seed
//! ```

use bench::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut seed: u64 = 20180723; // PODC 2018
    let mut requested: Vec<String> = Vec::new();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--seed requires a value");
                    std::process::exit(2);
                });
                seed = value.parse().unwrap_or_else(|_| {
                    eprintln!("--seed requires an integer, got `{value}`");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => requested.push(other.to_lowercase()),
        }
    }
    if requested.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if requested.iter().any(|r| r == "all") {
        requested = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "# gossip-quantiles reproduction ({} scale, master seed {seed})\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    for id in &requested {
        let start = std::time::Instant::now();
        match run_experiment(id, scale, seed) {
            Some(table) => {
                println!("{}", table.render());
                println!("({id} took {:.1?})\n", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {ALL_EXPERIMENTS:?} or `all`");
                std::process::exit(2);
            }
        }
    }
}

fn print_usage() {
    println!(
        "usage: reproduce [--quick] [--seed N] <experiment...|all>\n\
         experiments: {ALL_EXPERIMENTS:?}\n\
         See DESIGN.md section 3 for what each experiment validates."
    );
}
