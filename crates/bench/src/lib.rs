//! # bench
//!
//! The reproduction harness: shared experiment drivers used both by the
//! `reproduce` binary (which prints the tables recorded in EXPERIMENTS.md) and
//! by the Criterion benches (which measure wall-clock simulation cost).
//!
//! Every experiment Eⁿ in DESIGN.md has a driver function here returning an
//! [`analysis::Table`]; the binary only handles argument parsing and printing.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod report_json;
pub mod smoke;

pub use experiments::*;
