//! E8 wall-clock bench: tournament vs the large-message baselines of Appendix A.

use analysis::Workload;
use baselines::{compactor, doubling};
use criterion::{criterion_group, criterion_main, Criterion};
use gossip_net::EngineConfig;
use quantile_gossip::{approx, TournamentConfig};

fn bench_message_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_complexity");
    group.sample_size(10);
    let values = Workload::UniformDistinct.generate(1 << 11, 3);

    group.bench_function("tournament", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            approx::tournament_quantile(
                &values,
                0.5,
                0.1,
                &TournamentConfig::default(),
                EngineConfig::with_seed(seed),
            )
            .unwrap()
            .metrics
            .bits_delivered
        })
    });
    group.bench_function("doubling_appendix_a", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            doubling::approximate_quantile(
                &values,
                0.5,
                &doubling::DoublingConfig::new(0.1).unwrap(),
                EngineConfig::with_seed(seed),
            )
            .unwrap()
            .metrics
            .bits_delivered
        })
    });
    group.bench_function("compaction_appendix_a1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            compactor::approximate_quantile(
                &values,
                0.5,
                &compactor::CompactorConfig::new(0.1).unwrap(),
                EngineConfig::with_seed(seed),
            )
            .unwrap()
            .metrics
            .bits_delivered
        })
    });
    group.finish();
}

criterion_group!(benches, bench_message_complexity);
criterion_main!(benches);
