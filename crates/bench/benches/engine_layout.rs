//! Same-host A/B of the PR 8 memory-layout changes, in the style of PR 3's
//! dispatch ablation: the **old** code path (kept in-tree as a reference
//! implementation or behind a knob) and the **new** one are measured in the
//! same process, back to back, so the comparison is free of toolchain and
//! host drift. Three changes:
//!
//! 1. **`pull_blocked_prefetch`**: the dense pull round's fused per-slot loop
//!    ([`Engine::pull_round_reference`], the pre-PR-8 code, verbatim) vs the
//!    cache-blocked back-buffer refresh + batched, software-prefetched target
//!    gather that [`Engine::pull_round`] now runs.
//! 2. **`collect_flat`**: `k` sampling rounds into the nested per-node
//!    `Vec<Vec<M>>` ([`Engine::collect_samples`]) vs the flat column-major
//!    [`SampleMatrix`](gossip_net::SampleMatrix)
//!    ([`Engine::collect_samples_flat`]) — n allocations vs one.
//! 3. **`sparse_commit_runs`**: the copy-on-write commit's per-slot
//!    `mem::swap` loop (`set_batch_commit(false)`) vs batching maximal
//!    contiguous id runs into `swap_with_slice` block moves (the default).
//!
//! Every pair also cross-checks **bit-identical final states** — the layout
//! work is pure mechanical sympathy, so any trajectory divergence is a bug,
//! not a tolerance question. Rows land in the `layout` section of
//! `BENCH_engine.json`; the PR 8 acceptance gate is the
//! `pull_blocked_prefetch` row at n = 1M, threads = 1.
//!
//! Set `ENGINE_LAYOUT_QUICK=1` (CI's bench smoke step does) to shrink sizes
//! and samples to a bit-rot check.
//!
//! ```text
//! cargo bench -p bench --bench engine_layout
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_net::{ActiveSet, Engine, EngineConfig};
use std::time::Instant;

fn quick() -> bool {
    std::env::var_os("ENGINE_LAYOUT_QUICK").is_some_and(|v| v != "0")
}

fn rounds_for(n: usize) -> u64 {
    match n {
        0..=4_000 => 200,
        4_001..=20_000 => 50,
        20_001..=200_000 => 10,
        _ => 5,
    }
}

fn engine(n: usize) -> Engine<u64> {
    let mut e = Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(42));
    e.set_threads(1);
    e
}

/// One A/B measurement: median-of-5 (after one warm-up) of `f`'s rounds/sec.
fn measure(mut f: impl FnMut() -> f64) -> criterion::stats::Summary {
    let samples = if quick() { 2 } else { 5 };
    let _warmup = f();
    let collected: Vec<f64> = (0..samples).map(|_| f()).collect();
    criterion::stats::summary(&collected).expect("samples")
}

fn pull_rounds_per_sec(n: usize, rounds: u64, reference: bool) -> (f64, Vec<u64>) {
    let mut e = engine(n);
    let serve = |_: usize, &s: &u64| s;
    let apply = |_: usize, st: &mut u64, p: Option<u64>| {
        if let Some(p) = p {
            *st = (*st).max(p);
        }
    };
    let start = Instant::now();
    for _ in 0..rounds {
        if reference {
            e.pull_round_reference(serve, apply);
        } else {
            e.pull_round(serve, apply);
        }
    }
    let rate = rounds as f64 / start.elapsed().as_secs_f64();
    (rate, e.into_states())
}

fn collect_rounds_per_sec(n: usize, iterations: u64, flat: bool) -> (f64, Vec<u64>) {
    let mut e = engine(n);
    let mut fold = 0u64;
    let start = Instant::now();
    for _ in 0..iterations {
        if flat {
            let m = e.collect_samples_flat(2, |_, &v| v);
            for v in 0..n {
                fold = fold.wrapping_add(m.sample(v, 0).unwrap_or(0) ^ m.sample(v, 1).unwrap_or(0));
            }
        } else {
            let m = e.collect_samples(2, |_, &v| v);
            for s in &m {
                fold = fold
                    .wrapping_add(s.first().copied().unwrap_or(0) ^ s.get(1).copied().unwrap_or(0));
            }
        }
    }
    // 2 sampling rounds per iteration; fold the digest into the trajectory
    // check so the sample consumption cannot be optimised away.
    let rate = (2 * iterations) as f64 / start.elapsed().as_secs_f64();
    std::hint::black_box(fold); // keep the sample reads live
    (rate, e.into_states())
}

fn sparse_rounds_per_sec(n: usize, rounds: u64, batch: bool) -> (f64, Vec<u64>) {
    let mut e = engine(n);
    e.set_batch_commit(batch);
    // Even ids active: every run in the written set is short, making this the
    // adversarial case for run batching; dense receiver stretches come from
    // the push deliveries.
    let active = ActiveSet::from_fn(n, |v| v % 2 == 0);
    let start = Instant::now();
    for _ in 0..rounds {
        e.push_round_on(
            &active,
            |_, &s| Some(s),
            |_, st, m| *st = (*st).max(m),
            |_, _, _| {},
        );
    }
    let rate = rounds as f64 / start.elapsed().as_secs_f64();
    (rate, e.into_states())
}

struct AbRow {
    change: &'static str,
    n: usize,
    old: criterion::stats::Summary,
    new: criterion::stats::Summary,
    identical: bool,
}

fn bench_engine_layout(c: &mut Criterion) {
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let sizes: &[usize] = if quick() {
        &[1 << 12, 1 << 14]
    } else {
        &[16_000, 100_000, 1_000_000]
    };

    let mut group = c.benchmark_group("engine_layout");
    group.sample_size(if quick() { 2 } else { 5 });
    let mut rows: Vec<AbRow> = Vec::new();

    for &n in sizes {
        let rounds = rounds_for(n);
        group.throughput(Throughput::Elements(rounds * n as u64));
        group.bench_with_input(BenchmarkId::new("pull_old", n), &n, |b, &n| {
            b.iter(|| pull_rounds_per_sec(n, rounds, true).0);
        });
        group.bench_with_input(BenchmarkId::new("pull_new", n), &n, |b, &n| {
            b.iter(|| pull_rounds_per_sec(n, rounds, false).0);
        });

        let old = measure(|| pull_rounds_per_sec(n, rounds, true).0);
        let new = measure(|| pull_rounds_per_sec(n, rounds, false).0);
        let identical =
            pull_rounds_per_sec(n, rounds, true).1 == pull_rounds_per_sec(n, rounds, false).1;
        assert!(identical, "blocked/prefetched pull diverged at n = {n}");
        rows.push(AbRow {
            change: "pull_blocked_prefetch",
            n,
            old,
            new,
            identical,
        });

        let iterations = rounds.div_ceil(2).max(1);
        let old = measure(|| collect_rounds_per_sec(n, iterations, false).0);
        let new = measure(|| collect_rounds_per_sec(n, iterations, true).0);
        let identical = collect_rounds_per_sec(n, iterations, false).1
            == collect_rounds_per_sec(n, iterations, true).1;
        assert!(identical, "flat sample collection diverged at n = {n}");
        rows.push(AbRow {
            change: "collect_flat",
            n,
            old,
            new,
            identical,
        });

        let old = measure(|| sparse_rounds_per_sec(n, rounds, false).0);
        let new = measure(|| sparse_rounds_per_sec(n, rounds, true).0);
        let identical =
            sparse_rounds_per_sec(n, rounds, false).1 == sparse_rounds_per_sec(n, rounds, true).1;
        assert!(identical, "batched sparse commit diverged at n = {n}");
        rows.push(AbRow {
            change: "sparse_commit_runs",
            n,
            old,
            new,
            identical,
        });
    }
    group.finish();

    let mut json_rows = Vec::new();
    for r in &rows {
        let speedup = r.new.median / r.old.median;
        println!(
            "engine_layout {} n={}: old {:.2}±{:.2} rounds/s, new {:.2}±{:.2} rounds/s \
             (speedup {speedup:.2}x, identical: {})",
            r.change, r.n, r.old.median, r.old.std_dev, r.new.median, r.new.std_dev, r.identical
        );
        json_rows.push(format!(
            "    {{\"change\": \"{}\", \"n\": {}, \"threads\": 1, \"host_cores\": {host_cores}, \
             \"rounds_per_sec_old\": {:.3}, \"std_old\": {:.3}, \
             \"rounds_per_sec_new\": {:.3}, \"std_new\": {:.3}, \"speedup\": {speedup:.3}, \
             \"identical_states\": {}}}",
            r.change, r.n, r.old.median, r.old.std_dev, r.new.median, r.new.std_dev, r.identical
        ));
    }
    // Quick mode's numbers are bit-rot checks, not data — keep the committed
    // section's full-run numbers in that case.
    if !quick() {
        bench::report_json::write_section("layout", &json_rows);
    }
}

criterion_group!(benches, bench_engine_layout);
criterion_main!(benches);
