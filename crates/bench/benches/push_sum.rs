//! E10 wall-clock bench: the push-sum counting primitive (KDG03).

use baselines::{push_sum, PushSumConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::EngineConfig;

fn bench_push_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_sum");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 15] {
        let indicators: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        group.bench_with_input(BenchmarkId::new("count", n), &indicators, |b, ind| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                push_sum::count_matching(
                    ind,
                    &PushSumConfig::default(),
                    EngineConfig::with_seed(seed),
                )
                .unwrap()
                .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_push_sum);
criterion_main!(benches);
