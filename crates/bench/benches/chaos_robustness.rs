//! Chaos sweep: approximate-quantile accuracy under the `gossip_net::fault`
//! combinators, plus a fixed-vs-adaptive round-schedule comparison.
//!
//! Two report sections, both written to `BENCH_robustness.json` in the
//! workspace root (override with `$BENCH_ROBUSTNESS_JSON`):
//!
//! 1. **Per-fault-kind accuracy curves** — for every fault kind (message
//!    loss, churn with rejoin, stragglers, the Section 5 failure model) and
//!    every intensity, the Theorem 1.4 robust algorithm (φ = 0.5, ε = 0.1)
//!    runs over seed-paired trials; each cell records the fraction of
//!    answered nodes within ε, the answered fraction, the rounds spent, and
//!    the fault counters the run absorbed. This is the empirical shape of
//!    the paper's claim that accuracy survives any per-round disturbance
//!    bounded by `μ < 1` — and of where each combinator actually bites
//!    (stragglers are inert for the pull-only robust algorithm; churn also
//!    silences nodes, so its curve bends first).
//!
//! 2. **Fixed vs adaptive schedules** — under a plan whose derivable union
//!    bound is pessimistic (loss + stragglers: the straggler mass never
//!    disturbs a pull), the fixed schedule pays `O(1/(1−μ))` at the assumed
//!    bound while the adaptive one re-evaluates the Lemma 5.2 budget at the
//!    *observed* `μ̂` each iteration. Both rows record rounds and accuracy:
//!    the acceptance shape is equal-or-better within-ε at a lower round
//!    budget (or better within-ε at an equal budget).
//!
//! Each cell is the median of 5 trials with sample standard deviations
//! (`std_*`). Set `ROBUSTNESS_QUICK=1` (CI's bench smoke step does) to
//! shrink sizes and trial counts to a bit-rot check:
//!
//! ```text
//! cargo bench -p bench --bench chaos_robustness
//! ```

use analysis::{run_trials, RankOracle, TrialSpec, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::{ChurnModel, EngineConfig, FailureModel, FaultPlan, LossModel, StragglerModel};
use quantile_gossip::robust::{robust_approximate_quantile, RobustConfig};

const PHI: f64 = 0.5;
const EPS: f64 = 0.1;

fn quick() -> bool {
    std::env::var_os("ROBUSTNESS_QUICK").is_some_and(|v| v != "0")
}

const FAULT_KINDS: [&str; 4] = ["loss", "churn", "stragglers", "failure"];

/// A single-combinator plan at the given intensity. Churn rejoins after two
/// rounds so the population stays bounded away from extinction; stragglers
/// spread arrivals over up to three rounds.
fn plan_for(kind: &str, p: f64) -> FaultPlan {
    if p == 0.0 {
        return FaultPlan::none();
    }
    match kind {
        "loss" => FaultPlan::none().with_loss(LossModel::uniform(p).expect("p < 1")),
        "churn" => FaultPlan::none().with_churn(ChurnModel::with_rejoin(p, 2).expect("p < 1")),
        "stragglers" => {
            FaultPlan::none().with_stragglers(StragglerModel::uniform(p, 3).expect("p < 1"))
        }
        "failure" => FaultPlan::none().with_failure(FailureModel::uniform(p).expect("p < 1")),
        other => unreachable!("unknown fault kind {other}"),
    }
}

/// What one robust run under one plan measured.
struct TrialResult {
    rounds: f64,
    within_eps: f64,
    answered: f64,
    estimated_mu: f64,
    crashed: f64,
    dropped: f64,
    delayed: f64,
}

fn run_trial(n: usize, seed: u64, plan: FaultPlan, config: &RobustConfig) -> TrialResult {
    let values = Workload::UniformDistinct.generate(n, seed);
    let oracle = RankOracle::new(&values);
    let target = (PHI * n as f64).ceil();
    let engine_config = EngineConfig::with_seed(seed).fault(plan);
    let out = robust_approximate_quantile(&values, PHI, EPS, config, engine_config)
        .expect("valid parameters");
    let answered: Vec<&_> = out.outputs.iter().flatten().collect();
    let within = answered
        .iter()
        .filter(|o| (oracle.rank(o) as f64 - target).abs() / n as f64 <= EPS)
        .count();
    let within_eps = if answered.is_empty() {
        0.0
    } else {
        within as f64 / answered.len() as f64
    };
    TrialResult {
        rounds: out.rounds as f64,
        within_eps,
        answered: out.answered_fraction,
        estimated_mu: out.estimated_mu,
        crashed: out.metrics.crashed_operations as f64,
        dropped: out.metrics.messages_dropped as f64,
        delayed: out.metrics.messages_delayed as f64,
    }
}

fn bench_chaos_robustness(c: &mut Criterion) {
    let quick = quick();
    let n = if quick { 2_000 } else { 20_000 };
    let trials = if quick { 2 } else { 5 };
    let intensities: &[f64] = if quick {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4]
    };

    // Criterion timing row: the cost of one full robust run under the
    // μ = 0.3 loss plan, tracked like the other benches.
    let mut group = c.benchmark_group("chaos_robustness");
    group.sample_size(if quick { 2 } else { 5 });
    group.bench_with_input(BenchmarkId::new("robust", "loss-0.3"), &n, |b, &n| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_trial(n, seed, plan_for("loss", 0.3), &RobustConfig::default()).within_eps
        });
    });
    group.finish();

    let stat = |results: &[TrialResult], f: &dyn Fn(&TrialResult) -> f64| {
        let samples: Vec<f64> = results.iter().map(f).collect();
        criterion::stats::summary(&samples).expect("at least one trial")
    };

    // Section 1: accuracy vs intensity, one curve per fault kind.
    let mut report_rows = Vec::new();
    for kind in FAULT_KINDS {
        for &p in intensities {
            let spec = TrialSpec::new(42, trials);
            let results = run_trials(&spec, |_i, seed| {
                run_trial(n, seed, plan_for(kind, p), &RobustConfig::default())
            });
            let rounds = stat(&results, &|r| r.rounds);
            let within = stat(&results, &|r| r.within_eps);
            let answered = stat(&results, &|r| r.answered);
            let crashed = stat(&results, &|r| r.crashed);
            let dropped = stat(&results, &|r| r.dropped);
            let delayed = stat(&results, &|r| r.delayed);
            println!(
                "chaos_robustness {kind} p={p} n={n}: within_eps={:.3}±{:.3} \
                 answered={:.3} rounds={:.0}",
                within.median, within.std_dev, answered.median, rounds.median
            );
            report_rows.push(format!(
                "    {{\"section\": \"sweep\", \"fault\": \"{kind}\", \"intensity\": {p}, \
                 \"n\": {n}, \"phi\": {PHI}, \"epsilon\": {EPS}, \"trials\": {trials}, \
                 \"within_eps\": {:.5}, \"std_within_eps\": {:.5}, \
                 \"answered\": {:.5}, \"std_answered\": {:.5}, \
                 \"rounds\": {:.1}, \"std_rounds\": {:.3}, \
                 \"crashed\": {:.1}, \"dropped\": {:.1}, \"delayed\": {:.1}}}",
                within.median,
                within.std_dev,
                answered.median,
                answered.std_dev,
                rounds.median,
                rounds.std_dev,
                crashed.median,
                dropped.median,
                delayed.median
            ));
        }
    }

    // Section 2: fixed vs adaptive at μ ≥ 0.3. The plan mixes loss (which
    // disturbs pulls) with stragglers (which never do): the derivable union
    // bound is ~0.3 above the truth, so the fixed schedule over-provisions
    // its pull budget while the adaptive one converges to the observed μ̂.
    let comparisons: &[f64] = if quick { &[0.3] } else { &[0.3, 0.4] };
    for &mu in comparisons {
        let plan = || {
            FaultPlan::none()
                .with_loss(LossModel::uniform(mu).expect("p < 1"))
                .with_stragglers(StragglerModel::uniform(0.3, 3).expect("p < 1"))
        };
        for (mode, config) in [
            ("fixed", RobustConfig::default()),
            (
                "adaptive",
                RobustConfig {
                    adaptive: true,
                    ..RobustConfig::default()
                },
            ),
        ] {
            let spec = TrialSpec::new(97, trials);
            let results = run_trials(&spec, |_i, seed| run_trial(n, seed, plan(), &config));
            let rounds = stat(&results, &|r| r.rounds);
            let within = stat(&results, &|r| r.within_eps);
            let answered = stat(&results, &|r| r.answered);
            let mu_hat = stat(&results, &|r| r.estimated_mu);
            println!(
                "chaos_robustness schedule={mode} mu={mu} n={n}: rounds={:.0}±{:.1} \
                 within_eps={:.3} estimated_mu={:.3}",
                rounds.median, rounds.std_dev, within.median, mu_hat.median
            );
            report_rows.push(format!(
                "    {{\"section\": \"schedule\", \"mode\": \"{mode}\", \"mu\": {mu}, \
                 \"n\": {n}, \"phi\": {PHI}, \"epsilon\": {EPS}, \"trials\": {trials}, \
                 \"within_eps\": {:.5}, \"std_within_eps\": {:.5}, \
                 \"answered\": {:.5}, \"std_answered\": {:.5}, \
                 \"rounds\": {:.1}, \"std_rounds\": {:.3}, \
                 \"estimated_mu\": {:.5}}}",
                within.median,
                within.std_dev,
                answered.median,
                answered.std_dev,
                rounds.median,
                rounds.std_dev,
                mu_hat.median
            ));
        }
    }

    // Anchor the report in the workspace root (cargo runs benches with the
    // package directory as CWD), like BENCH_topology.json.
    let path = std::env::var("BENCH_ROBUSTNESS_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json").into()
    });
    let json = format!(
        "{{\n  \"bench\": \"chaos_robustness\",\n  \"algorithm\": \
         \"robust_approximate_quantile(phi=0.5, eps=0.1), Theorem 1.4\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        report_rows.join(",\n")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("could not write {path}: {err}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_chaos_robustness);
criterion_main!(benches);
