//! E6 wall-clock bench: the idealised information-spreading process behind the
//! Ω(log log n + log 1/ε) lower bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound_spread");
    group.sample_size(10);
    for &(n, eps) in &[(1usize << 12, 0.05f64), (1 << 16, 0.01)] {
        group.bench_with_input(
            BenchmarkId::new("spread", format!("n{n}_eps{eps}")),
            &(n, eps),
            |b, &(n, eps)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    lower_bound::spreading_rounds(n, eps, seed)
                        .unwrap()
                        .rounds_to_all_informed
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
