//! Engine round-throughput scaling: rounds/sec of the pull primitive at
//! n ∈ {1k, 4k, 10k, 16k, 100k, 1M}, single-threaded vs all available cores,
//! plus a determinism cross-check between the two configurations.
//!
//! The small sizes (1k/4k/16k) exist to track the **parallel break-even
//! point**: with per-round thread spawning (PR 1) the multi-thread rows lost
//! to 1 thread everywhere below ~16k nodes; the persistent worker pool
//! amortises dispatch and moves that crossover left. Watch the `speedup`
//! column of those rows across PRs.
//!
//! The `program` section measures the same pull schedule **looped vs fused**:
//! the looped run dispatches the pool once per round, the fused run records
//! the schedule into a [`RoundProgram`] and replays it as one resident
//! session. At small n with workers, the per-round hand-off dominates and
//! fusion should win outright; at 1M nodes the round bodies dominate and the
//! two must agree within noise. Each row also pins the engine's dispatch
//! counters for both variants (R dispatches looped, 1 fused) and asserts the
//! final states are bit-identical.
//!
//! Besides the usual criterion output, this bench writes `BENCH_engine.json`
//! (in the workspace root, or `$BENCH_ENGINE_JSON`) so future PRs have a perf
//! trajectory to compare against. Each JSON row reports the **median** of
//! five warmed measurements plus their sample standard deviation (`std_1t` /
//! `std_mt`, `std_loop` / `std_program`), so regressions can be judged
//! against run-to-run noise instead of a single best-of number:
//!
//! ```text
//! cargo bench -p bench --bench engine_scaling
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_net::{par, Engine, EngineConfig, RoundProgram};
use std::time::Instant;

/// Rounds per measurement at a given n (many at small n so dispatch overhead
/// is what gets measured, few at 1M to bound runtime).
fn rounds_for(n: usize) -> u64 {
    match n {
        0..=4_000 => 200,
        4_001..=20_000 => 50,
        20_001..=200_000 => 10,
        _ => 5,
    }
}

fn max_spread_engine(n: usize, seed: u64, threads: usize) -> Engine<u64> {
    let mut engine = Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed));
    engine.set_threads(threads);
    engine
}

/// Runs `rounds` pull rounds of max-spreading and returns rounds/sec.
fn measure_pull_rounds_per_sec(n: usize, threads: usize, rounds: u64) -> f64 {
    let mut engine = max_spread_engine(n, 42, threads);
    let start = Instant::now();
    for _ in 0..rounds {
        engine.pull_round(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = (*st).max(p);
                }
            },
        );
    }
    rounds as f64 / start.elapsed().as_secs_f64()
}

fn final_states(n: usize, threads: usize, rounds: u64) -> Vec<u64> {
    let mut engine = max_spread_engine(n, 42, threads);
    for _ in 0..rounds {
        engine.pull_round(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = (*st).max(p);
                }
            },
        );
    }
    engine.into_states()
}

/// Records the max-spread pull schedule into `program`.
fn record_pull_schedule(program: &mut RoundProgram<'_, u64>, rounds: u64) {
    for _ in 0..rounds {
        program.pull(
            |_, &s| s,
            |_, st, p| {
                if let Some(p) = p {
                    *st = (*st).max(p);
                }
            },
        );
    }
}

/// Runs the schedule as one fused program and returns rounds/sec (recording
/// time excluded — a schedule is recorded once and replayed per epoch).
fn measure_pull_program_rounds_per_sec(n: usize, threads: usize, rounds: u64) -> f64 {
    let mut engine = max_spread_engine(n, 42, threads);
    let mut program: RoundProgram<'_, u64> = RoundProgram::new();
    record_pull_schedule(&mut program, rounds);
    let start = Instant::now();
    engine.run_program(&mut program);
    rounds as f64 / start.elapsed().as_secs_f64()
}

/// Final states plus the pool dispatches the run cost, looped or fused.
fn run_pull_counting_dispatches(
    n: usize,
    threads: usize,
    rounds: u64,
    fused: bool,
) -> (Vec<u64>, u64) {
    let mut engine = max_spread_engine(n, 42, threads);
    let before = engine.metrics().pool_dispatches;
    if fused {
        let mut program: RoundProgram<'_, u64> = RoundProgram::new();
        record_pull_schedule(&mut program, rounds);
        engine.run_program(&mut program);
    } else {
        for _ in 0..rounds {
            engine.pull_round(
                |_, &s| s,
                |_, st, p| {
                    if let Some(p) = p {
                        *st = (*st).max(p);
                    }
                },
            );
        }
    }
    let dispatches = engine.metrics().pool_dispatches - before;
    (engine.into_states(), dispatches)
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    // Worker threads for the "mt" rows (env-configurable) — distinct from the
    // machine's physical parallelism, which the report records separately so
    // a 4-thread run on a 1-core container cannot be misread as 4-core data.
    let threads_mt = par::num_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut report_rows = Vec::new();
    let mut scaling_rows = Vec::new();
    for &n in &[1_000usize, 4_000, 10_000, 16_000, 100_000, 1_000_000] {
        let rounds = rounds_for(n);
        // One criterion iteration runs `rounds` rounds of n node operations.
        group.throughput(Throughput::Elements(rounds * n as u64));
        let mut thread_configs = vec![1];
        if threads_mt > 1 {
            thread_configs.push(threads_mt); // 1 would duplicate the id
        }
        for &threads in &thread_configs {
            group.bench_with_input(
                BenchmarkId::new(format!("pull_n{n}"), format!("{threads}t")),
                &(n, threads),
                |b, &(n, threads)| {
                    b.iter(|| measure_pull_rounds_per_sec(n, threads, rounds));
                },
            );
        }
        // A clean measurement set for the JSON report, outside criterion's
        // sampling so the numbers are directly comparable across PRs: one
        // warm-up measurement, then five samples summarised as median ± std
        // dev (host contention shows up as outliers the median resists, and
        // the std dev records how noisy the run was).
        let measure = |threads: usize| {
            let _warmup = measure_pull_rounds_per_sec(n, threads, rounds);
            let samples: Vec<f64> = (0..5)
                .map(|_| measure_pull_rounds_per_sec(n, threads, rounds))
                .collect();
            criterion::stats::summary(&samples).expect("five samples")
        };
        let single = measure(1);
        let multi = measure(threads_mt);
        let identical = final_states(n, 1, rounds) == final_states(n, threads_mt, rounds);
        assert!(identical, "thread count changed the execution at n = {n}");
        println!(
            "engine_scaling n={n}: {:.2}±{:.2} rounds/s @1t, {:.2}±{:.2} rounds/s @{threads_mt}t \
             ({host_cores} host cores; speedup {:.2}x, deterministic: {identical})",
            single.median,
            single.std_dev,
            multi.median,
            multi.std_dev,
            multi.median / single.median
        );
        report_rows.push(format!(
            "    {{\"n\": {n}, \"threads\": {threads_mt}, \"host_cores\": {host_cores}, \
             \"rounds_per_sec_1t\": {:.3}, \"std_1t\": {:.3}, \
             \"rounds_per_sec_mt\": {:.3}, \"std_mt\": {:.3}, \"speedup\": {:.3}, \
             \"deterministic_across_threads\": {identical}}}",
            single.median,
            single.std_dev,
            multi.median,
            multi.std_dev,
            multi.median / single.median
        ));
        // Parallel efficiency (speedup / threads) is only meaningful when the
        // host can actually run the workers in parallel: on a 1-core
        // container the "mt" rows measure oversubscription, not scaling, so
        // the `scaling` section stays empty there rather than recording
        // numbers that would be misread as real-core data.
        if host_cores > 1 && threads_mt > 1 {
            let speedup = multi.median / single.median;
            let efficiency = speedup / threads_mt as f64;
            scaling_rows.push(format!(
                "    {{\"n\": {n}, \"threads\": {threads_mt}, \"host_cores\": {host_cores}, \
                 \"speedup\": {speedup:.3}, \"parallel_efficiency\": {efficiency:.3}}}"
            ));
        }
    }
    group.finish();

    // Looped-vs-fused A/B over the same pull schedule: same seed, same round
    // count, the only variable is whether each round is its own pool
    // dispatch or a phase of one resident session.
    let mut program_rows = Vec::new();
    for &n in &[1_000usize, 4_000, 10_000, 100_000, 1_000_000] {
        let rounds = rounds_for(n);
        let mut thread_configs = vec![1];
        if threads_mt > 1 {
            thread_configs.push(threads_mt);
        }
        for &threads in &thread_configs {
            let measure = |fused: bool| {
                let run = |f: bool| {
                    if f {
                        measure_pull_program_rounds_per_sec(n, threads, rounds)
                    } else {
                        measure_pull_rounds_per_sec(n, threads, rounds)
                    }
                };
                let _warmup = run(fused);
                let samples: Vec<f64> = (0..5).map(|_| run(fused)).collect();
                criterion::stats::summary(&samples).expect("five samples")
            };
            let looped = measure(false);
            let fused = measure(true);
            let (loop_states, dispatches_loop) =
                run_pull_counting_dispatches(n, threads, rounds, false);
            let (program_states, dispatches_program) =
                run_pull_counting_dispatches(n, threads, rounds, true);
            let identical = loop_states == program_states;
            assert!(identical, "fusion changed the execution at n = {n}");
            let speedup = fused.median / looped.median;
            println!(
                "engine_scaling program n={n} threads={threads}: {:.2}±{:.2} rounds/s looped \
                 ({dispatches_loop} dispatches), {:.2}±{:.2} rounds/s fused \
                 ({dispatches_program} dispatches); speedup {speedup:.2}x, \
                 deterministic: {identical}",
                looped.median, looped.std_dev, fused.median, fused.std_dev
            );
            program_rows.push(format!(
                "    {{\"n\": {n}, \"threads\": {threads}, \"rounds\": {rounds}, \
                 \"host_cores\": {host_cores}, \
                 \"rounds_per_sec_loop\": {:.3}, \"std_loop\": {:.3}, \
                 \"rounds_per_sec_program\": {:.3}, \"std_program\": {:.3}, \
                 \"speedup\": {speedup:.3}, \"identical_states\": {identical}, \
                 \"dispatches_loop\": {dispatches_loop}, \
                 \"dispatches_program\": {dispatches_program}}}",
                looped.median, looped.std_dev, fused.median, fused.std_dev
            ));
        }
    }

    // Anchored in the workspace root (or $BENCH_ENGINE_JSON) so every PR's
    // artifact lands in the same place; the section writer preserves the
    // `active_set` rows contributed by the engine_ablation bench.
    bench::report_json::write_section("results", &report_rows);
    if !scaling_rows.is_empty() {
        bench::report_json::write_section("scaling", &scaling_rows);
    }
    bench::report_json::write_section("program", &program_rows);
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
