//! Approximate-quantile accuracy and round counts per communication topology
//! — quantifying exactly where the paper's complete-graph assumption is
//! load-bearing.
//!
//! For every topology (complete graph, random-regular expander, ring, 2D
//! torus) and every n ∈ {1k, 10k, 100k}, this bench runs the Theorem 2.1
//! tournament algorithm (φ = 0.5, ε = 0.05) over seed-paired trials and
//! records:
//!
//! * the **rank accuracy** of the outputs (mean and max error as fractions
//!   of n, plus the fraction of nodes within ε) — the tournament schedule
//!   fixes the round count, so accuracy is where topology shows up;
//! * the **rumor-spreading round count** (push–pull max-spread to
//!   completion, capped at `4·⌈log₂ n⌉²` rounds) — the round-count signal:
//!   `O(log n)` on the complete graph and the expander, `Θ(diameter)` on
//!   ring and torus, where it hits the cap.
//!
//! Expected picture (pinned loosely by `quantile-gossip/tests/topology.rs`):
//! the expander tracks the complete graph on both signals; ring and torus
//! visibly degrade.
//!
//! Each cell reports the median of 5 trials with a sample standard
//! deviation (`std_*` columns), written to `BENCH_topology.json` in the
//! workspace root (override with `$BENCH_TOPOLOGY_JSON`). Set
//! `TOPOLOGY_QUANTILE_QUICK=1` (CI's bench smoke step does) to shrink sizes
//! and trial counts to a bit-rot check:
//!
//! ```text
//! cargo bench -p bench --bench topology_quantile
//! ```

use analysis::{run_topology_trials, RankOracle, TrialSpec, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::{Engine, EngineConfig, Topology};
use quantile_gossip::approx::{tournament_quantile, TournamentConfig};

const PHI: f64 = 0.5;
const EPS: f64 = 0.05;

fn quick() -> bool {
    std::env::var_os("TOPOLOGY_QUANTILE_QUICK").is_some_and(|v| v != "0")
}

/// The four scenarios, in reporting order. The expander's graph seed is
/// keyed by n so every size gets its own (deterministic) graph; the gossip
/// seeds vary per trial instead.
fn topologies(n: usize) -> [Topology; 4] {
    [
        Topology::Complete,
        Topology::random_regular(16, n as u64),
        Topology::ring(2),
        Topology::Torus2D,
    ]
}

/// Round cap for the rumor-spread measurement: generous for `O(log n)`
/// spreaders, far below the `Θ(n)` a thin ring needs — a capped cell *is*
/// the degradation signal.
fn spread_cap(n: usize) -> u64 {
    let log2 = (usize::BITS - n.leading_zeros()) as u64;
    4 * log2 * log2
}

/// One trial: tournament accuracy plus capped rumor-spread rounds.
struct TrialResult {
    rounds: f64,
    mean_err: f64,
    max_err: f64,
    within_eps: f64,
    spread_rounds: f64,
}

fn run_trial(topology: &Topology, n: usize, seed: u64) -> TrialResult {
    let values = Workload::UniformDistinct.generate(n, seed);
    let oracle = RankOracle::new(&values);
    let target = (PHI * n as f64).ceil();
    let config = EngineConfig::with_seed(seed).topology(*topology);
    let out = tournament_quantile(&values, PHI, EPS, &TournamentConfig::default(), config)
        .expect("valid parameters");
    let errs: Vec<f64> = out
        .outputs
        .iter()
        .map(|o| (oracle.rank(o) as f64 - target).abs() / n as f64)
        .collect();
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    let max_err = errs.iter().cloned().fold(0.0, f64::max);
    let within_eps = errs.iter().filter(|&&e| e <= EPS).count() as f64 / errs.len() as f64;

    // Rumor spreading: push–pull max-spread to completion, capped.
    let cap = spread_cap(n);
    let config = EngineConfig::with_seed(seed ^ 0x5eed).topology(*topology);
    let mut engine = Engine::from_states((0..n as u64).collect(), config);
    let mut spread_rounds = 0u64;
    while engine.states().iter().any(|&v| v != (n - 1) as u64) && spread_rounds < cap {
        engine.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
        spread_rounds += 1;
    }

    TrialResult {
        rounds: out.rounds as f64,
        mean_err,
        max_err,
        within_eps,
        spread_rounds: spread_rounds as f64,
    }
}

fn bench_topology_quantile(c: &mut Criterion) {
    let quick = quick();
    let sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let trials = if quick { 2 } else { 5 };

    // Criterion timing rows at the smallest size, so the per-topology cost
    // of a whole tournament run is tracked like the other benches.
    let mut group = c.benchmark_group("topology_quantile");
    group.sample_size(if quick { 2 } else { 5 });
    for topology in topologies(sizes[0]) {
        group.bench_with_input(
            BenchmarkId::new("tournament", topology.to_string()),
            &topology,
            |b, topology| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_trial(topology, sizes[0], seed).mean_err
                });
            },
        );
    }
    group.finish();

    // The JSON report: seed-paired trials per (topology, n) cell, median ±
    // std dev over trials — directly comparable across PRs.
    let mut report_rows = Vec::new();
    for &n in sizes {
        let spec = TrialSpec::new(42, trials);
        let per_topology = run_topology_trials(&spec, &topologies(n), |topology, _i, seed| {
            run_trial(topology, n, seed)
        });
        for (topology, results) in topologies(n).iter().zip(&per_topology) {
            let stat = |f: &dyn Fn(&TrialResult) -> f64| {
                let samples: Vec<f64> = results.iter().map(f).collect();
                criterion::stats::summary(&samples).expect("at least one trial")
            };
            let rounds = stat(&|r| r.rounds);
            let mean_err = stat(&|r| r.mean_err);
            let max_err = stat(&|r| r.max_err);
            let within = stat(&|r| r.within_eps);
            let spread = stat(&|r| r.spread_rounds);
            println!(
                "topology_quantile n={n} {topology}: rounds={:.0} mean_err={:.4}±{:.4} \
                 within_eps={:.3} spread_rounds={:.0}±{:.1} (cap {})",
                rounds.median,
                mean_err.median,
                mean_err.std_dev,
                within.median,
                spread.median,
                spread.std_dev,
                spread_cap(n)
            );
            report_rows.push(format!(
                "    {{\"topology\": \"{topology}\", \"n\": {n}, \"phi\": {PHI}, \
                 \"epsilon\": {EPS}, \"trials\": {trials}, \
                 \"rounds\": {:.1}, \"std_rounds\": {:.3}, \
                 \"mean_rank_err\": {:.5}, \"std_mean_rank_err\": {:.5}, \
                 \"max_rank_err\": {:.5}, \"std_max_rank_err\": {:.5}, \
                 \"within_eps\": {:.5}, \"std_within_eps\": {:.5}, \
                 \"spread_rounds\": {:.1}, \"std_spread_rounds\": {:.3}, \
                 \"spread_cap\": {}}}",
                rounds.median,
                rounds.std_dev,
                mean_err.median,
                mean_err.std_dev,
                max_err.median,
                max_err.std_dev,
                within.median,
                within.std_dev,
                spread.median,
                spread.std_dev,
                spread_cap(n)
            ));
        }
    }

    // Anchor the report in the workspace root (cargo runs benches with the
    // package directory as CWD), like BENCH_engine.json.
    let path = std::env::var("BENCH_TOPOLOGY_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_topology.json").into()
    });
    let json = format!(
        "{{\n  \"bench\": \"topology_quantile\",\n  \"algorithm\": \
         \"tournament_quantile(phi=0.5, eps=0.05) + push-pull max-spread\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        report_rows.join(",\n")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("could not write {path}: {err}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_topology_quantile);
criterion_main!(benches);
