//! E1 wall-clock bench: the exact quantile algorithm (Theorem 1.1) vs the
//! KDG03 selection baseline on the same simulated network.

use analysis::Workload;
use baselines::{kdg_selection, KdgSelectionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::EngineConfig;
use quantile_gossip::{exact, NarrowingConfig};

fn bench_exact_vs_kdg(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_quantile");
    group.sample_size(10);
    for &n in &[1usize << 10, 1 << 12] {
        let values = Workload::UniformDistinct.generate(n, 42);
        group.bench_with_input(BenchmarkId::new("ours_thm_1_1", n), &values, |b, values| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                exact::exact_quantile(
                    values,
                    0.5,
                    &NarrowingConfig::default(),
                    EngineConfig::with_seed(seed),
                )
                .unwrap()
                .rounds
            })
        });
        group.bench_with_input(
            BenchmarkId::new("kdg03_baseline", n),
            &values,
            |b, values| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    kdg_selection::exact_quantile(
                        values,
                        0.5,
                        &KdgSelectionConfig::default(),
                        EngineConfig::with_seed(seed),
                    )
                    .unwrap()
                    .rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_kdg);
criterion_main!(benches);
