//! E5 wall-clock bench: the robust tournament under increasing failure rates.

use analysis::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::{EngineConfig, FailureModel};
use quantile_gossip::{robust, RobustConfig};

fn bench_robust(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust_failures");
    group.sample_size(10);
    let values = Workload::UniformDistinct.generate(1 << 13, 11);
    for &mu in &[0.0f64, 0.3, 0.6] {
        group.bench_with_input(
            BenchmarkId::new("mu", format!("{mu}")),
            &values,
            |b, values| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let cfg =
                        EngineConfig::with_seed(seed).failure(FailureModel::uniform(mu).unwrap());
                    robust::robust_approximate_quantile(
                        values,
                        0.5,
                        0.08,
                        &RobustConfig::default(),
                        cfg,
                    )
                    .unwrap()
                    .answered_fraction
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_robust);
criterion_main!(benches);
