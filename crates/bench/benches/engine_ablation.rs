//! Ablation: the per-node `ProtocolRunner` path vs the direct `Engine` rounds
//! used by the algorithms, on the same rumor-spreading task. Demonstrates that
//! the faster path does not change the dynamics (same rounds to convergence,
//! statistically) while quantifying its overhead difference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::{Engine, EngineConfig, NodeProtocol, ProtocolRunner};

#[derive(Debug, Clone)]
struct MaxSpread {
    current: u64,
    target: u64,
}

impl NodeProtocol for MaxSpread {
    type Message = u64;
    type Output = u64;
    fn serve(&self) -> u64 {
        self.current
    }
    fn on_pull(&mut self, _round: u64, pulled: Option<u64>) {
        if let Some(p) = pulled {
            self.current = self.current.max(p);
        }
    }
    fn is_finished(&self) -> bool {
        self.current == self.target
    }
    fn output(&self) -> u64 {
        self.current
    }
}

fn bench_engine_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ablation");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 14] {
        group.bench_with_input(BenchmarkId::new("direct_engine", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut e =
                    Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed));
                while e.states().iter().any(|&v| v != (n - 1) as u64) {
                    e.pull_round(
                        |_, &s| s,
                        |_, st, p| {
                            if let Some(p) = p {
                                *st = (*st).max(p);
                            }
                        },
                    );
                }
                e.round()
            })
        });
        group.bench_with_input(BenchmarkId::new("protocol_runner", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let nodes: Vec<MaxSpread> = (0..n)
                    .map(|v| MaxSpread {
                        current: v as u64,
                        target: (n - 1) as u64,
                    })
                    .collect();
                ProtocolRunner::new(nodes, EngineConfig::with_seed(seed))
                    .run(10_000)
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_ablation);
criterion_main!(benches);
