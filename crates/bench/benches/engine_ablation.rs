//! Two ablations of the engine's round machinery:
//!
//! 1. **Per-pass round costs** (`engine_rounds`): the steady-state cost of one
//!    round of each primitive — pull (a single fused double-buffer dispatch),
//!    push and push–pull (sender pass + CSR bucketing + fused delivery pass),
//!    and `local_step` — with and without failure injection, so a change to
//!    any pass (snapshot fusion, CSR parallelisation, RNG keying, failure
//!    specialisation) is visible per primitive instead of only through whole
//!    benchmarks.
//! 2. **Dispatch overhead** (`engine_ablation`): the per-node `ProtocolRunner`
//!    path vs the direct `Engine` rounds used by the algorithms, on the same
//!    rumor-spreading task — demonstrating that the faster path does not
//!    change the dynamics while quantifying its overhead difference.
//!
//! Set `ENGINE_ABLATION_QUICK=1` (CI's bench smoke step does) to shrink the
//! sizes and sample counts so a run finishes in seconds — enough to catch
//! bit-rot, not enough for stable numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::{Engine, EngineConfig, FailureModel, NodeProtocol, ProtocolRunner};

fn quick() -> bool {
    std::env::var_os("ENGINE_ABLATION_QUICK").is_some_and(|v| v != "0")
}

fn round_engine(n: usize, failure: FailureModel) -> Engine<u64> {
    let config = EngineConfig::with_seed(7).failure(failure);
    Engine::from_states((0..n as u64).collect(), config)
}

fn bench_round_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rounds");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() {
        &[1 << 12]
    } else {
        &[1 << 12, 1 << 14, 1 << 17]
    };
    for &n in sizes {
        for (label, failure) in [
            ("", FailureModel::None),
            ("_mu0.2", FailureModel::uniform(0.2).expect("valid p")),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("pull_round{label}"), n),
                &n,
                |b, _| {
                    let mut e = round_engine(n, failure.clone());
                    b.iter(|| {
                        e.pull_round(
                            |_, &s| s,
                            |_, st, p| {
                                if let Some(p) = p {
                                    *st = (*st).max(p);
                                }
                            },
                        )
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("push_round{label}"), n),
                &n,
                |b, _| {
                    let mut e = round_engine(n, failure.clone());
                    b.iter(|| {
                        e.push_round(|_, &s| Some(s), |_, st, m| *st = (*st).max(m), |_, _, _| {})
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("push_pull_round{label}"), n),
                &n,
                |b, _| {
                    let mut e = round_engine(n, failure.clone());
                    b.iter(|| e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m)));
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("local_step", n), &n, |b, _| {
            let mut e = round_engine(n, FailureModel::None);
            b.iter(|| {
                e.local_step(|v, st, _| *st = st.wrapping_add(v as u64));
            });
        });
    }
    group.finish();
}

#[derive(Debug, Clone)]
struct MaxSpread {
    current: u64,
    target: u64,
}

impl NodeProtocol for MaxSpread {
    type Message = u64;
    type Output = u64;
    fn serve(&self) -> u64 {
        self.current
    }
    fn on_pull(&mut self, _round: u64, pulled: Option<u64>) {
        if let Some(p) = pulled {
            self.current = self.current.max(p);
        }
    }
    fn is_finished(&self) -> bool {
        self.current == self.target
    }
    fn output(&self) -> u64 {
        self.current
    }
}

fn bench_engine_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ablation");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() {
        &[1 << 12]
    } else {
        &[1 << 12, 1 << 14]
    };
    for &n in sizes {
        group.bench_with_input(BenchmarkId::new("direct_engine", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut e =
                    Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed));
                while e.states().iter().any(|&v| v != (n - 1) as u64) {
                    e.pull_round(
                        |_, &s| s,
                        |_, st, p| {
                            if let Some(p) = p {
                                *st = (*st).max(p);
                            }
                        },
                    );
                }
                e.round()
            })
        });
        group.bench_with_input(BenchmarkId::new("protocol_runner", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let nodes: Vec<MaxSpread> = (0..n)
                    .map(|v| MaxSpread {
                        current: v as u64,
                        target: (n - 1) as u64,
                    })
                    .collect();
                ProtocolRunner::new(nodes, EngineConfig::with_seed(seed))
                    .run(10_000)
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_primitives, bench_engine_ablation);
criterion_main!(benches);
