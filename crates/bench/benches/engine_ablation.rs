//! Three ablations of the engine's round machinery:
//!
//! 1. **Per-pass round costs** (`engine_rounds`): the steady-state cost of one
//!    round of each primitive — pull (a single fused double-buffer dispatch),
//!    push and push–pull (sender pass + CSR bucketing + fused delivery pass),
//!    and `local_step` — with and without failure injection, so a change to
//!    any pass (snapshot fusion, CSR parallelisation, RNG keying, failure
//!    specialisation) is visible per primitive instead of only through whole
//!    benchmarks.
//! 2. **Sparse vs dense rounds** (`active_set`): one pull round over the
//!    whole network vs `pull_round_on` over active fractions
//!    {100 %, 10 %, 1 %} at n ∈ {100k, 1M} — the copy-on-write/active-set
//!    payoff. Rows are recorded into the `active_set` section of
//!    `BENCH_engine.json` (one row per `(n, active_frac)`, median-of-5 with
//!    `std_*`, same conventions as the `results` section).
//! 3. **Dispatch overhead** (`engine_ablation`): the per-node `ProtocolRunner`
//!    path vs the direct `Engine` rounds used by the algorithms, on the same
//!    rumor-spreading task — demonstrating that the faster path does not
//!    change the dynamics while quantifying its overhead difference.
//!
//! Set `ENGINE_ABLATION_QUICK=1` (CI's bench smoke step does) to shrink the
//! sizes and sample counts so a run finishes in seconds — enough to catch
//! bit-rot, not enough for stable numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::{
    par, ActiveSet, Engine, EngineConfig, FailureModel, NodeProtocol, ProtocolRunner,
};
use std::time::Instant;

fn quick() -> bool {
    std::env::var_os("ENGINE_ABLATION_QUICK").is_some_and(|v| v != "0")
}

fn round_engine(n: usize, failure: FailureModel) -> Engine<u64> {
    let config = EngineConfig::with_seed(7).failure(failure);
    Engine::from_states((0..n as u64).collect(), config)
}

fn bench_round_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rounds");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() {
        &[1 << 12]
    } else {
        &[1 << 12, 1 << 14, 1 << 17]
    };
    for &n in sizes {
        for (label, failure) in [
            ("", FailureModel::None),
            ("_mu0.2", FailureModel::uniform(0.2).expect("valid p")),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("pull_round{label}"), n),
                &n,
                |b, _| {
                    let mut e = round_engine(n, failure.clone());
                    b.iter(|| {
                        e.pull_round(
                            |_, &s| s,
                            |_, st, p| {
                                if let Some(p) = p {
                                    *st = (*st).max(p);
                                }
                            },
                        )
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("push_round{label}"), n),
                &n,
                |b, _| {
                    let mut e = round_engine(n, failure.clone());
                    b.iter(|| {
                        e.push_round(|_, &s| Some(s), |_, st, m| *st = (*st).max(m), |_, _, _| {})
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("push_pull_round{label}"), n),
                &n,
                |b, _| {
                    let mut e = round_engine(n, failure.clone());
                    b.iter(|| e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m)));
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("local_step", n), &n, |b, _| {
            let mut e = round_engine(n, FailureModel::None);
            b.iter(|| {
                e.local_step(|v, st, _| *st = st.wrapping_add(v as u64));
            });
        });
    }
    group.finish();
}

/// One max-spread pull round, dense or over an active subset; returns
/// rounds/sec over `rounds` repetitions.
fn measure_pull(n: usize, active: Option<&ActiveSet>, rounds: u64) -> f64 {
    let mut e = round_engine(n, FailureModel::None);
    e.set_threads(par::num_threads());
    let apply = |_: usize, st: &mut u64, p: Option<u64>| {
        if let Some(p) = p {
            *st = (*st).max(p);
        }
    };
    // Pay the lazy back-buffer allocation before timing.
    e.pull_round(|_, &s| s, apply);
    let start = Instant::now();
    for _ in 0..rounds {
        match active {
            Some(a) => {
                e.pull_round_on(a, |_, &s| s, apply);
            }
            None => {
                e.pull_round(|_, &s| s, apply);
            }
        }
    }
    rounds as f64 / start.elapsed().as_secs_f64()
}

/// Median ± std dev of five warmed measurements (the JSON-row convention of
/// engine_scaling).
fn summarize_pull(n: usize, active: Option<&ActiveSet>, rounds: u64) -> criterion::stats::Summary {
    let _warmup = measure_pull(n, active, rounds);
    let samples: Vec<f64> = (0..5).map(|_| measure_pull(n, active, rounds)).collect();
    criterion::stats::summary(&samples).expect("five samples")
}

fn bench_active_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("active_set");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() {
        &[1 << 14]
    } else {
        &[100_000, 1_000_000]
    };
    // Rounds per measurement, scaled to the *dense* cost at n.
    let rounds_for = |n: usize| -> u64 {
        match n {
            0..=20_000 => 50,
            20_001..=200_000 => 20,
            _ => 5,
        }
    };
    let threads = par::num_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rows = Vec::new();
    for &n in sizes {
        let rounds = rounds_for(n);
        group.bench_with_input(BenchmarkId::new("dense_pull", n), &n, |b, &n| {
            let mut e = round_engine(n, FailureModel::None);
            e.set_threads(par::num_threads());
            b.iter(|| {
                e.pull_round(
                    |_, &s| s,
                    |_, st, p| {
                        if let Some(p) = p {
                            *st = (*st).max(p);
                        }
                    },
                )
            });
        });
        let dense = summarize_pull(n, None, rounds);
        for &(label, stride) in &[("100pct", 1usize), ("10pct", 10), ("1pct", 100)] {
            let active = ActiveSet::from_fn(n, |v| v % stride == 0);
            let frac = active.len() as f64 / n as f64;
            group.bench_with_input(
                BenchmarkId::new(format!("sparse_pull_{label}"), n),
                &n,
                |b, &n| {
                    let mut e = round_engine(n, FailureModel::None);
                    e.set_threads(par::num_threads());
                    b.iter(|| {
                        e.pull_round_on(
                            &active,
                            |_, &s| s,
                            |_, st, p| {
                                if let Some(p) = p {
                                    *st = (*st).max(p);
                                }
                            },
                        )
                    });
                },
            );
            let sparse = summarize_pull(n, Some(&active), rounds);
            let speedup = sparse.median / dense.median;
            println!(
                "active_set n={n} frac={frac:.2}: dense {:.2}±{:.2} rounds/s, \
                 sparse {:.2}±{:.2} rounds/s (speedup {speedup:.2}x)",
                dense.median, dense.std_dev, sparse.median, sparse.std_dev
            );
            rows.push(format!(
                "    {{\"n\": {n}, \"active_frac\": {frac:.4}, \"threads\": {threads}, \
                 \"host_cores\": {host_cores}, \
                 \"rounds_per_sec_dense\": {:.3}, \"std_dense\": {:.3}, \
                 \"rounds_per_sec_sparse\": {:.3}, \"std_sparse\": {:.3}, \
                 \"speedup\": {speedup:.3}}}",
                dense.median, dense.std_dev, sparse.median, sparse.std_dev
            ));
        }
    }
    group.finish();
    bench::report_json::write_section("active_set", &rows);
}

#[derive(Debug, Clone)]
struct MaxSpread {
    current: u64,
    target: u64,
}

impl NodeProtocol for MaxSpread {
    type Message = u64;
    type Output = u64;
    fn serve(&self) -> u64 {
        self.current
    }
    fn on_pull(&mut self, _round: u64, pulled: Option<u64>) {
        if let Some(p) = pulled {
            self.current = self.current.max(p);
        }
    }
    fn is_finished(&self) -> bool {
        self.current == self.target
    }
    fn output(&self) -> u64 {
        self.current
    }
}

fn bench_engine_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ablation");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() {
        &[1 << 12]
    } else {
        &[1 << 12, 1 << 14]
    };
    for &n in sizes {
        group.bench_with_input(BenchmarkId::new("direct_engine", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut e =
                    Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(seed));
                while e.states().iter().any(|&v| v != (n - 1) as u64) {
                    e.pull_round(
                        |_, &s| s,
                        |_, st, p| {
                            if let Some(p) = p {
                                *st = (*st).max(p);
                            }
                        },
                    );
                }
                e.round()
            })
        });
        group.bench_with_input(BenchmarkId::new("protocol_runner", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let nodes: Vec<MaxSpread> = (0..n)
                    .map(|v| MaxSpread {
                        current: v as u64,
                        target: (n - 1) as u64,
                    })
                    .collect();
                ProtocolRunner::new(nodes, EngineConfig::with_seed(seed))
                    .run(10_000)
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_primitives,
    bench_active_set,
    bench_engine_ablation
);
criterion_main!(benches);
