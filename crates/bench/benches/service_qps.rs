//! Multi-query service throughput: round amortisation, payload cost, and
//! incremental-recompute speedup.
//!
//! Three experiments, all on the batched [`QuantileService`]:
//!
//! * **Batch grid** — for every n ∈ {10k, 100k, 1M} and query-vector size
//!   q ∈ {1, 8, 64}: the median of five epochs (fresh service each, so the
//!   cold first-epoch cost is what's measured) answering all q queries
//!   through shared tournament rounds. Reports rounds, wall-clock with a
//!   sample standard deviation (`std_epoch_secs`/`std_qps`, so the CI drift
//!   check can band-compare the wall-clock keys instead of skipping them),
//!   queries/second, a per-phase wall-clock breakdown (sample-collect /
//!   lane-apply / record / vote, from [`ServiceOutcome::timings`]), the
//!   payload cost in bytes per node per round
//!   ([`Metrics::mean_bits_per_node_round`]), and the round amortisation
//!   `Σᵢ solo_roundsᵢ / rounds`.
//! * **Batch vs sequential** — the same q queries as q back-to-back
//!   [`tournament_quantile`] runs. Measured directly up to n = 100k and at
//!   q = 1 for every n (so the 1M single-query baseline is real); the
//!   remaining 1M cells extrapolate as `q ×` the measured single-query run
//!   (the JSON row says which, in `seq_mode` — nothing is silently
//!   dropped).
//! * **Incremental vs full** — at n = 100k, q = 8: epoch, mutate a dirty
//!   fraction ∈ {0.1%, 1%, 10%} of holders, then time the sparse incremental
//!   epoch against a from-scratch recompute of the same inputs.
//!
//! Results land in `BENCH_service.json` in the workspace root (override with
//! `$BENCH_SERVICE_JSON`). Set `SERVICE_QPS_QUICK=1` (CI's bench smoke step
//! does) to shrink the grid to a bit-rot check:
//!
//! ```text
//! cargo bench -p bench --bench service_qps
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::EngineConfig;
use quantile_gossip::{
    tournament_quantile, EpochMode, QuantileQuery, QuantileService, ServiceConfig, TournamentConfig,
};
use std::time::Instant;

fn quick() -> bool {
    std::env::var_os("SERVICE_QPS_QUICK").is_some_and(|v| v != "0")
}

/// Distinct pseudorandom holder values.
fn values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

/// The q-query vector: quantile targets spread over [0.25, 0.75] at ε = 5%,
/// so every lane's schedule has comparable length and the shared round
/// window stays close to a single query's.
fn query_vector(q: usize) -> Vec<QuantileQuery> {
    (0..q)
        .map(|i| {
            let phi = if q == 1 {
                0.5
            } else {
                0.25 + 0.5 * i as f64 / (q - 1) as f64
            };
            QuantileQuery::new(phi, 0.05)
        })
        .collect()
}

struct BatchCell {
    n: usize,
    q: usize,
    rounds: u64,
    solo_rounds_total: u64,
    amortisation: f64,
    epoch_secs: f64,
    std_epoch_secs: f64,
    qps: f64,
    std_qps: f64,
    collect_secs: f64,
    apply_secs: f64,
    record_secs: f64,
    vote_secs: f64,
    bytes_per_node_round: f64,
    seq_secs: f64,
    seq_rounds: u64,
    seq_mode: &'static str,
}

/// Median and sample standard deviation of a set of timings.
fn median_std(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let denom = samples.len().saturating_sub(1).max(1) as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / denom;
    (median, var.sqrt())
}

/// Median-of-`trials` batched epochs (fresh service per trial) plus the
/// sequential comparison (measured once — it is a baseline, not the quantity
/// under drift surveillance).
fn run_batch_cell(
    n: usize,
    q: usize,
    seed: u64,
    trials: usize,
    measure_sequential: bool,
) -> BatchCell {
    let vals = values(n);
    let queries = query_vector(q);
    let ec = EngineConfig::with_seed(seed);
    let mut epoch_samples = Vec::with_capacity(trials);
    let mut outcomes = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut svc = QuantileService::new(&vals, &queries, ServiceConfig::default(), ec.clone())
            .expect("valid service parameters");
        let t = Instant::now();
        let out = svc.epoch().expect("epoch");
        epoch_samples.push(t.elapsed().as_secs_f64());
        outcomes.push(out);
    }
    let mut sorted = epoch_samples.clone();
    let (epoch_secs, std_epoch_secs) = median_std(&mut sorted);
    let mut qps_samples: Vec<f64> = epoch_samples
        .iter()
        .map(|&s| q as f64 / s.max(1e-9))
        .collect();
    let (_, std_qps) = median_std(&mut qps_samples);
    // Report the phase breakdown of the median trial, so the columns sum to
    // (roughly) the reported wall-clock.
    let median_trial = epoch_samples
        .iter()
        .position(|&s| s == epoch_secs)
        .unwrap_or(0);
    let out = &outcomes[median_trial];

    let (seq_secs, seq_rounds, seq_mode) = if measure_sequential {
        let t = Instant::now();
        let mut rounds = 0u64;
        for query in &queries {
            let solo = tournament_quantile(
                &vals,
                query.phi,
                query.epsilon,
                &TournamentConfig::default(),
                ec.clone(),
            )
            .expect("solo run");
            rounds += solo.rounds;
        }
        (t.elapsed().as_secs_f64(), rounds, "measured")
    } else {
        // One solo run, scaled by q: the q runs are independent and
        // identically sized, so the extrapolation is linear by construction.
        let t = Instant::now();
        tournament_quantile(
            &vals,
            queries[0].phi,
            queries[0].epsilon,
            &TournamentConfig::default(),
            ec.clone(),
        )
        .expect("solo run");
        let one = t.elapsed().as_secs_f64();
        (
            one * q as f64,
            out.per_query.iter().map(|c| c.solo_rounds).sum(),
            "extrapolated",
        )
    };

    BatchCell {
        n,
        q,
        rounds: out.rounds,
        solo_rounds_total: out.per_query.iter().map(|c| c.solo_rounds).sum(),
        amortisation: out.amortisation(),
        epoch_secs,
        std_epoch_secs,
        qps: q as f64 / epoch_secs.max(1e-9),
        std_qps,
        collect_secs: out.timings.collect_secs,
        apply_secs: out.timings.apply_secs,
        record_secs: out.timings.record_secs,
        vote_secs: out.timings.vote_secs,
        bytes_per_node_round: out.metrics.mean_bits_per_node_round() / 8.0,
        seq_secs,
        seq_rounds,
        seq_mode,
    }
}

/// How the dirty holders' values move between epochs. The dirty *closure* —
/// and with it the incremental speedup — depends on this, not just on the
/// dirty count: a small drift rarely changes any tournament comparison, so
/// the replay stays local, while replacing values with fresh random draws
/// can move the converged quantile value itself, which dirties every node's
/// trajectory tail and forces a near-full (engine-free) dataflow replay.
#[derive(Clone, Copy)]
enum Perturbation {
    /// Each dirty holder's value moves by +1 — a sensor-style small drift.
    Drift,
    /// Each dirty holder's value is replaced by a fresh random draw.
    Replace,
}

impl Perturbation {
    fn label(self) -> &'static str {
        match self {
            Perturbation::Drift => "drift",
            Perturbation::Replace => "replace",
        }
    }
}

struct IncrementalCell {
    n: usize,
    q: usize,
    dirty_fraction: f64,
    dirty_nodes: usize,
    perturbation: Perturbation,
    rounds: u64,
    inc_secs: f64,
    replay_secs: f64,
    patch_secs: f64,
    full_secs: f64,
    speedup: f64,
}

/// Epoch, dirty a fraction of holders, and time incremental vs full.
fn run_incremental_cell(
    n: usize,
    q: usize,
    dirty_fraction: f64,
    perturbation: Perturbation,
    seed: u64,
) -> IncrementalCell {
    let mut vals = values(n);
    let queries = query_vector(q);
    let ec = EngineConfig::with_seed(seed);
    let mut svc = QuantileService::new(&vals, &queries, ServiceConfig::default(), ec.clone())
        .expect("valid service parameters");
    svc.epoch().expect("warm-up epoch");

    let k = ((n as f64 * dirty_fraction).round() as usize).max(1);
    // Spread the edits over the id space.
    for j in 0..k {
        let node = (j * n) / k;
        let value = match perturbation {
            Perturbation::Drift => vals[node].wrapping_add(1),
            Perturbation::Replace => (node as u64)
                .wrapping_mul(0xD134_2543_DE82_EF95)
                .wrapping_add(seed),
        };
        svc.set_value(node, value).expect("in range");
        vals[node] = value;
    }
    let dirty_nodes = svc.dirty_nodes();

    let t = Instant::now();
    let inc = svc.epoch().expect("incremental epoch");
    let inc_secs = t.elapsed().as_secs_f64();
    assert!(
        matches!(inc.mode, EpochMode::Incremental { .. }),
        "dirty fraction {dirty_fraction} unexpectedly exceeded the threshold"
    );

    let mut fresh = QuantileService::new(&vals, &queries, ServiceConfig::default(), ec)
        .expect("valid service parameters");
    let t = Instant::now();
    let full = fresh.epoch().expect("full epoch");
    let full_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        inc.answers, full.answers,
        "incremental epoch diverged from the full recompute"
    );

    IncrementalCell {
        n,
        q,
        dirty_fraction,
        dirty_nodes,
        perturbation,
        rounds: inc.rounds,
        inc_secs,
        replay_secs: inc.timings.replay_secs,
        patch_secs: inc.timings.vote_secs,
        full_secs,
        speedup: full_secs / inc_secs.max(1e-9),
    }
}

fn bench_service_qps(c: &mut Criterion) {
    let quick = quick();
    let sizes: &[usize] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let qs: &[usize] = if quick { &[1, 8] } else { &[1, 8, 64] };
    // Sequential timing is measured directly where affordable (every cell up
    // to this size, plus every q = 1 cell — a single solo run is affordable
    // at any n); the remaining rows are marked "extrapolated".
    let seq_measure_cap: usize = 100_000;
    let trials = if quick { 3 } else { 5 };

    // Criterion timing rows at the smallest size: the cost of one batched
    // epoch per query-vector size.
    let mut group = c.benchmark_group("service_qps");
    group.sample_size(2);
    for &q in qs {
        group.bench_with_input(BenchmarkId::new("epoch", q), &q, |b, &q| {
            let vals = values(sizes[0]);
            let queries = query_vector(q);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut svc = QuantileService::new(
                    &vals,
                    &queries,
                    ServiceConfig::default(),
                    EngineConfig::with_seed(seed),
                )
                .expect("valid service parameters");
                svc.epoch().expect("epoch").rounds
            });
        });
    }
    group.finish();

    let mut rows = Vec::new();

    for &n in sizes {
        for &q in qs {
            let cell = run_batch_cell(n, q, 42, trials, n <= seq_measure_cap || q == 1);
            println!(
                "service_qps n={n} q={q}: rounds={} (solo total {}), amortisation={:.1}x, \
                 epoch={:.3}s±{:.3} (collect {:.3}s, apply {:.3}s, record {:.3}s, vote {:.3}s) \
                 qps={:.1} payload={:.1} B/node/round, sequential={:.3}s ({})",
                cell.rounds,
                cell.solo_rounds_total,
                cell.amortisation,
                cell.epoch_secs,
                cell.std_epoch_secs,
                cell.collect_secs,
                cell.apply_secs,
                cell.record_secs,
                cell.vote_secs,
                cell.qps,
                cell.bytes_per_node_round,
                cell.seq_secs,
                cell.seq_mode
            );
            rows.push(format!(
                "    {{\"kind\": \"batch\", \"n\": {}, \"q\": {}, \"rounds\": {}, \
                 \"solo_rounds_total\": {}, \"amortisation\": {:.3}, \
                 \"epoch_secs\": {:.6}, \"std_epoch_secs\": {:.6}, \
                 \"qps\": {:.3}, \"std_qps\": {:.3}, \
                 \"collect_secs\": {:.6}, \"apply_secs\": {:.6}, \
                 \"record_secs\": {:.6}, \"vote_secs\": {:.6}, \
                 \"bytes_per_node_round\": {:.3}, \"seq_secs\": {:.6}, \
                 \"seq_rounds\": {}, \"seq_mode\": \"{}\", \"wall_speedup\": {:.3}}}",
                cell.n,
                cell.q,
                cell.rounds,
                cell.solo_rounds_total,
                cell.amortisation,
                cell.epoch_secs,
                cell.std_epoch_secs,
                cell.qps,
                cell.std_qps,
                cell.collect_secs,
                cell.apply_secs,
                cell.record_secs,
                cell.vote_secs,
                cell.bytes_per_node_round,
                cell.seq_secs,
                cell.seq_rounds,
                cell.seq_mode,
                cell.seq_secs / cell.epoch_secs.max(1e-9),
            ));
        }
    }

    let inc_n = if quick { 10_000 } else { 100_000 };
    let fractions: &[f64] = if quick { &[0.01] } else { &[0.001, 0.01, 0.1] };
    for &fraction in fractions {
        for perturbation in [Perturbation::Drift, Perturbation::Replace] {
            let cell = run_incremental_cell(inc_n, 8, fraction, perturbation, 1337);
            println!(
                "service_qps incremental n={} q=8 dirty={:.3}% ({} holders, {}): \
                 inc={:.3}s (replay {:.3}s, patch {:.3}s) full={:.3}s speedup={:.1}x",
                cell.n,
                100.0 * cell.dirty_fraction,
                cell.dirty_nodes,
                cell.perturbation.label(),
                cell.inc_secs,
                cell.replay_secs,
                cell.patch_secs,
                cell.full_secs,
                cell.speedup
            );
            rows.push(format!(
                "    {{\"kind\": \"incremental\", \"n\": {}, \"q\": {}, \
                 \"dirty_fraction\": {}, \"dirty_nodes\": {}, \
                 \"perturbation\": \"{}\", \"rounds\": {}, \
                 \"inc_secs\": {:.6}, \"replay_secs\": {:.6}, \"patch_secs\": {:.6}, \
                 \"full_secs\": {:.6}, \"speedup\": {:.3}}}",
                cell.n,
                cell.q,
                cell.dirty_fraction,
                cell.dirty_nodes,
                cell.perturbation.label(),
                cell.rounds,
                cell.inc_secs,
                cell.replay_secs,
                cell.patch_secs,
                cell.full_secs,
                cell.speedup,
            ));
        }
    }

    // Anchor the report in the workspace root, like the other BENCH_*.json.
    let path = std::env::var("BENCH_SERVICE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json").into()
    });
    let json = format!(
        "{{\n  \"bench\": \"service_qps\",\n  \"algorithm\": \
         \"QuantileService batched epochs (eps=0.05, phi spread over [0.25, 0.75])\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("could not write {path}: {err}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_service_qps);
criterion_main!(benches);
