//! E2/E3 wall-clock bench: the tournament approximation algorithm across n and ε.

use analysis::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_net::EngineConfig;
use quantile_gossip::{approx, TournamentConfig};

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_quantile");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let values = Workload::UniformDistinct.generate(n, 7);
        group.bench_with_input(BenchmarkId::new("eps_0.05", n), &values, |b, values| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                approx::tournament_quantile(
                    values,
                    0.5,
                    0.05,
                    &TournamentConfig::default(),
                    EngineConfig::with_seed(seed),
                )
                .unwrap()
                .rounds
            })
        });
    }
    let values = Workload::UniformDistinct.generate(1 << 14, 9);
    for &eps in &[0.25f64, 0.1, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("n_16384_eps", format!("{eps}")),
            &values,
            |b, values| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    approx::tournament_quantile(
                        values,
                        0.25,
                        eps,
                        &TournamentConfig::default(),
                        EngineConfig::with_seed(seed),
                    )
                    .unwrap()
                    .rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
