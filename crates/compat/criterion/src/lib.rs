//! A minimal, dependency-free stand-in for the subset of the `criterion` 0.5
//! API used by this workspace's benches.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small wall-clock harness behind the same entry points the real crate
//! exposes: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], [`criterion_group!`]
//! and [`criterion_main!`]. Benches written against this crate compile
//! unchanged against upstream criterion.
//!
//! Differences from upstream, by design: no statistical outlier analysis, no
//! HTML reports, no baseline storage — each benchmark runs `sample_size`
//! timed iterations after a warm-up phase (up to three runs, stopping early
//! once ~200 ms of warm-up has elapsed) and prints min / median / max wall
//! time plus mean ± standard deviation. The [`stats`] module exposes the
//! same summary statistics for benches that do their own measurement (e.g.
//! the `engine_scaling` report writer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary statistics over measurement samples (no upstream counterpart as a
/// public API; kept dependency-free for the report-writing benches).
pub mod stats {
    /// Five-figure summary of a sample set.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Summary {
        /// Smallest sample.
        pub min: f64,
        /// Median (mean of the two central order statistics for even sizes).
        pub median: f64,
        /// Arithmetic mean.
        pub mean: f64,
        /// Sample standard deviation (the `n − 1` estimator; 0 for a single
        /// sample).
        pub std_dev: f64,
        /// Largest sample.
        pub max: f64,
    }

    /// Computes the [`Summary`] of `samples`; `None` when empty.
    pub fn summary(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN benchmark sample"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n;
        let std_dev = if sorted.len() < 2 {
            0.0
        } else {
            let var = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        Some(Summary {
            min: sorted[0],
            median,
            mean,
            std_dev,
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Per-iteration work declaration, mirroring `criterion::Throughput`.
///
/// Declaring a group's throughput makes the harness print a rate (elements
/// or bytes per second, from the median sample time) next to the wall-clock
/// summary — rounds/s and nodes/s land in bench output without hand
/// post-processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many elements (rate in `elem/s`).
    Elements(u64),
    /// Each iteration processes this many bytes (rate in binary `B/s`).
    Bytes(u64),
    /// Each iteration processes this many bytes (rate in decimal `B/s`;
    /// printed identically here — the distinction only affects upstream's
    /// unit scaling).
    BytesDecimal(u64),
}

/// Harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional CLI args act as a substring filter, as with upstream
        // criterion; flags (injected by `cargo bench`) are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            criterion: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the amount of work one iteration performs; subsequent
    /// benchmarks in the group print a derived rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label(), &mut f);
        self
    }

    /// Runs a benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; we have none to flush).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let secs: Vec<f64> = bencher.samples.iter().map(Duration::as_secs_f64).collect();
        match stats::summary(&secs) {
            Some(s) => {
                let rate = self
                    .throughput
                    .filter(|_| s.median > 0.0)
                    .map(|t| match t {
                        Throughput::Elements(elems) => {
                            format!(" thrpt: {} elem/s", fmt_rate(elems as f64 / s.median))
                        }
                        Throughput::Bytes(bytes) | Throughput::BytesDecimal(bytes) => {
                            format!(" thrpt: {} B/s", fmt_rate(bytes as f64 / s.median))
                        }
                    })
                    .unwrap_or_default();
                println!(
                    "{full:<60} time: [{} {} {}] mean {} ± {}{rate}",
                    fmt_seconds(s.min),
                    fmt_seconds(s.median),
                    fmt_seconds(s.max),
                    fmt_seconds(s.mean),
                    fmt_seconds(s.std_dev),
                );
            }
            None => println!("{full:<60} (no samples)"),
        }
    }
}

/// Times closures, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// How many warm-up runs [`Bencher::iter`] performs at most.
    pub const MAX_WARMUP_RUNS: usize = 3;
    /// Elapsed warm-up time after which no further warm-up runs start.
    pub const WARMUP_BUDGET: Duration = Duration::from_millis(200);

    /// Runs a warm-up phase (up to [`Self::MAX_WARMUP_RUNS`] runs, stopping
    /// early once [`Self::WARMUP_BUDGET`] has elapsed — caches and branch
    /// predictors settle, and slow benchmarks are not warmed for longer than
    /// they are measured), then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        for _ in 0..Self::MAX_WARMUP_RUNS {
            black_box(f());
            if warmup_start.elapsed() >= Self::WARMUP_BUDGET {
                break;
            }
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An identifier with a parameter, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An identifier derived from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{p}", self.name),
            (false, None) => self.name.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.2}")
    }
}

fn fmt_seconds(secs: f64) -> String {
    let nanos = secs * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.0} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.2} s", nanos / 1e9)
    }
}

/// Declares a group function running each listed benchmark, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running every listed group, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(b.samples.len(), 5);
        // At least one warm-up run always happens before the samples; a fast
        // closure normally gets the full warm-up phase, but a descheduled
        // test thread may exhaust the time budget earlier, so only bound it.
        assert!(runs > 5 && runs <= Bencher::MAX_WARMUP_RUNS as u32 + 5);
    }

    #[test]
    fn warmup_stops_early_for_slow_benchmarks() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 1,
        };
        let mut runs = 0u32;
        b.iter(|| {
            runs += 1;
            std::thread::sleep(Bencher::WARMUP_BUDGET);
        });
        assert_eq!(runs, 2); // one warm-up run (budget exhausted) + 1 sample
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 10).label(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label(), "x");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn summary_of_samples() {
        let s = stats::summary(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.5); // even size: mean of the central pair
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.max, 4.0);
        // Sample (n−1) standard deviation of {1,2,3,4}.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);

        let odd = stats::summary(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(odd.median, 3.0);

        let single = stats::summary(&[7.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.median, 7.0);

        assert!(stats::summary(&[]).is_none());
    }

    #[test]
    fn throughput_rates_format_with_scale_prefixes() {
        assert_eq!(fmt_rate(12.5), "12.50");
        assert_eq!(fmt_rate(1_500.0), "1.500 K");
        assert_eq!(fmt_rate(2_000_000.0), "2.000 M");
        assert_eq!(fmt_rate(3.5e9), "3.500 G");
    }

    #[test]
    fn group_accepts_throughput_declaration() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 2,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1_000_000));
        assert_eq!(group.throughput, Some(Throughput::Elements(1_000_000)));
        group.bench_function("rate", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn groups_run_and_filter() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            default_sample_size: 2,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = Vec::new();
        // Only the matching benchmark's closure should execute.
        group.bench_function("keep_me", |b| {
            b.iter(|| 1 + 1);
            ran.push("keep");
        });
        drop(group);
        let mut group = c.benchmark_group("g");
        group.bench_function("skip_me", |_| {
            ran.push("skip");
        });
        group.finish();
        assert_eq!(ran, vec!["keep"]);
    }
}
