//! A minimal, dependency-free stand-in for the subset of the `criterion` 0.5
//! API used by this workspace's benches.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small wall-clock harness behind the same entry points the real crate
//! exposes: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], [`criterion_group!`]
//! and [`criterion_main!`]. Benches written against this crate compile
//! unchanged against upstream criterion.
//!
//! Differences from upstream, by design: no statistical outlier analysis, no
//! HTML reports, no baseline storage — each benchmark runs `sample_size`
//! timed iterations after one warm-up and prints min / mean / max wall time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional CLI args act as a substring filter, as with upstream
        // criterion; flags (injected by `cargo bench`) are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label(), &mut f);
        self
    }

    /// Runs a benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; we have none to flush).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        match summarize(&bencher.samples) {
            Some((min, mean, max)) => println!(
                "{full:<60} time: [{} {} {}]",
                fmt_duration(min),
                fmt_duration(mean),
                fmt_duration(max)
            ),
            None => println!("{full:<60} (no samples)"),
        }
    }
}

/// Times closures, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An identifier with a parameter, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An identifier derived from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{p}", self.name),
            (false, None) => self.name.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

fn summarize(samples: &[Duration]) -> Option<(Duration, Duration, Duration)> {
    if samples.is_empty() {
        return None;
    }
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let total: Duration = samples.iter().sum();
    Some((min, total / samples.len() as u32, max))
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group function running each listed benchmark, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running every listed group, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(runs, 6); // warm-up + 5 samples
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 10).label(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label(), "x");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn summary_of_samples() {
        let s = [Duration::from_nanos(10), Duration::from_nanos(30)];
        let (min, mean, max) = summarize(&s).unwrap();
        assert_eq!(min, Duration::from_nanos(10));
        assert_eq!(mean, Duration::from_nanos(20));
        assert_eq!(max, Duration::from_nanos(30));
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn groups_run_and_filter() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            default_sample_size: 2,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = Vec::new();
        // Only the matching benchmark's closure should execute.
        group.bench_function("keep_me", |b| {
            b.iter(|| 1 + 1);
            ran.push("keep");
        });
        drop(group);
        let mut group = c.benchmark_group("g");
        group.bench_function("skip_me", |_| {
            ran.push("skip");
        });
        group.finish();
        assert_eq!(ran, vec!["keep"]);
    }
}
