//! Minimal offline stand-in for the subset of [`proptest`] this workspace
//! uses: a seeded case generator with shrink-on-failure.
//!
//! The API mirrors proptest's shape — [`Strategy`] / [`ValueTree`] /
//! [`TestRunner`] plus the [`proptest!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros — but implements only what the workspace's
//! property tests need:
//!
//! * integer range strategies (`lo..hi` for `u64`/`usize`/`u32`),
//!   an `f64` unit-interval strategy, [`Just`], tuples up to arity 3,
//!   [`collection::vec`] and [`Strategy::prop_map`];
//! * deterministic, seeded case generation (override with the
//!   `PROPTEST_SEED` environment variable);
//! * binary-search shrinking toward the range origin, element dropping and
//!   element-wise shrinking for vectors.
//!
//! There is no persistence file, no regression registry and no fork support.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, proptest, Config, Just, Strategy, TestCaseError,
        TestCaseResult, TestError, TestRunner,
    };
}

// ---------------------------------------------------------------------------
// Runner configuration and RNG
// ---------------------------------------------------------------------------

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required before the property passes.
    pub cases: u32,
    /// Upper bound on shrink iterations once a failing case is found.
    pub max_shrink_iters: u32,
    /// Seed for the deterministic case generator.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_f00d_0001);
        Self {
            cases: 32,
            max_shrink_iters: 1024,
            seed,
        }
    }
}

impl Config {
    /// A config running `cases` cases with the default seed.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Deterministic splitmix64 generator feeding case generation.
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Test-case results and errors
// ---------------------------------------------------------------------------

/// Failure of a single test case (see [`prop_assert!`]).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Failure of a whole property: the message plus the minimal failing input.
#[derive(Debug, Clone)]
pub enum TestError<V> {
    /// The property failed; carries the shrunk input.
    Fail(String, V),
}

impl<V: fmt::Debug> fmt::Display for TestError<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let TestError::Fail(msg, value) = self;
        write!(
            f,
            "property failed: {msg}; minimal failing input: {value:?}"
        )
    }
}

// ---------------------------------------------------------------------------
// Strategy / ValueTree
// ---------------------------------------------------------------------------

/// A generator of shrinkable values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The shrink tree produced per case.
    type Tree: ValueTree;

    /// Generates one fresh tree from the runner's RNG.
    fn new_tree(&self, runner: &mut TestRunner) -> Self::Tree;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(<Self::Tree as ValueTree>::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A generated value plus its shrink state, mirroring
/// `proptest::strategy::ValueTree`.
pub trait ValueTree {
    /// The value type produced.
    type Value: Clone + fmt::Debug;

    /// The current candidate value.
    fn current(&self) -> Self::Value;

    /// Moves to a simpler candidate. Returns `false` when exhausted.
    fn simplify(&mut self) -> bool;

    /// Reacts to the last candidate *passing*: moves part-way back toward
    /// the last known-failing value. Returns `false` when exhausted.
    fn complicate(&mut self) -> bool;
}

// --- integer ranges --------------------------------------------------------

/// Shrink tree for an integer drawn from a half-open range: binary search
/// toward the low end.
#[derive(Debug, Clone)]
pub struct NumTree {
    lo: u64,
    hi: u64,
    value: u64,
}

impl NumTree {
    fn new(origin: u64, value: u64) -> Self {
        Self {
            lo: origin,
            hi: value,
            value,
        }
    }
}

impl ValueTree for NumTree {
    type Value = u64;

    fn current(&self) -> u64 {
        self.value
    }

    fn simplify(&mut self) -> bool {
        // The current value failed; try halfway between it and the low bound.
        self.hi = self.value;
        let mid = self.lo + (self.hi - self.lo) / 2;
        if mid == self.value {
            return false;
        }
        self.value = mid;
        true
    }

    fn complicate(&mut self) -> bool {
        // The current value passed; move back toward the failing end.
        if self.value == self.hi {
            return false;
        }
        self.lo = self.value + 1;
        let mid = self.lo + (self.hi - self.lo) / 2;
        if mid == self.value || mid > self.hi {
            return false;
        }
        self.value = mid;
        true
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Tree = MapTree<NumTree, fn(u64) -> $t>;

            fn new_tree(&self, runner: &mut TestRunner) -> Self::Tree {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as u64;
                let hi = self.end as u64;
                let value = lo + runner.rng.below(hi - lo);
                MapTree {
                    inner: NumTree::new(lo, value),
                    f: |v| v as $t,
                }
            }
        }
    )*};
}

int_range_strategy!(u64, usize, u32, u16);

// --- f64 unit interval -----------------------------------------------------

/// Strategy producing an `f64` in `[lo, hi)`, shrinking toward `lo`.
#[derive(Debug, Clone)]
pub struct UnitF64 {
    lo: f64,
    hi: f64,
}

/// An `f64` drawn uniformly from `[lo, hi)`, shrinking toward `lo`.
pub fn f64_range(lo: f64, hi: f64) -> UnitF64 {
    assert!(lo < hi && lo.is_finite() && hi.is_finite());
    UnitF64 { lo, hi }
}

/// Shrink tree for [`f64_range`].
#[derive(Debug, Clone)]
pub struct F64Tree {
    lo: f64,
    hi: f64,
    value: f64,
}

impl ValueTree for F64Tree {
    type Value = f64;

    fn current(&self) -> f64 {
        self.value
    }

    fn simplify(&mut self) -> bool {
        self.hi = self.value;
        let mid = self.lo + (self.hi - self.lo) / 2.0;
        if (self.value - mid).abs() < 1e-9 {
            return false;
        }
        self.value = mid;
        true
    }

    fn complicate(&mut self) -> bool {
        self.lo = self.value;
        let mid = self.lo + (self.hi - self.lo) / 2.0;
        if (self.value - mid).abs() < 1e-9 {
            return false;
        }
        self.value = mid;
        true
    }
}

impl Strategy for UnitF64 {
    type Tree = F64Tree;

    fn new_tree(&self, runner: &mut TestRunner) -> F64Tree {
        let value = self.lo + runner.rng.next_f64() * (self.hi - self.lo);
        F64Tree {
            lo: self.lo,
            hi: self.hi,
            value,
        }
    }
}

// --- Just ------------------------------------------------------------------

/// A strategy that always produces the same value and never shrinks.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

/// Shrink tree for [`Just`].
#[derive(Debug, Clone)]
pub struct JustTree<T>(T);

impl<T: Clone + fmt::Debug> ValueTree for JustTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }

    fn simplify(&mut self) -> bool {
        false
    }

    fn complicate(&mut self) -> bool {
        false
    }
}

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Tree = JustTree<T>;

    fn new_tree(&self, _runner: &mut TestRunner) -> JustTree<T> {
        JustTree(self.0.clone())
    }
}

// --- prop_map --------------------------------------------------------------

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

/// Shrink tree for [`Map`]: shrinks the underlying tree, maps on read.
#[derive(Debug, Clone)]
pub struct MapTree<T, F> {
    inner: T,
    f: F,
}

impl<T, F, U> ValueTree for MapTree<T, F>
where
    T: ValueTree,
    F: Fn(T::Value) -> U,
    U: Clone + fmt::Debug,
{
    type Value = U;

    fn current(&self) -> U {
        (self.f)(self.inner.current())
    }

    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(<S::Tree as ValueTree>::Value) -> U + Clone,
    U: Clone + fmt::Debug,
{
    type Tree = MapTree<S::Tree, F>;

    fn new_tree(&self, runner: &mut TestRunner) -> Self::Tree {
        MapTree {
            inner: self.inner.new_tree(runner),
            f: self.f.clone(),
        }
    }
}

// --- tuples ----------------------------------------------------------------

/// Shrink tree for a 1-tuple (the `proptest!` macro's single-binding form).
#[derive(Debug, Clone)]
pub struct Tuple1Tree<A>(A);

impl<A: ValueTree> ValueTree for Tuple1Tree<A> {
    type Value = (A::Value,);

    fn current(&self) -> Self::Value {
        (self.0.current(),)
    }

    fn simplify(&mut self) -> bool {
        self.0.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.0.complicate()
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Tree = Tuple1Tree<A::Tree>;

    fn new_tree(&self, runner: &mut TestRunner) -> Self::Tree {
        Tuple1Tree(self.0.new_tree(runner))
    }
}

/// Shrink tree for a pair: shrinks components left to right.
#[derive(Debug, Clone)]
pub struct Tuple2Tree<A, B> {
    a: A,
    b: B,
    last: u8,
}

impl<A: ValueTree, B: ValueTree> ValueTree for Tuple2Tree<A, B> {
    type Value = (A::Value, B::Value);

    fn current(&self) -> Self::Value {
        (self.a.current(), self.b.current())
    }

    fn simplify(&mut self) -> bool {
        if self.a.simplify() {
            self.last = 0;
            return true;
        }
        if self.b.simplify() {
            self.last = 1;
            return true;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        match self.last {
            0 => self.a.complicate(),
            1 => self.b.complicate(),
            _ => false,
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Tree = Tuple2Tree<A::Tree, B::Tree>;

    fn new_tree(&self, runner: &mut TestRunner) -> Self::Tree {
        Tuple2Tree {
            a: self.0.new_tree(runner),
            b: self.1.new_tree(runner),
            last: u8::MAX,
        }
    }
}

/// Shrink tree for a triple: shrinks components left to right.
#[derive(Debug, Clone)]
pub struct Tuple3Tree<A, B, C> {
    a: A,
    b: B,
    c: C,
    last: u8,
}

impl<A: ValueTree, B: ValueTree, C: ValueTree> ValueTree for Tuple3Tree<A, B, C> {
    type Value = (A::Value, B::Value, C::Value);

    fn current(&self) -> Self::Value {
        (self.a.current(), self.b.current(), self.c.current())
    }

    fn simplify(&mut self) -> bool {
        if self.a.simplify() {
            self.last = 0;
            return true;
        }
        if self.b.simplify() {
            self.last = 1;
            return true;
        }
        if self.c.simplify() {
            self.last = 2;
            return true;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        match self.last {
            0 => self.a.complicate(),
            1 => self.b.complicate(),
            2 => self.c.complicate(),
            _ => false,
        }
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Tree = Tuple3Tree<A::Tree, B::Tree, C::Tree>;

    fn new_tree(&self, runner: &mut TestRunner) -> Self::Tree {
        Tuple3Tree {
            a: self.0.new_tree(runner),
            b: self.1.new_tree(runner),
            c: self.2.new_tree(runner),
            last: u8::MAX,
        }
    }
}

// --- collections -----------------------------------------------------------

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// A `Vec` whose length is drawn from `len` and whose elements come from
    /// `elem`; shrinks by dropping elements, then element-wise.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Tree = VecTree<S::Tree>;

        fn new_tree(&self, runner: &mut TestRunner) -> Self::Tree {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + runner.rng.below(span) as usize;
            let elems = (0..n).map(|_| self.elem.new_tree(runner)).collect();
            VecTree {
                elems,
                min_len: self.len.start,
                next_remove: n,
                reinsert: None,
                elem_idx: 0,
                last_was_elem: false,
            }
        }
    }

    /// Shrink tree for [`VecStrategy`]: first tries dropping each element
    /// (highest index first, each index at most once), then simplifies the
    /// surviving elements in order.
    #[derive(Debug)]
    pub struct VecTree<T: ValueTree> {
        elems: Vec<T>,
        min_len: usize,
        /// One past the next removal candidate; counts down and never resets.
        next_remove: usize,
        reinsert: Option<(usize, T)>,
        elem_idx: usize,
        last_was_elem: bool,
    }

    impl<T: ValueTree> ValueTree for VecTree<T> {
        type Value = Vec<T::Value>;

        fn current(&self) -> Self::Value {
            self.elems.iter().map(ValueTree::current).collect()
        }

        fn simplify(&mut self) -> bool {
            while self.next_remove > 0 && self.elems.len() > self.min_len {
                self.next_remove -= 1;
                if self.next_remove < self.elems.len() {
                    let t = self.elems.remove(self.next_remove);
                    self.reinsert = Some((self.next_remove, t));
                    self.last_was_elem = false;
                    return true;
                }
            }
            while self.elem_idx < self.elems.len() {
                if self.elems[self.elem_idx].simplify() {
                    self.last_was_elem = true;
                    return true;
                }
                self.elem_idx += 1;
            }
            false
        }

        fn complicate(&mut self) -> bool {
            if self.last_was_elem {
                if self.elem_idx < self.elems.len() {
                    return self.elems[self.elem_idx].complicate();
                }
                return false;
            }
            if let Some((idx, t)) = self.reinsert.take() {
                self.elems.insert(idx, t);
                return true;
            }
            false
        }
    }
}

// ---------------------------------------------------------------------------
// TestRunner
// ---------------------------------------------------------------------------

/// Runs a property over many generated cases, shrinking on failure.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    rng: CaseRng,
}

impl TestRunner {
    /// Creates a runner from `config`.
    pub fn new(config: Config) -> Self {
        let rng = CaseRng::new(config.seed);
        Self { config, rng }
    }

    /// Runs `test` against `config.cases` generated inputs. On the first
    /// failure the input is shrunk and the minimal failing value returned in
    /// [`TestError::Fail`].
    pub fn run<S, F>(
        &mut self,
        strategy: &S,
        test: F,
    ) -> Result<(), TestError<<S::Tree as ValueTree>::Value>>
    where
        S: Strategy,
        F: Fn(<S::Tree as ValueTree>::Value) -> TestCaseResult,
    {
        for _ in 0..self.config.cases {
            let mut tree = strategy.new_tree(self);
            let first = test(tree.current());
            if let Err(err) = first {
                return Err(self.shrink(&mut tree, &test, err));
            }
        }
        Ok(())
    }

    fn shrink<T, F>(
        &mut self,
        tree: &mut T,
        test: &F,
        first_err: TestCaseError,
    ) -> TestError<T::Value>
    where
        T: ValueTree,
        F: Fn(T::Value) -> TestCaseResult,
    {
        let mut best_value = tree.current();
        let mut best_err = first_err;
        let mut budget = self.config.max_shrink_iters;
        while budget > 0 {
            budget -= 1;
            if !tree.simplify() {
                break;
            }
            match test(tree.current()) {
                Err(err) => {
                    best_value = tree.current();
                    best_err = err;
                }
                Ok(()) => {
                    // Passed: back toward the failing region; keep whichever
                    // failing candidates complication rediscovers.
                    let mut found = false;
                    while budget > 0 {
                        budget -= 1;
                        if !tree.complicate() {
                            break;
                        }
                        if let Err(err) = test(tree.current()) {
                            best_value = tree.current();
                            best_err = err;
                            found = true;
                            break;
                        }
                    }
                    if !found {
                        break;
                    }
                }
            }
        }
        TestError::Fail(best_err.to_string(), best_value)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a condition inside a property body, failing the case (and
/// triggering shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body, failing the case (and triggering
/// shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies,
/// mirroring the `proptest!` macro:
///
/// ```ignore
/// proptest! {
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut runner = $crate::TestRunner::new($crate::Config::default());
            let strategy = ($($strat,)+);
            let result = runner.run(&strategy, |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
            if let ::std::result::Result::Err(e) = result {
                panic!("{e}");
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runner = TestRunner::new(Config::with_cases(50));
        let mut seen = 0u32;
        let counted = std::cell::Cell::new(0u32);
        runner
            .run(&(0u64..1000), |_| {
                counted.set(counted.get() + 1);
                Ok(())
            })
            .unwrap();
        seen += counted.get();
        assert_eq!(seen, 50);
    }

    #[test]
    fn failing_property_shrinks_to_the_boundary() {
        let mut runner = TestRunner::new(Config::default());
        let err = runner
            .run(&(0u64..10_000), |v| {
                if v >= 137 {
                    Err(TestCaseError::fail("too big"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        let TestError::Fail(_, value) = err;
        assert_eq!(value, 137, "binary search should find the exact boundary");
    }

    #[test]
    fn vec_shrinking_drops_irrelevant_elements() {
        let mut runner = TestRunner::new(Config::default());
        let strat = collection::vec(0u64..100, 0..20);
        let err = runner
            .run(&strat, |v| {
                if v.iter().any(|&x| x >= 50) {
                    Err(TestCaseError::fail("contains a big element"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        let TestError::Fail(_, value) = err;
        assert_eq!(value.len(), 1, "minimal counterexample is one element");
        assert_eq!(value[0], 50, "and that element sits on the boundary");
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut runner = TestRunner::new(Config::with_cases(40));
        let strat = (2u64..100, 0u32..8).prop_map(|(n, k)| (n * 2, k));
        runner
            .run(&strat, |(n, k)| {
                prop_assert!(n % 2 == 0, "mapped value must be even");
                prop_assert!(k < 8);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn seeds_are_deterministic() {
        let draw = |seed| {
            let mut r = TestRunner::new(Config {
                cases: 1,
                max_shrink_iters: 0,
                seed,
            });
            let got = std::cell::Cell::new(0);
            r.run(&(0u64..1_000_000), |v| {
                got.set(v);
                Ok(())
            })
            .unwrap();
            got.get()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    proptest! {
        fn the_macro_form_works(a in 0u64..50, b in 0u64..50) {
            prop_assert_eq!(a + b, b + a);
        }
    }
}
