//! A minimal, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace.
//!
//! The build environment has no registry access, so the workspace vendors the
//! few entry points it needs — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::SmallRng`] — behind the same paths and signatures as the real
//! crate. Code *using* these traits compiles unchanged against upstream
//! `rand`; code *implementing* them (e.g. `gossip_net::NodeRng`) needs a
//! small shim when swapping upstream in, because upstream's `RngCore`
//! requires `next_u32`/`fill_bytes`/`try_fill_bytes` and upstream's
//! `SeedableRng` is built around `from_seed`.
//!
//! The generator behind [`rngs::SmallRng`] is SplitMix64 (Steele, Lea, Flood
//! 2014), which passes BigCrush when used as a stream; it is *not* the same
//! generator as upstream `SmallRng`, so absolute random sequences differ from
//! upstream — only the API contract is preserved. All simulation-level
//! determinism in this workspace is keyed off explicit seeds, so nothing
//! depends on matching upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be built from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers, uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the given range. Panics if the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`. Panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution (`rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits => uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to `[0, span)` without modulo bias worth caring about
/// at simulation scale (multiply-shift; bias is O(span / 2^64)).
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + mul_shift(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Small, fast generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast generator: a SplitMix64 stream.
    ///
    /// Statistically solid for simulation (passes BigCrush as a stream), not
    /// cryptographic, and **not** stream-compatible with upstream `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that consecutive seeds do not yield correlated
            // initial outputs.
            SmallRng {
                state: crate::mix64(seed ^ 0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            crate::mix64(self.state)
        }
    }
}

/// The SplitMix64 finalizer: a strong 64-bit mixing function.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "count {c}");
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(0..=3usize) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_range_and_negative_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&x));
            let y = rng.gen_range(1e-6..1.0f64);
            assert!((1e-6..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(21);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn works_through_mutable_references() {
        // failure.rs calls `gen` through a generic `&mut R` parameter.
        fn draw<R: super::Rng>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let via_generic = draw(&mut rng);
        assert!((0.0..1.0).contains(&via_generic));
        // …and through a plain `&mut SmallRng` at a call site.
        let via_reference = rng.gen::<f64>();
        assert!((0.0..1.0).contains(&via_reference));
    }
}
