//! Exact φ-quantile computation in `O(log n)` rounds (Theorem 1.1,
//! Algorithm 3) and the interval-narrowing bootstrap behind Theorem 1.2.
//!
//! One narrowing iteration follows Algorithm 3 step by step:
//!
//! 1. every node computes an ε/2-approximation of the `(k/n − ε/2)`- and
//!    `(k/n + ε/2)`-quantiles of the current working values with the
//!    tournament algorithm ([`crate::approx::tournament_quantile`]);
//! 2. the minimum of the lower approximations and the maximum of the upper
//!    approximations are disseminated by push–pull rumor spreading (Step 4);
//! 3. the rank `R` of the minimum (and the size of the bracket) is counted
//!    with push-sum (Step 5, \[KDG03\]);
//! 4. nodes whose value lies outside `[min, max]` become *valueless* (Step 6);
//! 5. every surviving value is duplicated `m` times — `m` the smallest power
//!    of two that brings the number of valued nodes up to a constant fraction
//!    of `n` — by a decentralized token splitting-and-scattering process
//!    (Step 7);
//! 6. the target rank is updated to `k ← m·(k − R + 1)` (Step 8).
//!
//! Each iteration multiplies the number of copies of every candidate value by
//! `m = Θ(1/ε)`, so after a constant number of iterations (for the paper's
//! polynomial ε) or `O(log n / log(1/ε))` iterations in general, only copies
//! of the answer remain inside the bracket and the algorithm stops with the
//! exact answer. Stopping earlier — as soon as at most `⌊ε·n⌋` candidate
//! values remain — yields the ε-approximation of Theorem 1.2 for arbitrarily
//! small ε.
//!
//! ## Scale substitution (documented in DESIGN.md)
//!
//! The paper sizes the duplication target as `n^{0.99}/2` valued nodes and the
//! per-iteration approximation parameter as `ε = n^{-0.05}/2`; both choices
//! only make sense asymptotically (at `n ≤ 2²²`, `n^{-0.05}/2 ≈ 0.25`). The
//! implementation keeps the same structure but uses a duplication target of
//! `0.7·n` valued nodes (so the answer's copy count grows by `Θ(1/ε)` per
//! iteration while tokens still fit) and an adaptive per-iteration ε of
//! `Θ(√(log n / n))` — the smallest value for which the tournament
//! concentration holds — which preserves the paper's behaviour of removing a
//! polynomial fraction of candidates per iteration.

use crate::approx::{tournament_quantile, TournamentConfig};
use baselines::push_sum::{self, PushSumConfig};
use baselines::rumor::SpreadRounds;
use gossip_net::{
    ActiveSet, Engine, EngineConfig, GossipError, MessageSize, Metrics, NodeValue, Result,
    SeedSequence,
};

/// A node's working value: either a (value, tag) key or "valueless" (`∞`).
///
/// Tags keep all working keys distinct, which is what lets Algorithm 3 reason
/// about exact ranks; `Empty` sorts above every key, matching the paper's
/// `x_v ← ∞` for valueless nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Slot<V> {
    /// A working key: the value plus a distinctness tag.
    Value(V, u64),
    /// A valueless node (`x_v = ∞`).
    Empty,
}

impl<V: NodeValue> Slot<V> {
    fn value(self) -> Option<V> {
        match self {
            Slot::Value(v, _) => Some(v),
            Slot::Empty => None,
        }
    }
}

impl<V: MessageSize> MessageSize for Slot<V> {
    fn message_bits(&self) -> u64 {
        match self {
            Slot::Value(v, _) => 1 + v.message_bits() + 64,
            Slot::Empty => 1,
        }
    }
}

/// Configuration of the exact / narrowing quantile algorithm.
#[derive(Debug, Clone)]
pub struct NarrowingConfig {
    /// Per-iteration approximation parameter ε. `None` selects the adaptive
    /// default `min(0.1, 2·tournament_min_epsilon(n))`.
    pub iteration_epsilon: Option<f64>,
    /// Replace push-sum rank counting with an exact oracle (ablation only).
    pub oracle_counting: bool,
    /// Round budget of every rumor-spreading phase (Step 4).
    pub spread_rounds: SpreadRounds,
    /// Round budget of every push-sum counting phase (`None` = sized for an
    /// absolute error below 1/4, i.e. exact after rounding, w.h.p.).
    pub counting_rounds: Option<u64>,
    /// Safety cap on narrowing iterations.
    pub max_iterations: u64,
    /// Fraction of `n` that duplication aims to fill with valued nodes
    /// (the paper's `n^{0.99}/2`; see the module docs).
    pub duplication_target_fraction: f64,
    /// Configuration of the tournament sub-calls (Step 3).
    pub tournament: TournamentConfig,
}

impl Default for NarrowingConfig {
    fn default() -> Self {
        NarrowingConfig {
            iteration_epsilon: None,
            oracle_counting: false,
            spread_rounds: SpreadRounds::default(),
            counting_rounds: None,
            max_iterations: 80,
            duplication_target_fraction: 0.7,
            tournament: TournamentConfig::default(),
        }
    }
}

impl NarrowingConfig {
    /// The per-iteration ε used for a network of `n` nodes.
    pub fn iteration_epsilon_for(&self, n: usize) -> f64 {
        self.iteration_epsilon
            .unwrap_or_else(|| (2.0 * crate::approx::tournament_min_epsilon(n)).min(0.1))
            .clamp(1e-9, 0.1)
    }
}

/// Result of the exact (or narrowing) quantile computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactOutcome<V> {
    /// The computed value (identical at every node).
    pub answer: V,
    /// Narrowing iterations executed.
    pub iterations: u64,
    /// Total rounds executed across all sub-phases.
    pub rounds: u64,
    /// Aggregated communication metrics.
    pub metrics: Metrics,
}

/// Computes the **exact** φ-quantile — the `⌈φ·n⌉`-th smallest value — of
/// `values` (Theorem 1.1).
///
/// # Errors
///
/// Returns an error if fewer than two values are given, `φ ∉ [0, 1]`, or the
/// iteration cap is exhausted (which indicates a mis-configured round budget).
pub fn exact_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    config: &NarrowingConfig,
    engine_config: EngineConfig,
) -> Result<ExactOutcome<V>> {
    let n = values.len();
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    let target_rank = ((phi * n as f64).ceil() as u64).clamp(1, n as u64);
    narrow_to_rank(values, target_rank, 0, config, engine_config)
}

/// Computes a value whose rank is within `tolerance` of `target_rank`
/// (`tolerance = 0` forces the exact answer). This is the shared machinery
/// behind [`exact_quantile`] and the small-ε branch of
/// [`crate::approx::approximate_quantile`].
pub(crate) fn narrow_to_rank<V: NodeValue>(
    values: &[V],
    target_rank: u64,
    tolerance: u64,
    config: &NarrowingConfig,
    engine_config: EngineConfig,
) -> Result<ExactOutcome<V>> {
    let n = values.len();
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if target_rank == 0 || target_rank > n as u64 {
        return Err(GossipError::InvalidParameter {
            name: "target_rank",
            reason: format!("must be in 1..={n}, got {target_rank}"),
        });
    }
    let mut seeds = SeedSequence::new(engine_config.seed);
    // Every narrowing iteration spins up sub-engines; sharing one worker
    // pool (materialised here if the caller didn't supply one) keeps that
    // from re-spawning threads per iteration.
    let mut engine_config = engine_config;
    engine_config.ensure_pool_for(n);
    let sub = |seeds: &mut SeedSequence| engine_config.sub(seeds.next_seed());

    let eps = config.iteration_epsilon_for(n);
    let counting = PushSumConfig {
        rounds: config.counting_rounds,
        target_accuracy: 0.25 / n as f64,
    };

    // Working keys: the original value of node v tagged with v.
    let mut keys: Vec<Slot<V>> = values
        .iter()
        .enumerate()
        .map(|(v, &x)| Slot::Value(x, v as u64))
        .collect();
    let mut k = target_rank;
    let mut copies_per_candidate: u64 = 1; // M_{i-1} in the paper
    let mut metrics = Metrics::default();
    let mut rounds = 0u64;

    for iteration in 1..=config.max_iterations {
        let phi_center = k as f64 / n as f64;
        let phi_lo = (phi_center - eps / 2.0).max(0.0);
        let phi_hi = (phi_center + eps / 2.0).min(1.0);
        // When the ±ε/2 window spills past a boundary of [0, 1] the tournament
        // guarantee can no longer bracket the target rank from that side; use
        // the trivial (but always safe) bound instead: every node contributes
        // its own key, so the spread returns the global extremum.
        let lower_trivial = k as f64 <= eps / 2.0 * n as f64 + 1.0;
        let upper_trivial = k as f64 >= (1.0 - eps / 2.0) * n as f64 - 1.0;

        // Step 3: tournament approximations of the bracketing quantiles.
        let lower_outputs = if lower_trivial {
            keys.clone()
        } else {
            let lo_out = tournament_quantile(
                &keys,
                phi_lo,
                eps / 2.0,
                &config.tournament,
                sub(&mut seeds),
            )?;
            metrics = metrics + lo_out.metrics;
            rounds += lo_out.rounds;
            lo_out.outputs
        };
        let upper_outputs = if upper_trivial {
            keys.clone()
        } else {
            let hi_out = tournament_quantile(
                &keys,
                phi_hi,
                eps / 2.0,
                &config.tournament,
                sub(&mut seeds),
            )?;
            metrics = metrics + hi_out.metrics;
            rounds += hi_out.rounds;
            hi_out.outputs
        };

        // Step 4: spread min(lower approximations) and max(upper approximations).
        let (lo, hi, spread_rounds, spread_metrics) = spread_bracket(
            &lower_outputs,
            &upper_outputs,
            config.spread_rounds.rounds_for(n),
            sub(&mut seeds),
        );
        metrics = metrics + spread_metrics;
        rounds += spread_rounds;

        let lo_v = match lo.value() {
            Some(v) => v,
            // Degenerate (only possible under extreme failure rates): retry.
            None => continue,
        };

        // Step 5: count the rank of `lo` and of `hi` with push-sum. (`hi` may
        // legitimately be `Empty` when the upper window spilled past 1 and
        // some nodes are valueless; `Empty` compares above every key, so the
        // count is then simply `n` — "no upper restriction".)
        let (rank_lo, c_rounds, c_metrics) = count_at_most(
            &keys,
            &lo,
            config.oracle_counting,
            &counting,
            sub(&mut seeds),
        )?;
        metrics = metrics + c_metrics;
        rounds += c_rounds;
        let (rank_hi, c_rounds, c_metrics) = count_at_most(
            &keys,
            &hi,
            config.oracle_counting,
            &counting,
            sub(&mut seeds),
        )?;
        metrics = metrics + c_metrics;
        rounds += c_rounds;

        // Sanity: the bracket must contain the target rank. If counting or the
        // tournament misbehaved (possible only under heavy failures or at very
        // small n), skip the iteration rather than lose the answer.
        if rank_lo > k || rank_hi < k || rank_hi <= rank_lo {
            continue;
        }
        let bracket = rank_hi - rank_lo + 1;

        // Convergence (the analogue of the paper's final Step 10): the
        // invariant maintained below is that every key with rank in
        // `(k − copies, k]` carries the answer value, where `copies` is the
        // accumulated duplication factor. As soon as `lo` falls inside that
        // block — i.e. its exactly-counted rank satisfies `k − rank < copies`
        // — `lo`'s value *is* the answer. The same holds trivially when the
        // bracket spans a single distinct value.
        if k - rank_lo < copies_per_candidate || hi.value() == Some(lo_v) {
            return Ok(ExactOutcome {
                answer: lo_v,
                iterations: iteration,
                rounds,
                metrics,
            });
        }

        // Early stop for the approximate (Theorem 1.2) regime: at most
        // `bracket / copies + 2` distinct original values remain in the
        // bracket, every one of them within that many ranks of the target.
        if tolerance > 0 && bracket / copies_per_candidate + 2 <= tolerance {
            return Ok(ExactOutcome {
                answer: lo_v,
                iterations: iteration,
                rounds,
                metrics,
            });
        }

        // Step 6: nodes outside [lo, hi] become valueless.
        for key in keys.iter_mut() {
            if *key < lo || *key > hi {
                *key = Slot::Empty;
            }
        }
        let valued = keys.iter().filter(|s| !matches!(s, Slot::Empty)).count() as u64;
        if valued == 0 {
            // Cannot happen if the bracket checks above passed; defensive.
            continue;
        }

        // Step 7: duplicate every surviving value m times and scatter the
        // copies so that a constant fraction of nodes is valued again. `m` is
        // the smallest power of two strictly larger than target/valued (the
        // paper's rule), capped so the tokens always fit comfortably below n.
        let dup_target = (config.duplication_target_fraction * n as f64).max(1.0);
        let quotient = dup_target / valued as f64;
        let mut m: u64 = 1;
        while (m as f64) <= quotient {
            m *= 2;
        }
        while m > 1 && m * valued > (n as u64) * 9 / 10 {
            m /= 2;
        }
        if m > 1 {
            let (assigned, d_rounds, d_metrics) = distribute_tokens(&keys, m, n, sub(&mut seeds))?;
            metrics = metrics + d_metrics;
            rounds += d_rounds;
            for (v, slot) in keys.iter_mut().enumerate() {
                *slot = match assigned[v] {
                    Some(value) => Slot::Value(value, (iteration << 32) | v as u64),
                    None => Slot::Empty,
                };
            }
        }

        // Step 8.
        k = m * (k - rank_lo + 1);
        copies_per_candidate = copies_per_candidate.saturating_mul(m);
    }

    Err(GossipError::RoundBudgetExceeded {
        budget: config.max_iterations,
        phase: "exact quantile narrowing iterations",
    })
}

/// Disseminates `min` of the first components and `max` of the second
/// components to every node by push–pull gossip (Step 4 of Algorithm 3).
fn spread_bracket<V: NodeValue>(
    lower: &[Slot<V>],
    upper: &[Slot<V>],
    rounds: u64,
    engine_config: EngineConfig,
) -> (Slot<V>, Slot<V>, u64, Metrics) {
    let states: Vec<(Slot<V>, Slot<V>)> =
        lower.iter().copied().zip(upper.iter().copied()).collect();
    let mut engine = Engine::from_states(states, engine_config);
    for _ in 0..rounds {
        engine.push_pull_round(
            |_, st| *st,
            |_, st, (lo, hi)| {
                if lo < st.0 {
                    st.0 = lo;
                }
                if hi > st.1 {
                    st.1 = hi;
                }
            },
        );
    }
    let metrics = engine.metrics();
    // With the default budget every node has converged w.h.p.; the global
    // extrema (which are what every informed node holds) drive the rest of the
    // iteration.
    let lo = engine
        .states()
        .iter()
        .map(|s| s.0)
        .min()
        .expect("non-empty network");
    let hi = engine
        .states()
        .iter()
        .map(|s| s.1)
        .max()
        .expect("non-empty network");
    (lo, hi, rounds, metrics)
}

/// Counts `#{keys ≤ bound}` with push-sum (or exactly, for the ablation).
fn count_at_most<V: NodeValue>(
    keys: &[Slot<V>],
    bound: &Slot<V>,
    oracle: bool,
    counting: &PushSumConfig,
    engine_config: EngineConfig,
) -> Result<(u64, u64, Metrics)> {
    if oracle {
        let count = keys.iter().filter(|&k| k <= bound).count() as u64;
        return Ok((count, 0, Metrics::default()));
    }
    let indicators: Vec<bool> = keys.iter().map(|k| k <= bound).collect();
    let out = push_sum::count_matching(&indicators, counting, engine_config)?;
    let mut rounded: Vec<i64> = out.estimates.iter().map(|e| e.round() as i64).collect();
    rounded.sort_unstable();
    let count = rounded[rounded.len() / 2].max(0) as u64;
    Ok((count, out.rounds, out.metrics))
}

/// Token state used by the splitting-and-scattering process of Step 7.
#[derive(Debug, Clone)]
struct TokenState<V> {
    tokens: Vec<(V, u64)>,
    outbox: Option<(V, u64)>,
}

/// Duplicates every valued key `m` times and scatters the copies so that every
/// node ends up holding at most one copy (Step 7 of Algorithm 3).
///
/// Only **token holders** act in this process — initially the valued nodes
/// (`o(n)` of them in the regime Step 7 exists for), growing by each round's
/// push receivers — so every pass (the settled check, the outbox local step,
/// the push round itself) runs on the holder [`ActiveSet`] via the engine's
/// sparse primitives, at `O(|holders|)` per round instead of `O(n)`. The
/// active set is exactly the dense path's "`make` returned `Some`" sender
/// set, so the trajectory is bit-identical to a dense execution of the same
/// process.
///
/// Returns the value assigned to every node (or `None` for nodes left
/// valueless), the number of rounds used, and the metrics.
fn distribute_tokens<V: NodeValue>(
    keys: &[Slot<V>],
    m: u64,
    n: usize,
    engine_config: EngineConfig,
) -> Result<(Vec<Option<V>>, u64, Metrics)> {
    debug_assert!(m.is_power_of_two());
    let states: Vec<TokenState<V>> = keys
        .iter()
        .map(|slot| TokenState {
            tokens: match slot {
                Slot::Value(v, _) => vec![(*v, m)],
                Slot::Empty => Vec::new(),
            },
            outbox: None,
        })
        .collect();
    // Nodes holding at least one token; holders never drop to zero tokens,
    // so the set only grows (by push receivers).
    let mut holders = ActiveSet::from_members(
        n,
        keys.iter()
            .enumerate()
            .filter(|(_, slot)| !matches!(slot, Slot::Empty))
            .map(|(v, _)| v),
    )?;
    let mut engine = Engine::from_states(states, engine_config);
    let max_rounds =
        8 * (n.max(2) as f64).log2().ceil() as u64 + 4 * (m as f64).log2().ceil() as u64 + 64;

    // One reusable per-round sender set: `clear` + `union_sorted` touch only
    // the members, so rebuilding it each round is O(|holders|), never O(n).
    let mut senders = ActiveSet::from_members(n, std::iter::empty())?;
    let mut sender_ids: Vec<usize> = Vec::new();
    let mut executed = 0u64;
    // The whole settle loop is one fused round program (`Engine::fused`):
    // the pool wakes once, the sparse local/push rounds dispatch as resident
    // phases, and the sequential inter-round work — the settled scan and the
    // sender-set rebuild — runs on the session thread between phases. The
    // schedule is data-dependent (it ends at settlement), so the live loop
    // fuses instead of being recorded; results are bit-identical either way.
    let budget_exceeded = engine.fused(|engine| loop {
        let settled = holders.iter().all(|v| {
            let st = &engine.states()[v];
            st.tokens.len() <= 1 && st.tokens.iter().all(|&(_, w)| w == 1)
        });
        if settled {
            break false;
        }
        if executed >= max_rounds {
            break true;
        }
        // Local step over the holders only: pick what to send this round —
        // half of a heavy token, or a surplus token if the node holds more
        // than one. (Non-holders have nothing to send and an already-clear
        // outbox.)
        engine.local_step_on(&holders, |_, st, _rng| {
            st.outbox = None;
            if let Some(idx) = st.tokens.iter().position(|&(_, w)| w > 1) {
                let (value, weight) = st.tokens[idx];
                let half = weight / 2;
                st.tokens[idx] = (value, weight - half);
                st.outbox = Some((value, half));
            } else if st.tokens.len() > 1 {
                st.outbox = st.tokens.pop();
            }
        });
        // Senders this round: holders with a loaded outbox (already in
        // ascending order, so the sorted-union repopulation is a single
        // merge pass).
        sender_ids.clear();
        sender_ids.extend(
            holders
                .iter()
                .filter(|&v| engine.states()[v].outbox.is_some()),
        );
        senders.clear();
        senders.union_sorted(&sender_ids);
        let out = engine.push_round_on(
            &senders,
            |_, st| st.outbox,
            |_, st, token| st.tokens.push(token),
            |_, st, delivered| {
                if !delivered {
                    if let Some(token) = st.outbox.take() {
                        st.tokens.push(token);
                    }
                }
                st.outbox = None;
            },
        );
        holders.union_sorted(&out.receivers);
        executed += 1;
    });
    if budget_exceeded {
        return Err(GossipError::RoundBudgetExceeded {
            budget: max_rounds,
            phase: "token distribution (Algorithm 3, Step 7)",
        });
    }

    let metrics = engine.metrics();
    let assigned = engine
        .into_states()
        .into_iter()
        .map(|st| st.tokens.first().map(|&(v, _)| v))
        .collect();
    Ok((assigned, executed, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_quantile(values: &[u64], phi: f64) -> u64 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((phi * values.len() as f64).ceil() as usize).clamp(1, values.len());
        sorted[rank - 1]
    }

    #[test]
    fn slot_ordering_places_empty_last() {
        let a: Slot<u64> = Slot::Value(10, 5);
        let b: Slot<u64> = Slot::Value(10, 6);
        let c: Slot<u64> = Slot::Value(11, 0);
        let e: Slot<u64> = Slot::Empty;
        assert!(a < b && b < c && c < e);
        assert_eq!(a.value(), Some(10));
        assert_eq!(e.value(), None);
        assert!(e.message_bits() < a.message_bits());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let cfg = NarrowingConfig::default();
        assert!(exact_quantile(&[1u64], 0.5, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(exact_quantile(&[1u64, 2], 1.5, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(narrow_to_rank(&[1u64, 2], 0, 0, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(narrow_to_rank(&[1u64, 2], 3, 0, &cfg, EngineConfig::with_seed(0)).is_err());
    }

    #[test]
    fn exact_median_on_a_permutation() {
        let n = 4001u64;
        let values: Vec<u64> = (0..n).map(|i| (i * 48271) % 1_000_003).collect();
        let cfg = NarrowingConfig {
            oracle_counting: true,
            ..Default::default()
        };
        let out = exact_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(1)).unwrap();
        assert_eq!(out.answer, sorted_quantile(&values, 0.5));
        assert!(out.iterations <= 20, "iterations {}", out.iterations);
    }

    #[test]
    fn exact_quantiles_with_push_sum_counting() {
        let n = 3000u64;
        let values: Vec<u64> = (0..n).map(|i| (i * 2654435761) % 999_983).collect();
        let cfg = NarrowingConfig::default();
        for (seed, phi) in [(2u64, 0.1f64), (3, 0.5), (4, 0.95)] {
            let out = exact_quantile(&values, phi, &cfg, EngineConfig::with_seed(seed)).unwrap();
            assert_eq!(out.answer, sorted_quantile(&values, phi), "phi = {phi}");
        }
    }

    #[test]
    fn exact_works_with_duplicate_values() {
        let values: Vec<u64> = (0..2000).map(|i| i % 7).collect();
        let cfg = NarrowingConfig {
            oracle_counting: true,
            ..Default::default()
        };
        for (seed, phi) in [(5u64, 0.3f64), (6, 0.5), (7, 0.9)] {
            let out = exact_quantile(&values, phi, &cfg, EngineConfig::with_seed(seed)).unwrap();
            assert_eq!(out.answer, sorted_quantile(&values, phi), "phi = {phi}");
        }
    }

    #[test]
    fn extreme_ranks_are_exact() {
        let values: Vec<u64> = (0..1500).map(|i| i * 17 % 65_521).collect();
        let cfg = NarrowingConfig {
            oracle_counting: true,
            ..Default::default()
        };
        let min = exact_quantile(&values, 0.0, &cfg, EngineConfig::with_seed(8)).unwrap();
        assert_eq!(min.answer, *values.iter().min().unwrap());
        let max = exact_quantile(&values, 1.0, &cfg, EngineConfig::with_seed(9)).unwrap();
        assert_eq!(max.answer, *values.iter().max().unwrap());
    }

    #[test]
    fn narrowing_with_tolerance_is_within_bounds_and_faster() {
        let n = 8000u64;
        let values: Vec<u64> = (0..n).map(|i| (i * 104729) % 1_000_003).collect();
        let cfg = NarrowingConfig {
            oracle_counting: true,
            ..Default::default()
        };
        let exact = exact_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(10)).unwrap();
        let tol = 200u64;
        let approx =
            narrow_to_rank(&values, n / 2, tol, &cfg, EngineConfig::with_seed(10)).unwrap();
        // The approximate answer's rank is within the tolerance.
        let rank = values.iter().filter(|&&v| v <= approx.answer).count() as i64;
        assert!((rank - (n / 2) as i64).unsigned_abs() <= tol, "rank {rank}");
        assert!(approx.rounds <= exact.rounds);
    }

    #[test]
    fn token_distribution_activity_tracks_holders_not_n() {
        // 8 valued keys over 4096 nodes, duplicated 16× = 128 tokens: every
        // round's participants are the token holders, so total push activity
        // is bounded by rounds × final-holder-count — far below rounds × n.
        let n = 4096usize;
        let keys: Vec<Slot<u64>> = (0..n)
            .map(|v| {
                if v % 512 == 0 {
                    Slot::Value(v as u64, v as u64)
                } else {
                    Slot::Empty
                }
            })
            .collect();
        let (assigned, rounds, metrics) =
            distribute_tokens(&keys, 16, n, EngineConfig::with_seed(6)).unwrap();
        assert_eq!(assigned.iter().filter(|a| a.is_some()).count(), 8 * 16);
        assert!(
            metrics.max_active <= 128,
            "max_active {}",
            metrics.max_active
        );
        assert!(
            metrics.active_nodes_total <= rounds * 128,
            "activity {} over {rounds} rounds",
            metrics.active_nodes_total
        );
    }

    #[test]
    fn token_distribution_conserves_copies() {
        let n = 1024usize;
        // 32 valued keys, to be duplicated 8x = 256 tokens over 1024 nodes.
        let keys: Vec<Slot<u64>> = (0..n)
            .map(|v| {
                if v % 32 == 0 {
                    Slot::Value(v as u64, v as u64)
                } else {
                    Slot::Empty
                }
            })
            .collect();
        let (assigned, rounds, _metrics) =
            distribute_tokens(&keys, 8, n, EngineConfig::with_seed(3)).unwrap();
        let placed: Vec<u64> = assigned.iter().filter_map(|a| *a).collect();
        assert_eq!(placed.len(), 32 * 8, "every copy placed on a distinct node");
        for orig in (0..n).step_by(32) {
            let copies = placed.iter().filter(|&&v| v == orig as u64).count();
            assert_eq!(copies, 8, "value {orig} has {copies} copies");
        }
        assert!(rounds > 0 && rounds < 200);
    }

    #[test]
    fn token_distribution_under_failures_still_conserves_copies() {
        let n = 512usize;
        let keys: Vec<Slot<u64>> = (0..n)
            .map(|v| {
                if v % 16 == 0 {
                    Slot::Value(v as u64, v as u64)
                } else {
                    Slot::Empty
                }
            })
            .collect();
        let cfg =
            EngineConfig::with_seed(4).failure(gossip_net::FailureModel::uniform(0.3).unwrap());
        let (assigned, _rounds, metrics) = distribute_tokens(&keys, 4, n, cfg).unwrap();
        let placed: Vec<u64> = assigned.iter().filter_map(|a| *a).collect();
        assert_eq!(placed.len(), 32 * 4);
        assert!(metrics.failed_operations > 0);
    }

    #[test]
    fn iteration_epsilon_default_is_reasonable() {
        let cfg = NarrowingConfig::default();
        let e_small = cfg.iteration_epsilon_for(1 << 10);
        let e_large = cfg.iteration_epsilon_for(1 << 22);
        assert!(e_small >= e_large);
        assert!(e_large > 0.0 && e_small <= 0.1);
        let fixed = NarrowingConfig {
            iteration_epsilon: Some(0.03),
            ..Default::default()
        };
        assert_eq!(fixed.iteration_epsilon_for(1 << 20), 0.03);
    }
}
