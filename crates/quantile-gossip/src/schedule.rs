//! Iteration schedules of the tournament algorithms.
//!
//! Algorithms 1 and 2 of the paper are driven by deterministic sequences that
//! every node can compute locally from `n`, `φ` and `ε`:
//!
//! * 2-TOURNAMENT: `h_0 = 1 − (φ + ε)`, `h_{i+1} = h_i²`, stop once
//!   `h_i ≤ T = 1/2 − ε`; the final iteration applies the tournament only with
//!   probability `δ = min(1, (h_i − T)/(h_i − h_{i+1}))` (Lemma 2.2 bounds the
//!   number of iterations by `log_{7/4}(4/ε) + 2`).
//! * 3-TOURNAMENT: `h_0 = 1/2 − ε`, `h_{i+1} = 3h_i² − 2h_i³`, stop once
//!   `h_i ≤ T = n^{-1/3}` (Lemma 2.12 bounds the number of iterations by
//!   `log_{11/8}(1/(4ε)) + log₂log₄ n`).
//!
//! Keeping the schedules as pure data makes the dynamics testable against the
//! lemmas independently of any randomness.

use gossip_net::{GossipError, Result};

/// Which tail of the distribution the 2-TOURNAMENT shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrinkSide {
    /// `h_0 = 1 − (φ+ε) ≥ l_0`: shrink the set of *high* values by assigning
    /// each node the **minimum** of two random samples.
    High,
    /// The symmetric case: shrink the set of *low* values by assigning each
    /// node the **maximum** of two random samples.
    Low,
}

/// One iteration of the 2-TOURNAMENT schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoTournamentStep {
    /// The tracked tail mass `h_i` before this iteration.
    pub before: f64,
    /// The tracked tail mass `h_{i+1} = h_i²` after this iteration.
    pub after: f64,
    /// The probability with which a node performs the two-sample tournament
    /// this iteration (1.0 in all but possibly the last iteration).
    pub delta: f64,
}

/// The full 2-TOURNAMENT schedule for a given `(φ, ε)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoTournamentSchedule {
    /// Which side is being shrunk.
    pub side: ShrinkSide,
    /// The per-iteration steps, in order.
    pub steps: Vec<TwoTournamentStep>,
    /// The stopping threshold `T = 1/2 − ε`.
    pub threshold: f64,
}

impl TwoTournamentSchedule {
    /// Computes the schedule for the ε-approximate φ-quantile problem.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] if `φ ∉ [0, 1]` or
    /// `ε ∉ (0, 1/8]` (the paper's analysis assumes `ε < 1/8`; larger values
    /// make Phase I unnecessary and are accepted by clamping in
    /// [`crate::approx`]).
    pub fn compute(phi: f64, epsilon: f64) -> Result<Self> {
        validate_phi_epsilon(phi, epsilon)?;
        let t = 0.5 - epsilon;
        let h0 = 1.0 - (phi + epsilon);
        let l0 = phi - epsilon;
        let (side, mut h) = if h0 >= l0 {
            (ShrinkSide::High, h0)
        } else {
            (ShrinkSide::Low, l0)
        };
        let mut steps = Vec::new();
        // Guard: for extreme φ the tracked mass may already be below T and no
        // shifting is needed at all.
        while h > t {
            let next = h * h;
            let delta = if h - next > 0.0 {
                ((h - t) / (h - next)).min(1.0)
            } else {
                1.0
            };
            steps.push(TwoTournamentStep {
                before: h,
                after: next,
                delta,
            });
            h = next;
            // The paper's loop exits as soon as h ≤ T; the δ-truncation of the
            // final step is what lands |H_t|/n near T rather than overshooting.
            if steps.len() > MAX_SCHEDULE_LEN {
                break;
            }
        }
        Ok(TwoTournamentSchedule {
            side,
            steps,
            threshold: t,
        })
    }

    /// Number of iterations `t`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether Phase I is a no-op for these parameters.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The upper bound of Lemma 2.2: `t ≤ log_{7/4}(4/ε) + 2`.
    pub fn lemma_2_2_bound(epsilon: f64) -> f64 {
        (4.0 / epsilon).ln() / (7.0f64 / 4.0).ln() + 2.0
    }
}

/// The full 3-TOURNAMENT schedule for a given `(ε, n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeTournamentSchedule {
    /// The tracked tail masses `h_0, h_1, …` (the value *before* each iteration).
    pub masses: Vec<f64>,
    /// The stopping threshold `T = n^{-1/3}`.
    pub threshold: f64,
    /// The probability with which a node performs the three-sample tournament
    /// in the **final** iteration (1.0 in every earlier iteration) — the same
    /// δ-truncation the 2-TOURNAMENT schedule applies to its last step: a
    /// node that sits the final iteration out copies a single random sample
    /// instead, so the expected mass lands on `T` exactly
    /// (`(1−δ)·h + δ·g(h) = T` for `δ = (h − T)/(h − g(h))`) rather than
    /// overshooting below it, and only a δ-fraction of nodes does the full
    /// three-sample work. 1.0 when the schedule is empty.
    pub final_delta: f64,
}

impl ThreeTournamentSchedule {
    /// Computes the schedule for approximating the median of `n` values to
    /// within ±ε.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] if `ε ∉ (0, 1/2)` or `n < 2`.
    pub fn compute(epsilon: f64, n: usize) -> Result<Self> {
        if n < 2 {
            return Err(GossipError::TooFewNodes { requested: n });
        }
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(GossipError::InvalidParameter {
                name: "epsilon",
                reason: format!("3-TOURNAMENT needs epsilon in (0, 0.5), got {epsilon}"),
            });
        }
        let threshold = (n as f64).powf(-1.0 / 3.0);
        let mut h = 0.5 - epsilon;
        let mut masses = Vec::new();
        while h > threshold {
            masses.push(h);
            h = 3.0 * h * h - 2.0 * h * h * h;
            if masses.len() > MAX_SCHEDULE_LEN {
                break;
            }
        }
        // δ-truncation of the last iteration (see the field docs): the
        // interpolation between keeping one sample and the full tournament
        // that lands the expected mass on T exactly.
        let final_delta = match masses.last() {
            Some(&last) => {
                let next = 3.0 * last * last - 2.0 * last.powi(3);
                if last - next > 0.0 {
                    ((last - threshold) / (last - next)).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        Ok(ThreeTournamentSchedule {
            masses,
            threshold,
            final_delta,
        })
    }

    /// Number of iterations `t`.
    pub fn len(&self) -> usize {
        self.masses.len()
    }

    /// Whether the median phase needs no iterations (tiny networks).
    pub fn is_empty(&self) -> bool {
        self.masses.is_empty()
    }

    /// The upper bound of Lemma 2.12: `t ≤ log_{11/8}(1/(4ε)) + log₂ log₄ n`.
    pub fn lemma_2_12_bound(epsilon: f64, n: usize) -> f64 {
        let n = n.max(16) as f64;
        let first = (1.0 / (4.0 * epsilon)).max(1.0).ln() / (11.0f64 / 8.0).ln();
        let second = (n.log(4.0)).log2().max(0.0);
        first + second
    }
}

/// Self-adapting failure estimate driving the robust tournament's round
/// budget (Section 5 compensation, measured instead of assumed).
///
/// Lemma 5.2's over-sampling budget `Θ(1/(1−μ)·log 1/(1−μ))` takes the
/// failure bound `μ` as given. Under a fault plan whose intensity is unknown
/// (or drifting), this tracker estimates `μ̂` from the engine's *observed*
/// disturbance instead: after each tournament iteration, feed it the
/// [`gossip_net::Metrics::disturbance_rate`] of that iteration's metrics
/// delta, and read back the smoothed estimate via
/// [`AdaptiveRoundBudget::mu_hat`] to size the next iteration's pulls.
///
/// The estimate is an exponential moving average (the first observation
/// seeds it exactly), clamped to `[0, 0.99]` so the derived budget
/// `1/(1−μ̂)` stays finite. The tracker is pure data — determinism of the
/// containing algorithm is untouched.
#[derive(Debug, Clone)]
pub struct AdaptiveRoundBudget {
    mu_hat: f64,
    smoothing: f64,
    observed: bool,
}

impl AdaptiveRoundBudget {
    /// A tracker starting from `μ̂ = 0` (no disturbance assumed until
    /// observed).
    pub fn new() -> Self {
        AdaptiveRoundBudget::with_initial_mu(0.0)
    }

    /// A tracker seeded with a prior estimate (e.g. a fault plan's
    /// analytical `mu_upper_bound`), refined by observations.
    ///
    /// A NaN prior is treated as "no information" and becomes `μ̂ = 0`.
    pub fn with_initial_mu(mu: f64) -> Self {
        AdaptiveRoundBudget {
            mu_hat: clamp_rate(mu),
            smoothing: 0.5,
            observed: false,
        }
    }

    /// Folds one iteration's observed disturbance rate into the estimate.
    ///
    /// Rates are clamped to `[0, 0.99]`; a NaN rate (e.g. a disturbance
    /// ratio computed over zero attempts upstream of
    /// [`gossip_net::Metrics::disturbance_rate`]'s own guard) is ignored
    /// outright rather than poisoning the EMA — `f64::clamp` propagates NaN,
    /// so clamping alone would make `μ̂` and every derived budget NaN forever.
    pub fn observe(&mut self, rate: f64) {
        if rate.is_nan() {
            return;
        }
        let rate = clamp_rate(rate);
        if self.observed {
            self.mu_hat = (1.0 - self.smoothing) * self.mu_hat + self.smoothing * rate;
        } else {
            // The first real observation replaces the prior outright — a
            // stale analytical bound should not linger once data exists.
            self.mu_hat = rate;
            self.observed = true;
        }
    }

    /// The current smoothed failure estimate `μ̂ ∈ [0, 0.99]`.
    pub fn mu_hat(&self) -> f64 {
        self.mu_hat
    }

    /// The paper's compensation factor `1/(1−μ̂)` at the current estimate.
    pub fn inflation(&self) -> f64 {
        1.0 / (1.0 - self.mu_hat)
    }
}

impl Default for AdaptiveRoundBudget {
    fn default() -> Self {
        AdaptiveRoundBudget::new()
    }
}

/// Hard cap on schedule lengths, far above anything the lemmas allow; purely a
/// guard against pathological floating-point behaviour.
const MAX_SCHEDULE_LEN: usize = 4096;

/// Clamps a failure-rate observation to `[0, 0.99]`, mapping NaN to 0 (no
/// information) instead of letting `f64::clamp` propagate it.
fn clamp_rate(rate: f64) -> f64 {
    if rate.is_nan() {
        0.0
    } else {
        rate.clamp(0.0, 0.99)
    }
}

pub(crate) fn validate_phi_epsilon(phi: f64, epsilon: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    if !(epsilon > 0.0 && epsilon <= 0.125) {
        return Err(GossipError::InvalidParameter {
            name: "epsilon",
            reason: format!("the tournament analysis assumes epsilon in (0, 1/8], got {epsilon}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tournament_respects_lemma_2_2_bound() {
        for &eps in &[0.1f64, 0.05, 0.01, 0.001, 1e-4] {
            for &phi in &[0.1, 0.25, 0.5, 0.75, 0.9] {
                let eps = eps.min(0.125);
                let s = TwoTournamentSchedule::compute(phi, eps).unwrap();
                let bound = TwoTournamentSchedule::lemma_2_2_bound(eps);
                assert!(
                    (s.len() as f64) <= bound.ceil(),
                    "phi={phi} eps={eps}: t={} bound={bound}",
                    s.len()
                );
            }
        }
    }

    #[test]
    fn two_tournament_masses_square_and_end_below_threshold() {
        let s = TwoTournamentSchedule::compute(0.3, 0.05).unwrap();
        assert_eq!(s.side, ShrinkSide::High);
        for w in s.steps.windows(2) {
            assert!((w[0].after - w[1].before).abs() < 1e-12);
            assert!((w[0].after - w[0].before * w[0].before).abs() < 1e-12);
            assert_eq!(w[0].delta, 1.0, "only the last step may have delta < 1");
        }
        let last = s.steps.last().unwrap();
        assert!(last.after <= s.threshold + 1e-12);
        assert!(last.delta > 0.0 && last.delta <= 1.0);
    }

    #[test]
    fn two_tournament_picks_the_low_side_for_high_quantiles() {
        let s = TwoTournamentSchedule::compute(0.9, 0.05).unwrap();
        assert_eq!(s.side, ShrinkSide::Low);
        let s = TwoTournamentSchedule::compute(0.3, 0.05).unwrap();
        assert_eq!(s.side, ShrinkSide::High);
    }

    #[test]
    fn two_tournament_is_a_noop_for_extreme_quantiles() {
        // φ + ε ≥ 1 − T means the relevant tail already has mass ≤ T.
        let s = TwoTournamentSchedule::compute(0.5, 0.12).unwrap();
        // h0 = 1 − 0.62 = 0.38 ≤ T = 0.38 → no iterations.
        assert!(s.is_empty());
    }

    #[test]
    fn two_tournament_validates_inputs() {
        assert!(TwoTournamentSchedule::compute(-0.1, 0.05).is_err());
        assert!(TwoTournamentSchedule::compute(0.5, 0.0).is_err());
        assert!(TwoTournamentSchedule::compute(0.5, 0.2).is_err());
    }

    #[test]
    fn three_tournament_respects_lemma_2_12_bound() {
        for &eps in &[0.1, 0.05, 0.01] {
            for &n in &[1usize << 10, 1 << 16, 1 << 22] {
                let s = ThreeTournamentSchedule::compute(eps, n).unwrap();
                let bound = ThreeTournamentSchedule::lemma_2_12_bound(eps, n);
                // The lemma is asymptotic; allow a +3 additive slack for the
                // constant-regime iterations it hides.
                assert!(
                    (s.len() as f64) <= bound.ceil() + 3.0,
                    "eps={eps} n={n}: t={} bound={bound}",
                    s.len()
                );
            }
        }
    }

    #[test]
    fn three_tournament_masses_decrease_monotonically() {
        let s = ThreeTournamentSchedule::compute(0.05, 1 << 20).unwrap();
        for w in s.masses.windows(2) {
            assert!(w[1] < w[0]);
        }
        // The map x ↦ 3x² − 2x³ applied to the final mass lands below T.
        let last = *s.masses.last().unwrap();
        let next = 3.0 * last * last - 2.0 * last.powi(3);
        assert!(next <= s.threshold);
    }

    #[test]
    fn three_tournament_final_delta_lands_on_the_threshold() {
        for &(eps, n) in &[(0.05, 1usize << 10), (0.1, 1 << 16), (0.01, 1 << 20)] {
            let s = ThreeTournamentSchedule::compute(eps, n).unwrap();
            assert!(
                s.final_delta > 0.0 && s.final_delta <= 1.0,
                "eps={eps} n={n}: delta {}",
                s.final_delta
            );
            if let Some(&last) = s.masses.last() {
                let next = 3.0 * last * last - 2.0 * last.powi(3);
                let expected = (1.0 - s.final_delta) * last + s.final_delta * next;
                // δ < 1 interpolates exactly onto T; δ = 1 means even the full
                // tournament cannot overshoot (next ≥ T is impossible here) or
                // the step barely crosses.
                if s.final_delta < 1.0 {
                    assert!((expected - s.threshold).abs() < 1e-12, "eps={eps} n={n}");
                }
            }
        }
        // An empty schedule reports δ = 1 (nothing to truncate).
        let tiny = ThreeTournamentSchedule::compute(0.49, 2).unwrap();
        assert!(tiny.is_empty());
        assert_eq!(tiny.final_delta, 1.0);
    }

    #[test]
    fn three_tournament_validates_inputs() {
        assert!(ThreeTournamentSchedule::compute(0.0, 100).is_err());
        assert!(ThreeTournamentSchedule::compute(0.6, 100).is_err());
        assert!(ThreeTournamentSchedule::compute(0.05, 1).is_err());
    }

    #[test]
    fn three_tournament_doubly_exponential_tail() {
        // Once below 1/4, the mass should square (up to the factor 3), i.e.
        // drop double-exponentially: reaching n^{-1/3} takes O(log log n)
        // further iterations.
        let s = ThreeTournamentSchedule::compute(0.05, 1 << 20).unwrap();
        let below_quarter = s.masses.iter().filter(|&&m| m < 0.25).count();
        assert!(below_quarter <= 6, "tail iterations: {below_quarter}");
    }

    #[test]
    fn adaptive_budget_tracks_observations() {
        let mut b = AdaptiveRoundBudget::new();
        assert_eq!(b.mu_hat(), 0.0);
        assert_eq!(b.inflation(), 1.0);
        // The first observation seeds the estimate exactly.
        b.observe(0.4);
        assert!((b.mu_hat() - 0.4).abs() < 1e-12);
        // Later ones are smoothed towards the new rate.
        b.observe(0.0);
        assert!(b.mu_hat() > 0.0 && b.mu_hat() < 0.4);
        // A prior is replaced by the first real observation.
        let mut seeded = AdaptiveRoundBudget::with_initial_mu(0.9);
        assert!((seeded.mu_hat() - 0.9).abs() < 1e-12);
        assert!(seeded.inflation() > 9.0);
        seeded.observe(0.1);
        assert!((seeded.mu_hat() - 0.1).abs() < 1e-12);
        // Clamping keeps the inflation finite.
        seeded.observe(5.0);
        assert!(seeded.mu_hat() <= 0.99);
        assert!(seeded.inflation().is_finite());
    }

    #[test]
    fn adaptive_budget_mu_zero_boundary_is_exact() {
        // μ̂ → 0: a long run of clean iterations must drive the estimate to
        // (exactly representable fractions of) zero and keep the compensation
        // factor at its fault-free floor of 1, never below.
        let mut b = AdaptiveRoundBudget::with_initial_mu(0.8);
        b.observe(0.0);
        assert_eq!(b.mu_hat(), 0.0);
        assert_eq!(b.inflation(), 1.0);
        for _ in 0..128 {
            b.observe(0.0);
            assert_eq!(b.mu_hat(), 0.0);
            assert_eq!(b.inflation(), 1.0);
        }
        // Negative "rates" (impossible upstream, but the clamp is the
        // contract) cannot push the estimate below zero either.
        b.observe(-3.5);
        assert_eq!(b.mu_hat(), 0.0);
        assert!(b.inflation() >= 1.0);
    }

    #[test]
    fn adaptive_budget_mu_one_boundary_stays_finite() {
        // μ̂ ≥ 1: total-disturbance observations are clamped to 0.99, so the
        // inflation factor saturates at 100 instead of diverging.
        let mut b = AdaptiveRoundBudget::new();
        for rate in [1.0, 1.5, f64::INFINITY, f64::MAX] {
            b.observe(rate);
            assert!(b.mu_hat() <= 0.99, "rate {rate} escaped the clamp");
            assert!(b.inflation().is_finite());
            assert!(b.inflation() <= 100.0 + 1e-9);
        }
        // Saturated estimate decays once clean iterations return.
        let saturated = b.mu_hat();
        b.observe(0.0);
        assert!(b.mu_hat() < saturated);
        // The prior constructor obeys the same boundary.
        let b = AdaptiveRoundBudget::with_initial_mu(f64::INFINITY);
        assert_eq!(b.mu_hat(), 0.99);
        assert!(b.inflation().is_finite());
        let b = AdaptiveRoundBudget::with_initial_mu(-1.0);
        assert_eq!(b.mu_hat(), 0.0);
    }

    #[test]
    fn adaptive_budget_ignores_nan_observations() {
        // Rust's `f64::clamp` propagates NaN, so a NaN disturbance rate used
        // to poison μ̂ (and with it every derived budget) permanently. NaN
        // observations are now dropped, and a NaN prior means "no prior".
        let mut b = AdaptiveRoundBudget::new();
        b.observe(0.4);
        b.observe(f64::NAN);
        assert!((b.mu_hat() - 0.4).abs() < 1e-12, "NaN overwrote the EMA");
        assert!(b.inflation().is_finite());
        // A NaN before any real observation must not mark the tracker as
        // observed: the next real rate still seeds the estimate exactly.
        let mut fresh = AdaptiveRoundBudget::with_initial_mu(0.7);
        fresh.observe(f64::NAN);
        assert!((fresh.mu_hat() - 0.7).abs() < 1e-12);
        fresh.observe(0.2);
        assert!(
            (fresh.mu_hat() - 0.2).abs() < 1e-12,
            "prior was not replaced"
        );
        assert!(!AdaptiveRoundBudget::with_initial_mu(f64::NAN)
            .mu_hat()
            .is_nan());
    }

    #[test]
    fn adaptive_budget_never_drops_below_the_fault_free_lemma_5_2_budget() {
        // The derived pull budget Θ(1/(1−μ̂)·log 1/(1−μ̂)) is monotone in μ̂,
        // so "never below the fault-free budget and never NaN/overflow" is
        // exactly μ̂ ∈ [0, 0.99] under every observation sequence — including
        // the adversarial boundary inputs.
        let cfg = crate::robust::RobustConfig::default();
        let floor = cfg.pulls_for(0.0);
        let mut b = AdaptiveRoundBudget::with_initial_mu(0.3);
        let adversarial = [
            0.0,
            -1.0,
            f64::NAN,
            1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.5,
            f64::MIN_POSITIVE,
            0.99,
            f64::EPSILON,
        ];
        for &rate in adversarial.iter().cycle().take(200) {
            b.observe(rate);
            assert!((0.0..=0.99).contains(&b.mu_hat()), "μ̂ = {}", b.mu_hat());
            let pulls = cfg.pulls_for(b.mu_hat());
            assert!(pulls >= floor, "budget {pulls} fell below floor {floor}");
            assert!(pulls < 10_000, "budget {pulls} blew up");
        }
    }

    /// The schedule always terminates below the threshold and never exceeds
    /// the lemma bound (with slack), for a seeded sweep of valid inputs.
    #[test]
    fn random_two_schedules_terminate() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5eed_0002);
        for _ in 0..256 {
            let phi = rng.gen_range(0.0..=1.0f64);
            let eps = rng.gen_range(0.0005f64..0.125);
            let s = TwoTournamentSchedule::compute(phi, eps).unwrap();
            assert!(
                (s.len() as f64) <= TwoTournamentSchedule::lemma_2_2_bound(eps).ceil(),
                "phi={phi} eps={eps}"
            );
            if let Some(last) = s.steps.last() {
                assert!(last.after <= s.threshold + 1e-12, "phi={phi} eps={eps}");
                assert!(
                    last.delta >= 0.0 && last.delta <= 1.0,
                    "phi={phi} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn random_three_schedules_terminate() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5eed_0003);
        for _ in 0..256 {
            let eps = rng.gen_range(0.001f64..0.49);
            let n = rng.gen_range(4usize..2_000_000);
            let s = ThreeTournamentSchedule::compute(eps, n).unwrap();
            assert!(s.len() <= 200, "eps={eps} n={n}");
            for w in s.masses.windows(2) {
                assert!(w[1] <= w[0], "eps={eps} n={n}");
            }
        }
    }
}
