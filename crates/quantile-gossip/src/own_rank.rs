//! Every node estimates its **own** quantile (Corollary 1.5).
//!
//! The paper observes that running `O(1/ε)` approximate quantile computations
//! — one for each of the thresholds `ε, 2ε, 3ε, …` — lets every node locate
//! its own value among the returned threshold values and thereby learn its own
//! quantile up to an additive `ε`, in `(1/ε)·O(log log n + log 1/ε)` rounds.
//! This is the "sensor network" use case from the introduction: each node
//! decides locally whether it belongs to, say, the top or bottom 10%.

use crate::approx::{approximate_quantile, ApproxConfig};
use gossip_net::{EngineConfig, GossipError, Metrics, NodeValue, Result, SeedSequence};

/// Configuration of the own-quantile estimation.
#[derive(Debug, Clone, Default)]
pub struct OwnRankConfig {
    /// Configuration of every underlying quantile computation.
    pub approx: ApproxConfig,
}

/// Result of the own-quantile estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnRankOutcome {
    /// Per-node estimate of its own quantile, in `[0, 1]`.
    pub quantiles: Vec<f64>,
    /// The threshold values that were computed (the `jε`-quantile estimates,
    /// as agreed by node 0; all nodes agree up to the approximation error).
    pub thresholds: usize,
    /// Total rounds executed.
    pub rounds: u64,
    /// Aggregated communication metrics.
    pub metrics: Metrics,
}

/// Every node estimates its own quantile up to an additive `ε`.
///
/// # Errors
///
/// Returns an error if fewer than two values are given or `ε ∉ (0, 1)`.
pub fn estimate_own_quantiles<V: NodeValue>(
    values: &[V],
    epsilon: f64,
    config: &OwnRankConfig,
    engine_config: EngineConfig,
) -> Result<OwnRankOutcome> {
    let n = values.len();
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(GossipError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be in (0, 1), got {epsilon}"),
        });
    }
    let mut seeds = SeedSequence::new(engine_config.seed);
    // All threshold computations share one worker pool (materialised here if
    // the caller didn't supply one).
    let mut engine_config = engine_config;
    engine_config.ensure_pool_for(n);

    // Thresholds at φ = ε, 2ε, …, < 1, each computed to accuracy ε (the
    // estimate below is therefore accurate to within ~1.5ε, matching the
    // additive-ε statement of Corollary 1.5 up to the usual constant).
    let count = ((1.0 / epsilon).ceil() as usize).saturating_sub(1).max(1);
    let mut rounds = 0u64;
    let mut metrics = Metrics::default();
    // For each node, how many thresholds its value exceeds.
    let mut above_count = vec![0usize; n];

    for j in 1..=count {
        let phi = (j as f64 * epsilon).min(1.0);
        // Each threshold computation inherits the failure model and shares
        // the parent's worker pool.
        let sub = engine_config.sub(seeds.next_seed());
        let out = approximate_quantile(values, phi, epsilon, &config.approx, sub)?;
        rounds += out.rounds;
        metrics = metrics + out.metrics;
        // Each node compares its own value against the threshold *it*
        // received (outputs may differ slightly between nodes, which is fine:
        // each is an (ε/2)-approximation).
        for (v, threshold) in out.outputs.iter().enumerate() {
            if values[v] > *threshold {
                above_count[v] += 1;
            }
        }
    }

    let quantiles = above_count
        .into_iter()
        .map(|c| ((c as f64 + 0.5) * epsilon).clamp(0.0, 1.0))
        .collect();
    Ok(OwnRankOutcome {
        quantiles,
        thresholds: count,
        rounds,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_inputs() {
        let cfg = OwnRankConfig::default();
        assert!(estimate_own_quantiles(&[1u64], 0.1, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(estimate_own_quantiles(&[1u64, 2], 0.0, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(estimate_own_quantiles(&[1u64, 2], 1.0, &cfg, EngineConfig::with_seed(0)).is_err());
    }

    #[test]
    fn estimates_are_close_to_true_quantiles() {
        let n: u64 = 50_000;
        let values: Vec<u64> = (0..n).collect(); // value == rank − 1
        let eps = 0.1;
        let out = estimate_own_quantiles(
            &values,
            eps,
            &OwnRankConfig::default(),
            EngineConfig::with_seed(3),
        )
        .unwrap();
        assert_eq!(out.thresholds, 9);
        let mut worst = 0.0f64;
        for (v, &q) in out.quantiles.iter().enumerate() {
            let truth = (v as f64 + 1.0) / n as f64;
            worst = worst.max((q - truth).abs());
        }
        // Corollary 1.5: additive ε (plus the ε/2 threshold accuracy).
        assert!(worst <= 2.0 * eps, "worst error {worst}");
    }

    #[test]
    fn extreme_nodes_know_they_are_extreme() {
        let n: u64 = 20_000;
        let values: Vec<u64> = (0..n).collect();
        let eps = 0.1;
        let out = estimate_own_quantiles(
            &values,
            eps,
            &OwnRankConfig::default(),
            EngineConfig::with_seed(7),
        )
        .unwrap();
        // The smallest node must report a quantile near 0, the largest near 1.
        assert!(out.quantiles[0] <= 0.2, "{}", out.quantiles[0]);
        assert!(
            out.quantiles[(n - 1) as usize] >= 0.8,
            "{}",
            out.quantiles[(n - 1) as usize]
        );
    }

    #[test]
    fn rounds_scale_with_one_over_epsilon() {
        let values: Vec<u64> = (0..20_000).collect();
        let coarse = estimate_own_quantiles(
            &values,
            0.25,
            &OwnRankConfig::default(),
            EngineConfig::with_seed(1),
        )
        .unwrap();
        let fine = estimate_own_quantiles(
            &values,
            0.1,
            &OwnRankConfig::default(),
            EngineConfig::with_seed(2),
        )
        .unwrap();
        assert!(fine.thresholds > coarse.thresholds);
        assert!(fine.rounds > coarse.rounds);
    }
}
