//! Phase I of the approximation algorithm: the 2-TOURNAMENT dynamic
//! (Algorithm 1 of the paper).
//!
//! Each iteration, every node samples two uniformly random values (two
//! rounds) and — with probability `δ` prescribed by the
//! [schedule](crate::schedule::TwoTournamentSchedule) — replaces its value
//! with the **minimum** (when shrinking the high side) or the **maximum**
//! (when shrinking the low side) of the two samples; otherwise it replaces
//! its value with the first sample alone.
//!
//! The effect (Lemmas 2.3–2.11) is that the mass of values above the
//! `(φ+ε)`-quantile is driven to `1/2 − ε ± ε/2` while the `[φ−ε, φ+ε]` band
//! keeps mass at least `7ε/4`, i.e. the target quantile band is *shifted to
//! the median* so that Phase II ([`crate::three_tournament`]) can finish the
//! job.
//!
//! The final schedule step applies the tournament only with probability
//! `δ < 1`; non-participants need just one fresh sample, so that iteration's
//! second sampling round runs **sparsely** on the participating subset
//! ([`Engine::collect_samples_on`]) — `O(δn)` engine work — with the
//! participation coin drawn up front on the dedicated
//! [`NodeRng::STREAM_PARTICIPATION`] stream (deterministic in the seed,
//! disjoint from round randomness).

use crate::schedule::{ShrinkSide, TwoTournamentSchedule};
use gossip_net::{
    ActiveSet, Engine, EngineConfig, GossipError, Metrics, NodeRng, NodeValue, Result,
    RoundProgram, StepKind,
};

/// Result of running Phase I.
#[derive(Debug, Clone)]
pub struct TwoTournamentOutcome<V> {
    /// The transformed value at every node.
    pub values: Vec<V>,
    /// Iterations executed (`t` in the paper).
    pub iterations: usize,
    /// Rounds executed (two per iteration).
    pub rounds: u64,
    /// Communication metrics.
    pub metrics: Metrics,
}

/// Runs Algorithm 1 on `values` with the given schedule.
///
/// The schedule decides both the number of iterations and which extremum is
/// taken; see [`TwoTournamentSchedule::compute`].
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given.
pub fn run<V: NodeValue>(
    values: &[V],
    schedule: &TwoTournamentSchedule,
    engine_config: EngineConfig,
) -> Result<TwoTournamentOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    let n = values.len();
    let mut engine = Engine::from_states(values.to_vec(), engine_config);
    let side = schedule.side;
    let seed = engine.seed();

    // The whole schedule compiles into one RoundProgram and replays as a
    // single fused pool dispatch: the workers are woken once and every
    // sampling round of every iteration runs as a resident phase. Each step
    // records exactly the engine calls the hand-written loop made, so the
    // trajectory is bit-identical to unfused execution (pinned by the
    // algorithm-level goldens and the program test suite).
    let mut program: RoundProgram<'_, V> = RoundProgram::new();
    for (iteration, step) in schedule.steps.iter().enumerate() {
        if step.delta >= 1.0 {
            // Full iteration: two sampling rounds against the iteration-start
            // snapshot, every node runs the tournament. The flat column-major
            // sample matrix keeps the whole pass at two allocations total
            // and makes the per-round sample columns contiguous.
            program.collect_local(
                2,
                |_, &v| v,
                move |v, state, _rng, samples| {
                    *state = match (samples.sample(v, 0), samples.sample(v, 1)) {
                        // Normal case: the two-sample tournament.
                        (Some(a), Some(b)) => extremum(side, a, b),
                        // Failure fallbacks (only reachable under a failure
                        // model): with one sample run the degenerate tournament
                        // against it, with none keep the current value.
                        (Some(a), None) | (None, Some(a)) => extremum(side, a, *state),
                        (None, None) => *state,
                    };
                },
            );
        } else {
            // Probabilistic final iteration: only a δ-fraction of nodes runs
            // the tournament, and only *they* need the second sample — so
            // the second sampling round executes on the participating subset
            // (`collect_samples_on`), costing O(δn) instead of O(n). The
            // participation coin is drawn on the dedicated
            // `STREAM_PARTICIPATION` stream, keyed by the iteration index,
            // *before* any round of the iteration runs — deterministic in
            // the seed at any thread count, and disjoint from the rounds'
            // randomness. The coin flips and the sample-feeding local update
            // are data-dependent structure, so this records as a custom step
            // (its sequential parts run on the session thread).
            let delta = step.delta;
            program.step(StepKind::Custom, move |engine| {
                let prefix =
                    NodeRng::key_prefix(seed, iteration as u64, NodeRng::STREAM_PARTICIPATION);
                let active = ActiveSet::from_fn(n, |v| prefix.node(v as u64).next_f64() < delta);
                // Everyone resamples once (both branches of Algorithm 1
                // replace the value with fresh samples)…
                let first = engine.collect_samples(1, |_, &v| v);
                // …but the second sample is collected by the participants only.
                let second = engine.collect_samples_on(&active, 1, |_, &v| v);
                engine.local_step(|v, state, _rng| {
                    let s0 = first[v].first().copied();
                    let s1 = active.rank(v).and_then(|r| second[r].first().copied());
                    *state = match (s0, s1) {
                        // Participant with both samples: the tournament.
                        (Some(a), Some(b)) => extremum(side, a, b),
                        // δ-branch: copy the single fresh sample.
                        (Some(a), None) if !active.contains(v) => a,
                        // Failure fallbacks: degenerate tournament against
                        // the current value, or keep it with no samples at
                        // all.
                        (Some(a), None) => extremum(side, a, *state),
                        (None, Some(b)) => extremum(side, b, *state),
                        (None, None) => *state,
                    };
                });
            });
        }
    }
    engine.run_program(&mut program);

    let metrics = engine.metrics();
    Ok(TwoTournamentOutcome {
        values: engine.into_states(),
        iterations: schedule.len(),
        rounds: metrics.rounds,
        metrics,
    })
}

pub(crate) fn extremum<V: Ord>(side: ShrinkSide, a: V, b: V) -> V {
    match side {
        ShrinkSide::High => a.min(b),
        ShrinkSide::Low => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fraction of values in `values` strictly above the `q`-quantile of the
    /// *original* 0..n ramp (values are their own ranks in these tests).
    fn mass_above(values: &[u64], n: u64, q: f64) -> f64 {
        let cut = (q * n as f64) as u64;
        values.iter().filter(|&&v| v >= cut).count() as f64 / values.len() as f64
    }

    fn mass_in_band(values: &[u64], n: u64, lo: f64, hi: f64) -> f64 {
        let lo = (lo * n as f64) as u64;
        let hi = (hi * n as f64) as u64;
        values.iter().filter(|&&v| v >= lo && v <= hi).count() as f64 / values.len() as f64
    }

    #[test]
    fn rejects_tiny_networks() {
        let s = TwoTournamentSchedule::compute(0.5, 0.05).unwrap();
        assert!(run::<u64>(&[1], &s, EngineConfig::with_seed(0)).is_err());
    }

    #[test]
    fn consumes_two_rounds_per_iteration() {
        let n = 1 << 12;
        let values: Vec<u64> = (0..n).collect();
        let s = TwoTournamentSchedule::compute(0.25, 0.05).unwrap();
        let out = run(&values, &s, EngineConfig::with_seed(1)).unwrap();
        assert_eq!(out.rounds, 2 * s.len() as u64);
        assert_eq!(out.iterations, s.len());
        assert_eq!(out.values.len(), values.len());
    }

    #[test]
    fn shifts_low_quantile_band_towards_the_median() {
        // φ = 0.2, ε = 0.05: after Phase I (Lemma 2.6 / 2.10) the mass above
        // the (φ+ε)-quantile should be ≈ 1/2 − ε ± ε/2, and the mass of the
        // original [φ−ε, φ+ε] band should be ≥ 7ε/4.
        let n: u64 = 200_000;
        let values: Vec<u64> = (0..n).collect();
        let phi = 0.2;
        let eps = 0.05;
        let s = TwoTournamentSchedule::compute(phi, eps).unwrap();
        let out = run(&values, &s, EngineConfig::with_seed(7)).unwrap();
        let h = mass_above(&out.values, n, phi + eps);
        assert!(
            (h - (0.5 - eps)).abs() <= eps / 2.0 + 0.01,
            "high mass {h}, expected ≈ {}",
            0.5 - eps
        );
        let band = mass_in_band(&out.values, n, phi - eps, phi + eps);
        assert!(
            band >= 1.6 * eps,
            "band mass {band}, expected ≥ {}",
            1.75 * eps
        );
    }

    #[test]
    fn shifts_high_quantile_band_towards_the_median() {
        // Symmetric case: φ = 0.85 shrinks the low side with max-of-two.
        let n: u64 = 200_000;
        let values: Vec<u64> = (0..n).collect();
        let phi = 0.85;
        let eps = 0.05;
        let s = TwoTournamentSchedule::compute(phi, eps).unwrap();
        assert_eq!(s.side, ShrinkSide::Low);
        let out = run(&values, &s, EngineConfig::with_seed(9)).unwrap();
        // Mass strictly below the (φ−ε)-quantile should now be ≈ 1/2 − ε.
        let below = 1.0 - mass_above(&out.values, n, phi - eps);
        assert!(
            (below - (0.5 - eps)).abs() <= eps / 2.0 + 0.01,
            "low mass {below}"
        );
        let band = mass_in_band(&out.values, n, phi - eps, phi + eps);
        assert!(band >= 1.6 * eps, "band mass {band}");
    }

    #[test]
    fn median_target_keeps_values_centred() {
        // For φ = 0.5 the schedule is short and the median band must survive.
        let n: u64 = 100_000;
        let values: Vec<u64> = (0..n).collect();
        let eps = 0.05;
        let s = TwoTournamentSchedule::compute(0.5, eps).unwrap();
        let out = run(&values, &s, EngineConfig::with_seed(3)).unwrap();
        let band = mass_in_band(&out.values, n, 0.5 - eps, 0.5 + eps);
        assert!(band >= 1.6 * eps, "band mass {band}");
    }

    #[test]
    fn final_delta_iteration_samples_sparsely() {
        let n = 1 << 13;
        let values: Vec<u64> = (0..n).collect();
        let s = TwoTournamentSchedule::compute(0.25, 0.05).unwrap();
        let last = s.steps.last().unwrap();
        assert!(last.delta < 1.0, "schedule has no truncated final step");
        let out = run(&values, &s, EngineConfig::with_seed(6)).unwrap();
        // All rounds but the final sparse one are dense; the final round's
        // activity is the δ-fraction participant set (binomial, generous
        // bounds).
        let m = out.metrics;
        let dense_rounds = 2 * (s.len() as u64) - 1;
        let sparse_active = m.active_nodes_total - dense_rounds * n;
        let expected = last.delta * n as f64;
        assert!(
            (sparse_active as f64) > 0.5 * expected && (sparse_active as f64) < 1.5 * expected,
            "sparse round activity {sparse_active}, expected ≈ {expected}"
        );
        assert_eq!(m.max_active, n);
    }

    #[test]
    fn empty_schedule_is_identity() {
        let values: Vec<u64> = (0..100).collect();
        let s = TwoTournamentSchedule::compute(0.5, 0.12).unwrap();
        assert!(s.is_empty());
        let out = run(&values, &s, EngineConfig::with_seed(2)).unwrap();
        assert_eq!(out.values, values);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn outputs_are_always_members_of_the_input_multiset() {
        let values: Vec<u64> = (0..5000).map(|i| i * 31 % 9973).collect();
        let s = TwoTournamentSchedule::compute(0.3, 0.06).unwrap();
        let out = run(&values, &s, EngineConfig::with_seed(4)).unwrap();
        let set: std::collections::HashSet<u64> = values.iter().copied().collect();
        assert!(out.values.iter().all(|v| set.contains(v)));
    }
}
