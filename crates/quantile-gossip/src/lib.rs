//! # quantile-gossip
//!
//! Gossip algorithms for exact and approximate quantile computation — a
//! faithful implementation of
//! *"Optimal Gossip Algorithms for Exact and Approximate Quantile
//! Computations"* (Haeupler, Mohapatra, Su; PODC 2018).
//!
//! Every node of a network holds a value; nodes communicate by uniform
//! push/pull gossip (one contact per node per round, `O(log n)`-bit messages).
//! This crate provides:
//!
//! | Entry point | Paper result | Rounds |
//! |---|---|---|
//! | [`approx::approximate_quantile`] | Theorems 1.2 / 2.1 | `O(log log n + log 1/ε)` |
//! | [`exact::exact_quantile`] | Theorem 1.1 | `O(log n)` |
//! | [`own_rank::estimate_own_quantiles`] | Corollary 1.5 | `(1/ε)·O(log log n + log 1/ε)` |
//! | [`robust::robust_approximate_quantile`] | Theorem 1.4 | same, under failures |
//! | [`two_tournament::run`] | Algorithm 1 (2-TOURNAMENT), Lemmas 2.3–2.11 | 2 per iteration |
//! | [`three_tournament::run`] | Algorithm 2 (3-TOURNAMENT), Lemmas 2.12–2.17 | 3 per iteration |
//! | [`schedule::TwoTournamentSchedule`] | the `h_{i+1} = h_i²` recursion, Lemma 2.2 | — |
//! | [`schedule::ThreeTournamentSchedule`] | the `h_{i+1} = 3h_i² − 2h_i³` recursion, Lemma 2.12 | — |
//! | [`service::QuantileService`] | Theorems 1.2/1.3, amortised over a query *vector* | `O((log log n + log 1/ε)/q)` per query |
//!
//! The full entry-point-by-theorem map — including the Appendix A baselines
//! living in the `baselines` crate — is `docs/paper-map.md` in the repository
//! root.
//!
//! All algorithms run on the [`gossip_net`] simulator and report the rounds,
//! messages and bits they consumed, so they can be compared head-to-head with
//! the [`baselines`] crate (Kempe et al. push-sum and selection, naive
//! sampling, the doubling/compaction algorithms of Appendix A).
//!
//! Every entry point takes an [`EngineConfig`], and with it a communication
//! [`Topology`]: the paper's complete-graph uniform gossip by default, or a
//! restricted graph (random regular expander, ring, torus). Sub-phases and
//! sub-engines inherit the configured topology, so e.g.
//! [`approx::approximate_quantile`] runs both tournament phases on the same
//! graph. The paper's guarantees are proved for the complete graph only —
//! `bench/benches/topology_quantile.rs` measures how each algorithm degrades
//! away from it (see `docs/paper-map.md`, "Where the complete-graph
//! assumption enters").
//!
//! ## Quickstart
//!
//! ```
//! use gossip_net::EngineConfig;
//! use quantile_gossip::approx::{approximate_quantile, ApproxConfig};
//!
//! # fn main() -> gossip_net::Result<()> {
//! // 10 000 sensors, each holding one reading.
//! let readings: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 100_000).collect();
//!
//! // Every node learns a value whose rank is within ±5% of the 90th percentile,
//! // in O(log log n + log 1/eps) gossip rounds.
//! let out = approximate_quantile(&readings, 0.9, 0.05, &ApproxConfig::default(),
//!                                EngineConfig::with_seed(42))?;
//! assert_eq!(out.outputs.len(), readings.len());
//! println!("rounds used: {}", out.rounds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approx;
pub mod exact;
pub mod own_rank;
pub mod robust;
pub mod schedule;
pub mod service;
pub mod three_tournament;
pub mod two_tournament;

pub use approx::{
    approximate_quantile, tournament_min_epsilon, tournament_quantile, ApproxConfig, ApproxOutcome,
    Method, MethodUsed, TournamentConfig,
};
pub use exact::{exact_quantile, ExactOutcome, NarrowingConfig};
pub use own_rank::{estimate_own_quantiles, OwnRankConfig, OwnRankOutcome};
pub use robust::{robust_approximate_quantile, RobustConfig, RobustOutcome};
pub use schedule::{
    AdaptiveRoundBudget, ShrinkSide, ThreeTournamentSchedule, TwoTournamentSchedule,
};
pub use service::{
    EpochMode, EpochTimings, QuantileQuery, QuantileService, QueryCost, ServiceConfig,
    ServiceOutcome, Sourced,
};
pub use three_tournament::FinalVote;

// Re-export the substrate types that appear in this crate's public API so that
// downstream users only need one dependency.
pub use gossip_net::{
    ChurnModel, EngineConfig, FailureModel, FaultPlan, GossipError, LossModel, Metrics, NodeValue,
    Result, StragglerModel, Topology,
};
