//! Failure-robust tournament algorithms (Theorem 1.4, Section 5.1).
//!
//! Under the failure model of Section 5 (every node fails each round with a
//! probability bounded by `μ < 1`), the tournament algorithms are made robust
//! by over-sampling: in every iteration each node pulls from
//! `Θ(1/(1−μ) · log 1/(1−μ))` nodes instead of 2 or 3, declares itself *good*
//! if at least 2 (resp. 3) of those pulls succeeded **and** came from nodes
//! that were good in the previous iteration, and runs the tournament on the
//! first good pulls. Lemma 5.2 shows a constant fraction of nodes stays good
//! throughout, so the concentration arguments go through with `n` replaced by
//! `n_i = Ω(n)`.
//!
//! The final vote samples `Θ(K/(1−μ)·log(K/(1−μ)))` nodes and succeeds at
//! every node that obtained `K` good pulls; `t` additional learning rounds
//! then deliver the answer to all but `≈ n·2^{-t}` of the remaining nodes.

use crate::schedule::{
    AdaptiveRoundBudget, ShrinkSide, ThreeTournamentSchedule, TwoTournamentSchedule,
};
use crate::three_tournament::median3;
use gossip_net::{Engine, EngineConfig, GossipError, Metrics, NodeValue, Result};
use rand::Rng;

/// Configuration of the robust approximate-quantile algorithm.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Upper bound `μ` on the per-round failure probability. `None` derives it
    /// from the engine's fault plan where possible (and errors otherwise,
    /// unless [`RobustConfig::adaptive`] is set).
    pub mu: Option<f64>,
    /// Number of pulls per tournament iteration. `None` selects the
    /// Lemma 5.2 default `⌈4/(1−μ)·ln(4/(1−μ))⌉ + 1`.
    pub pulls_per_iteration: Option<usize>,
    /// `K`: the number of good pulls the final vote needs.
    pub final_vote_samples: usize,
    /// `t`: extra learning rounds after the vote; all but `≈ n·2^{-t}` nodes
    /// end up with an answer.
    pub learning_rounds: u64,
    /// Adapt the per-iteration pull budget to the **observed** failure mass
    /// instead of the assumed bound: each iteration's metrics delta feeds an
    /// [`AdaptiveRoundBudget`], and the next iteration re-evaluates the
    /// Lemma 5.2 budget at the smoothed estimate `μ̂`. This is the paper's
    /// `O(1/(1−μ))` compensation driven by measurement — under a fault plan
    /// whose intensity is unknown (or lower than a pessimistic bound) it
    /// spends fewer rounds, and with no derivable bound at all it still runs
    /// (starting from `μ̂ = 0`, or [`RobustConfig::mu`] if given).
    pub adaptive: bool,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            mu: None,
            pulls_per_iteration: None,
            final_vote_samples: 15,
            learning_rounds: 10,
            adaptive: false,
        }
    }
}

impl RobustConfig {
    /// The per-iteration pull count for a failure bound `mu`.
    pub fn pulls_for(&self, mu: f64) -> usize {
        if let Some(k) = self.pulls_per_iteration {
            return k.max(3);
        }
        let s = 1.0 - mu.clamp(0.0, 0.99);
        ((4.0 / s) * (4.0 / s).ln()).ceil() as usize + 1
    }

    /// The number of pulls used by the final vote for a failure bound `mu`.
    pub fn final_pulls_for(&self, mu: f64) -> usize {
        let s = 1.0 - mu.clamp(0.0, 0.99);
        let k = self.final_vote_samples as f64;
        ((k / s) * (k / s).ln().max(1.0)).ceil() as usize
    }
}

/// Result of the robust approximate quantile computation.
#[derive(Debug, Clone)]
pub struct RobustOutcome<V> {
    /// Per-node output: `Some(value)` for nodes that learned an answer,
    /// `None` for the (exponentially small) remainder.
    pub outputs: Vec<Option<V>>,
    /// Fraction of nodes with an answer.
    pub answered_fraction: f64,
    /// Total rounds executed.
    pub rounds: u64,
    /// Communication metrics.
    pub metrics: Metrics,
    /// Fraction of nodes still *good* after the tournament iterations
    /// (Lemma 5.2 guarantees a constant fraction).
    pub good_fraction: f64,
    /// The failure estimate the run ended on: the observed `μ̂` in adaptive
    /// mode, the assumed bound otherwise.
    pub estimated_mu: f64,
}

#[derive(Debug, Clone, Copy)]
struct RobustState<V> {
    value: V,
    good: bool,
    answer: Option<V>,
}

/// Struct-of-arrays mirror of [`RobustState`]: three parallel columns, so
/// the end-of-run extraction scans flat `good` / `answer` arrays instead of
/// striding through the interleaved struct array. Hand-written
/// [`Columns`](gossip_net::soa::Columns) impl (the `columns!` macro handles
/// non-generic states; this one is generic over `V`).
#[derive(Debug, Clone)]
struct RobustColumns<V> {
    value: Vec<V>,
    good: Vec<bool>,
    answer: Vec<Option<V>>,
}

// Manual `Default` so `V: Default` is not required (empty columns need no
// element values).
impl<V> Default for RobustColumns<V> {
    fn default() -> Self {
        RobustColumns {
            value: Vec::new(),
            good: Vec::new(),
            answer: Vec::new(),
        }
    }
}

impl<V: NodeValue> gossip_net::soa::Columns for RobustColumns<V> {
    type State = RobustState<V>;

    fn push(&mut self, state: &RobustState<V>) {
        self.value.push(state.value);
        self.good.push(state.good);
        self.answer.push(state.answer);
    }

    fn len(&self) -> usize {
        debug_assert_eq!(self.value.len(), self.good.len());
        debug_assert_eq!(self.value.len(), self.answer.len());
        self.value.len()
    }

    fn get(&self, i: usize) -> RobustState<V> {
        RobustState {
            value: self.value[i],
            good: self.good[i],
            answer: self.answer[i],
        }
    }

    fn set(&mut self, i: usize, state: &RobustState<V>) {
        self.value[i] = state.value;
        self.good[i] = state.good;
        self.answer[i] = state.answer;
    }
}

/// Runs the failure-robust ε-approximate φ-quantile algorithm of Theorem 1.4.
///
/// # Errors
///
/// Returns an error if fewer than two values are given, `φ ∉ [0, 1]`,
/// `ε ≤ 0`, or `μ` is neither given nor derivable from the failure model.
pub fn robust_approximate_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    epsilon: f64,
    config: &RobustConfig,
    engine_config: EngineConfig,
) -> Result<RobustOutcome<V>> {
    let n = values.len();
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    if epsilon <= 0.0 {
        return Err(GossipError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be positive, got {epsilon}"),
        });
    }
    let mu = match config.mu.or_else(|| engine_config.fault.mu_upper_bound()) {
        Some(m) if m < 1.0 => m,
        // Adaptive mode needs no a-priori bound: it starts from μ̂ = 0 and
        // sizes later iterations from what it measures.
        None if config.adaptive => 0.0,
        _ => {
            return Err(GossipError::InvalidParameter {
                name: "mu",
                reason: "a failure bound mu < 1 must be provided or derivable".to_string(),
            })
        }
    };
    let eps = epsilon.min(crate::approx::MAX_TOURNAMENT_EPSILON);
    let fixed_pulls = config.pulls_for(mu);
    let mut budget = AdaptiveRoundBudget::with_initial_mu(mu);

    let states: Vec<RobustState<V>> = values
        .iter()
        .map(|&v| RobustState {
            value: v,
            good: true,
            answer: None,
        })
        .collect();
    let mut engine = Engine::from_states(states, engine_config);

    // Phase I: robust 2-TOURNAMENT.
    let schedule1 = TwoTournamentSchedule::compute(phi, eps)?;
    let side = schedule1.side;
    for step in &schedule1.steps {
        let pulls = if config.adaptive {
            config.pulls_for(budget.mu_hat())
        } else {
            fixed_pulls
        };
        let before = engine.metrics();
        let samples = engine.collect_samples(pulls, |_, st| (st.value, st.good));
        if config.adaptive {
            budget.observe(engine.metrics().snapshot_delta(&before).disturbance_rate());
        }
        let delta = step.delta;
        engine.local_step(|v, st, rng| {
            let good_pulls: Vec<V> = samples[v]
                .iter()
                .filter(|(_, g)| *g)
                .map(|&(val, _)| val)
                .collect();
            if good_pulls.len() < 2 {
                st.good = false;
                return;
            }
            // The probability-δ branch is drawn from the node's own stream so
            // runs replay identically at any thread count.
            let tournament = delta >= 1.0 || rng.gen::<f64>() < delta;
            st.value = if tournament {
                match side {
                    ShrinkSide::High => good_pulls[0].min(good_pulls[1]),
                    ShrinkSide::Low => good_pulls[0].max(good_pulls[1]),
                }
            } else {
                good_pulls[0]
            };
        });
    }

    // Phase II: robust 3-TOURNAMENT.
    let schedule2 = ThreeTournamentSchedule::compute(eps / 4.0, n)?;
    for _ in 0..schedule2.len() {
        let pulls = if config.adaptive {
            config.pulls_for(budget.mu_hat())
        } else {
            fixed_pulls
        };
        let before = engine.metrics();
        let samples = engine.collect_samples(pulls, |_, st| (st.value, st.good));
        if config.adaptive {
            budget.observe(engine.metrics().snapshot_delta(&before).disturbance_rate());
        }
        engine.local_step(|v, st, _rng| {
            let good_pulls: Vec<V> = samples[v]
                .iter()
                .filter(|(_, g)| *g)
                .map(|&(val, _)| val)
                .collect();
            if good_pulls.len() < 3 {
                st.good = false;
                return;
            }
            st.value = median3(good_pulls[0], good_pulls[1], good_pulls[2]);
        });
    }
    // Final vote: sample until K good pulls are collected.
    let final_pulls = if config.adaptive {
        config.final_pulls_for(budget.mu_hat())
    } else {
        config.final_pulls_for(mu)
    };
    let k = config.final_vote_samples.max(1);
    let samples = engine.collect_samples(final_pulls, |_, st| (st.value, st.good));
    engine.local_step(|v, st, _rng| {
        let mut good_pulls: Vec<V> = samples[v]
            .iter()
            .filter(|(_, g)| *g)
            .map(|&(val, _)| val)
            .collect();
        if good_pulls.len() >= k {
            good_pulls.truncate(k);
            good_pulls.sort_unstable();
            st.answer = Some(good_pulls[good_pulls.len() / 2]);
        } else {
            st.answer = None;
        }
    });

    // Learning rounds: nodes without an answer adopt any answer they pull.
    for _ in 0..config.learning_rounds {
        engine.pull_round(
            |_, st| st.answer,
            |_, st, pulled| {
                if st.answer.is_none() {
                    if let Some(Some(a)) = pulled {
                        st.answer = Some(a);
                    }
                }
            },
        );
    }

    let metrics = engine.metrics();
    // Columnar extraction: decompose the final states into parallel flat
    // columns and read `good` / `answer` as contiguous arrays. `good` is only
    // ever cleared during the tournament phases (the final vote and learning
    // rounds touch `answer` alone), so the fraction measured here equals the
    // post-tournament one.
    use gossip_net::soa::Columns as _;
    let cols = RobustColumns::from_states(engine.states());
    let good_fraction = cols.good.iter().filter(|&&g| g).count() as f64 / n as f64;
    let answered = cols.answer.iter().filter(|o| o.is_some()).count() as f64 / n as f64;
    let outputs = cols.answer;
    Ok(RobustOutcome {
        outputs,
        answered_fraction: answered,
        rounds: metrics.rounds,
        metrics,
        good_fraction,
        estimated_mu: if config.adaptive { budget.mu_hat() } else { mu },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::FailureModel;

    fn rank_of(values: &[u64], x: u64) -> f64 {
        values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64
    }

    #[test]
    fn rejects_invalid_inputs() {
        let cfg = RobustConfig::default();
        assert!(
            robust_approximate_quantile(&[1u64], 0.5, 0.1, &cfg, EngineConfig::with_seed(0))
                .is_err()
        );
        assert!(robust_approximate_quantile(
            &[1u64, 2],
            2.0,
            0.1,
            &cfg,
            EngineConfig::with_seed(0)
        )
        .is_err());
        // A schedule-based failure model has no derivable mu.
        let ec = EngineConfig::with_seed(0).failure(FailureModel::schedule(|_, _| 0.1));
        assert!(
            robust_approximate_quantile(&(0..10u64).collect::<Vec<_>>(), 0.5, 0.1, &cfg, ec)
                .is_err()
        );
    }

    #[test]
    fn pull_counts_grow_with_mu() {
        let cfg = RobustConfig::default();
        assert!(cfg.pulls_for(0.0) < cfg.pulls_for(0.5));
        assert!(cfg.pulls_for(0.5) < cfg.pulls_for(0.9));
        assert!(cfg.pulls_for(0.0) >= 3);
        assert!(cfg.final_pulls_for(0.5) > cfg.final_vote_samples);
        let fixed = RobustConfig {
            pulls_per_iteration: Some(7),
            ..Default::default()
        };
        assert_eq!(fixed.pulls_for(0.9), 7);
    }

    #[test]
    fn without_failures_every_node_answers_accurately() {
        let n: u64 = 50_000;
        let values: Vec<u64> = (0..n).collect();
        let eps = 0.08;
        let out = robust_approximate_quantile(
            &values,
            0.3,
            eps,
            &RobustConfig::default(),
            EngineConfig::with_seed(2),
        )
        .unwrap();
        assert_eq!(out.answered_fraction, 1.0);
        assert!(out.good_fraction > 0.99);
        for o in out.outputs.iter().flatten() {
            let q = rank_of(&values, *o);
            assert!((q - 0.3).abs() <= eps + 0.01, "quantile {q}");
        }
    }

    #[test]
    fn with_heavy_failures_most_nodes_answer_accurately() {
        let n: u64 = 50_000;
        let values: Vec<u64> = (0..n).collect();
        let eps = 0.08;
        let mu = 0.5;
        let ec = EngineConfig::with_seed(5).failure(FailureModel::uniform(mu).unwrap());
        let out =
            robust_approximate_quantile(&values, 0.5, eps, &RobustConfig::default(), ec).unwrap();
        // Lemma 5.2: a constant fraction of nodes stays good.
        assert!(
            out.good_fraction > 0.3,
            "good fraction {}",
            out.good_fraction
        );
        // Theorem 1.4: all but ~n/2^t nodes learn an answer.
        assert!(
            out.answered_fraction > 0.99,
            "answered {}",
            out.answered_fraction
        );
        let mut checked = 0;
        for o in out.outputs.iter().flatten() {
            let q = rank_of(&values, *o);
            assert!((q - 0.5).abs() <= eps + 0.02, "quantile {q}");
            checked += 1;
        }
        assert!(checked > 0);
        assert!(out.metrics.failed_operations > 0);
    }

    #[test]
    fn adaptive_budget_measures_fault_plans_without_a_bound() {
        use gossip_net::{FaultPlan, LossModel, StragglerModel};
        let n: u64 = 20_000;
        let values: Vec<u64> = (0..n).collect();
        // Loss + stragglers: mu_upper_bound is derivable here, but pretend it
        // is not by keeping `mu: None` with a schedule-free plan — adaptive
        // mode must measure the disturbance instead of assuming it.
        let plan = FaultPlan::none()
            .with_loss(LossModel::uniform(0.3).unwrap())
            .with_stragglers(StragglerModel::uniform(0.1, 3).unwrap());
        let ec = EngineConfig::with_seed(11).fault(plan);
        let cfg = RobustConfig {
            adaptive: true,
            ..Default::default()
        };
        let out = robust_approximate_quantile(&values, 0.5, 0.1, &cfg, ec).unwrap();
        // The measured estimate reflects the injected ~40% disturbance mass.
        assert!(
            out.estimated_mu > 0.15 && out.estimated_mu < 0.99,
            "measured mu {}",
            out.estimated_mu
        );
        assert!(
            out.answered_fraction > 0.9,
            "answered {}",
            out.answered_fraction
        );
        assert!(out.metrics.messages_dropped > 0);
        // The robust algorithm is pull-only and pull contacts never straggle,
        // so the straggler combinator is inert here by design.
        assert_eq!(out.metrics.messages_delayed, 0);
        for o in out.outputs.iter().flatten() {
            let q = rank_of(&values, *o);
            assert!((q - 0.5).abs() <= 0.13, "quantile {q}");
        }
    }

    #[test]
    fn adaptive_mode_requires_no_derivable_bound() {
        // A schedule-based failure model has no mu_upper_bound; adaptive mode
        // runs anyway, the fixed mode errors (as pinned above).
        let values: Vec<u64> = (0..5_000u64).collect();
        let ec = EngineConfig::with_seed(3).failure(FailureModel::schedule(|_, _| 0.2));
        let cfg = RobustConfig {
            adaptive: true,
            ..Default::default()
        };
        let out = robust_approximate_quantile(&values, 0.5, 0.1, &cfg, ec).unwrap();
        assert!(out.answered_fraction > 0.9);
        assert!(out.estimated_mu > 0.05, "measured mu {}", out.estimated_mu);
    }

    #[test]
    fn per_node_failure_probabilities_are_supported() {
        let n: u64 = 20_000;
        let values: Vec<u64> = (0..n).collect();
        // Adversarial-ish: half the nodes fail 60% of the time, half never.
        let probs: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.6 } else { 0.0 }).collect();
        let ec = EngineConfig::with_seed(9).failure(FailureModel::per_node(probs).unwrap());
        let out =
            robust_approximate_quantile(&values, 0.5, 0.1, &RobustConfig::default(), ec).unwrap();
        assert!(
            out.answered_fraction > 0.95,
            "answered {}",
            out.answered_fraction
        );
        for o in out.outputs.iter().flatten() {
            let q = rank_of(&values, *o);
            assert!((q - 0.5).abs() <= 0.12, "quantile {q}");
        }
    }
}
