//! Phase II of the approximation algorithm: the 3-TOURNAMENT median dynamic
//! (Algorithm 2 of the paper).
//!
//! Each iteration, every node samples three uniformly random values (three
//! rounds) and replaces its value with their **median**. The mass of values
//! whose quantile lies more than ε away from 1/2 first shrinks geometrically
//! (for `O(log 1/ε)` iterations) and then doubly exponentially (for
//! `O(log log n)` iterations) until it falls below `2·n^{-1/3}` (Lemmas
//! 2.12–2.16). A final sampling step — every node samples `K = O(1)` values
//! and outputs their median — then returns an ε-approximate median at every
//! node w.h.p. (Lemma 2.17).
//!
//! The last tournament iteration is δ-truncated
//! ([`ThreeTournamentSchedule::final_delta`], the analogue of Algorithm 1's
//! final-step probability): only a δ-fraction of nodes runs the three-sample
//! tournament, so that iteration's second and third sampling rounds run
//! **sparsely** on the participating subset
//! ([`Engine::collect_samples_on`]), with the participation coin drawn on
//! [`NodeRng::STREAM_PARTICIPATION`].

use crate::schedule::ThreeTournamentSchedule;
use gossip_net::{
    ActiveSet, Engine, EngineConfig, GossipError, Metrics, NodeRng, NodeValue, Result,
    RoundProgram, StepKind,
};

/// Configuration of the final `K`-sample vote of Algorithm 2 (line 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalVote {
    /// Number of values each node samples before outputting their median.
    /// The paper takes `K = O(1)`; 15 keeps the per-node failure probability
    /// `2·(4e/n^{2/3})^{K/2}` negligible for every n ≥ 1000 while costing only
    /// 15 rounds.
    pub samples: usize,
}

impl Default for FinalVote {
    fn default() -> Self {
        FinalVote { samples: 15 }
    }
}

/// Result of running Phase II.
#[derive(Debug, Clone)]
pub struct ThreeTournamentOutcome<V> {
    /// The per-node outputs of the final vote (an approximate median of the
    /// input multiset at every node).
    pub outputs: Vec<V>,
    /// The node values after the tournament iterations, before the final vote.
    pub converged_values: Vec<V>,
    /// Tournament iterations executed (`t` in the paper).
    pub iterations: usize,
    /// Total rounds executed (three per iteration plus the final vote).
    pub rounds: u64,
    /// Communication metrics.
    pub metrics: Metrics,
}

/// Runs Algorithm 2 on `values`: tournament iterations given by `schedule`,
/// then the final `K`-sample vote.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given, or
/// [`GossipError::InvalidParameter`] if `vote.samples == 0`.
pub fn run<V: NodeValue>(
    values: &[V],
    schedule: &ThreeTournamentSchedule,
    vote: FinalVote,
    engine_config: EngineConfig,
) -> Result<ThreeTournamentOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    if vote.samples == 0 {
        return Err(GossipError::InvalidParameter {
            name: "vote.samples",
            reason: "the final vote needs at least one sample".to_string(),
        });
    }
    let n = values.len();
    let mut engine = Engine::from_states(values.to_vec(), engine_config);
    let seed = engine.seed();

    // The tournament iterations compile into one RoundProgram, replayed as a
    // single fused pool dispatch (the workers wake once for all `3t` rounds).
    // Each recorded step makes exactly the engine calls the hand-written
    // loop made, so the trajectory is bit-identical to unfused execution.
    let iterations = schedule.len();
    let mut program: RoundProgram<'_, V> = RoundProgram::new();
    for iteration in 0..iterations {
        let delta = if iteration + 1 == iterations {
            schedule.final_delta
        } else {
            1.0
        };
        if delta >= 1.0 {
            // Flat column-major sample matrix: one allocation for all three
            // sampling rounds, each round filling a contiguous column.
            program.collect_local(
                3,
                |_, &v| v,
                |v, state, _rng, samples| {
                    let (s0, s1, s2) = (
                        samples.sample(v, 0),
                        samples.sample(v, 1),
                        samples.sample(v, 2),
                    );
                    *state = match (s0, s1, s2) {
                        (Some(a), Some(b), Some(c)) => median3(a, b, c),
                        // Failure fallbacks: degrade gracefully to the information
                        // we actually received this iteration (samples keep their
                        // round order, as in the nested layout).
                        (Some(a), Some(b), None)
                        | (Some(a), None, Some(b))
                        | (None, Some(a), Some(b)) => median3(a, b, *state),
                        (Some(a), None, None) | (None, Some(a), None) | (None, None, Some(a)) => {
                            median3(a, *state, *state)
                        }
                        (None, None, None) => *state,
                    };
                },
            );
        } else {
            // δ-truncated final iteration (ThreeTournamentSchedule::final_delta):
            // only a δ-fraction of nodes runs the three-sample tournament;
            // everyone else copies a single fresh sample. The second and
            // third sampling rounds therefore run on the participating
            // subset only — O(δn) engine work — with the participation coin
            // drawn up front on the dedicated STREAM_PARTICIPATION stream so
            // the trajectory is a pure function of the seed. Data-dependent
            // structure, so it records as a custom step.
            program.step(StepKind::Custom, move |engine| {
                let prefix =
                    NodeRng::key_prefix(seed, iteration as u64, NodeRng::STREAM_PARTICIPATION);
                let active = ActiveSet::from_fn(n, |v| prefix.node(v as u64).next_f64() < delta);
                let first = engine.collect_samples(1, |_, &v| v);
                let rest = engine.collect_samples_on(&active, 2, |_, &v| v);
                engine.local_step(|v, state, _rng| {
                    let s0 = first[v].first().copied();
                    let extra = active.rank(v).map(|r| rest[r].as_slice());
                    *state = match (s0, extra) {
                        (Some(a), Some(&[b, c])) => median3(a, b, c),
                        // δ-branch: replace the value with the single sample.
                        (Some(a), None) => a,
                        // Failure fallbacks, mirroring the dense arm.
                        (Some(a), Some(&[b])) => median3(a, b, *state),
                        (Some(a), Some(_)) => median3(a, *state, *state),
                        (None, Some(&[b, c])) => median3(b, c, *state),
                        (None, Some(&[b])) => median3(b, *state, *state),
                        _ => *state,
                    };
                });
            });
        }
    }
    engine.run_program(&mut program);
    let converged_values = engine.states().to_vec();

    // Line 8: sample K values and output their median. The flat matrix
    // replaces n per-node vectors with one allocation; the vote reuses a
    // single scratch buffer across nodes. Its K pull rounds fuse into one
    // dispatch of their own.
    let final_samples = engine.fused(|e| e.collect_samples_flat(vote.samples, |_, &v| v));
    let mut scratch: Vec<V> = Vec::with_capacity(vote.samples);
    let outputs: Vec<V> = (0..n)
        .map(|v| {
            scratch.clear();
            scratch.extend(final_samples.row(v).copied());
            if scratch.is_empty() {
                converged_values[v]
            } else {
                scratch.sort_unstable();
                scratch[scratch.len() / 2]
            }
        })
        .collect();

    let metrics = engine.metrics();
    Ok(ThreeTournamentOutcome {
        outputs,
        converged_values,
        iterations: schedule.len(),
        rounds: metrics.rounds,
        metrics,
    })
}

/// Median of three values.
pub(crate) fn median3<V: Ord>(a: V, b: V, c: V) -> V {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if c <= lo {
        lo
    } else if c >= hi {
        hi
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantile_of(v: u64, n: u64) -> f64 {
        v as f64 / n as f64
    }

    #[test]
    fn rejects_bad_inputs() {
        let s = ThreeTournamentSchedule::compute(0.05, 100).unwrap();
        assert!(run::<u64>(&[1], &s, FinalVote::default(), EngineConfig::with_seed(0)).is_err());
        assert!(run(
            &[1u64, 2],
            &s,
            FinalVote { samples: 0 },
            EngineConfig::with_seed(0)
        )
        .is_err());
    }

    #[test]
    fn round_count_matches_schedule_plus_vote() {
        let n: u64 = 1 << 12;
        let values: Vec<u64> = (0..n).collect();
        let s = ThreeTournamentSchedule::compute(0.05, n as usize).unwrap();
        let vote = FinalVote { samples: 9 };
        let out = run(&values, &s, vote, EngineConfig::with_seed(1)).unwrap();
        assert_eq!(out.rounds, 3 * s.len() as u64 + 9);
        assert_eq!(out.iterations, s.len());
    }

    #[test]
    fn every_node_outputs_an_approximate_median() {
        let n: u64 = 100_000;
        let values: Vec<u64> = (0..n).collect();
        let eps = 0.05;
        let s = ThreeTournamentSchedule::compute(eps, n as usize).unwrap();
        let out = run(
            &values,
            &s,
            FinalVote::default(),
            EngineConfig::with_seed(5),
        )
        .unwrap();
        for &o in &out.outputs {
            let q = quantile_of(o, n);
            assert!((q - 0.5).abs() <= eps, "output quantile {q}");
        }
    }

    #[test]
    fn tournament_concentrates_values_before_the_vote() {
        // Lemma 2.16: after the iterations, the mass outside [1/2−ε, 1/2+ε]
        // is at most ~2·n^{-1/3} each side. Check a generous 10·n^{-1/3}.
        let n: u64 = 50_000;
        let values: Vec<u64> = (0..n).collect();
        let eps = 0.05;
        let s = ThreeTournamentSchedule::compute(eps, n as usize).unwrap();
        let out = run(
            &values,
            &s,
            FinalVote::default(),
            EngineConfig::with_seed(6),
        )
        .unwrap();
        let outside = out
            .converged_values
            .iter()
            .filter(|&&v| {
                let q = quantile_of(v, n);
                !(0.5 - eps..=0.5 + eps).contains(&q)
            })
            .count() as f64
            / n as f64;
        let bound = 10.0 * (n as f64).powf(-1.0 / 3.0);
        assert!(outside <= bound, "outside mass {outside}, bound {bound}");
    }

    #[test]
    fn final_delta_iteration_samples_sparsely() {
        let n: u64 = 1 << 13;
        let values: Vec<u64> = (0..n).collect();
        let s = ThreeTournamentSchedule::compute(0.05, n as usize).unwrap();
        if s.final_delta >= 1.0 {
            return; // nothing truncated for these parameters
        }
        let vote = FinalVote { samples: 5 };
        let out = run(&values, &s, vote, EngineConfig::with_seed(11)).unwrap();
        // Dense rounds: 3 per full iteration, plus the final iteration's one
        // dense sampling round, plus the vote; the final iteration's two
        // sparse rounds carry only the δ-fraction participants.
        let m = out.metrics;
        let dense_rounds = 3 * (s.len() as u64 - 1) + 1 + 5;
        let sparse_active = m.active_nodes_total - dense_rounds * n;
        let expected = 2.0 * s.final_delta * n as f64;
        assert!(
            (sparse_active as f64) > 0.5 * expected && (sparse_active as f64) < 1.5 * expected,
            "sparse activity {sparse_active}, expected ≈ {expected}"
        );
    }

    #[test]
    fn works_on_skewed_inputs() {
        // Highly skewed multiset: 90% zeros, 10% spread. The median is 0 and
        // every node must output 0.
        let n = 20_000u64;
        let values: Vec<u64> = (0..n).map(|i| if i < n * 9 / 10 { 0 } else { i }).collect();
        let s = ThreeTournamentSchedule::compute(0.05, n as usize).unwrap();
        let out = run(
            &values,
            &s,
            FinalVote::default(),
            EngineConfig::with_seed(8),
        )
        .unwrap();
        let zeros = out.outputs.iter().filter(|&&o| o == 0).count();
        assert_eq!(zeros as u64, n);
    }

    #[test]
    fn median3_is_correct() {
        for perm in [
            [1, 2, 3],
            [1, 3, 2],
            [2, 1, 3],
            [2, 3, 1],
            [3, 1, 2],
            [3, 2, 1],
        ] {
            assert_eq!(median3(perm[0], perm[1], perm[2]), 2);
        }
        assert_eq!(median3(4, 4, 9), 4);
    }

    #[test]
    fn outputs_are_members_of_the_input_multiset() {
        let values: Vec<u64> = (0..8192).map(|i| i * 17 % 65_537).collect();
        let s = ThreeTournamentSchedule::compute(0.08, values.len()).unwrap();
        let out = run(
            &values,
            &s,
            FinalVote::default(),
            EngineConfig::with_seed(2),
        )
        .unwrap();
        let set: std::collections::HashSet<u64> = values.iter().copied().collect();
        assert!(out.outputs.iter().all(|v| set.contains(v)));
    }
}
