//! ε-approximate φ-quantile computation (Theorems 1.2 and 2.1).
//!
//! Two regimes are composed here:
//!
//! * **Tournament regime** (`ε` at least polynomially large in `1/n`,
//!   Theorem 2.1): Phase I ([`crate::two_tournament`]) shifts the quantile
//!   band `[φ−ε, φ+ε]` to the median band, Phase II
//!   ([`crate::three_tournament`]) approximates the median of the shifted
//!   multiset. Total `O(log log n + log 1/ε)` rounds, `O(log n)`-bit messages.
//! * **Narrowing (bootstrap) regime** (arbitrarily small `ε`, Theorem 1.2):
//!   the tournament algorithm is only valid for `ε` above a polynomial
//!   threshold; below it, the interval-narrowing machinery of the exact
//!   algorithm ([`crate::exact`]) removes a polynomial fraction of candidate
//!   values per iteration and stops as soon as the remaining uncertainty is at
//!   most `ε·n` ranks.
//!
//! [`approximate_quantile`] dispatches between the two automatically;
//! [`tournament_quantile`] exposes the first regime directly.

use crate::exact::{self, NarrowingConfig};
use crate::schedule::{ThreeTournamentSchedule, TwoTournamentSchedule};
use crate::three_tournament::{self, FinalVote};
use crate::two_tournament;
use gossip_net::{EngineConfig, GossipError, Metrics, NodeValue, Result, SeedSequence};

/// The largest ε that the tournament analysis supports; larger requests are
/// clamped (a finer approximation is also a valid coarser one).
pub const MAX_TOURNAMENT_EPSILON: f64 = 0.125;

/// The smallest ε (as a function of `n`) for which the tournament regime is
/// used by default.
///
/// The paper proves validity for `ε = Ω(1/n^{0.096})` (Theorem 2.1) with very
/// loose constants; the binding practical constraint is the Chernoff
/// concentration of the tail masses, which requires `ε ≳ √(log n / n)`. The
/// default threshold is `6·√(ln n / n)`, which keeps every concentration
/// argument comfortable at laptop scales while being far below the paper's
/// own polynomial bound.
pub fn tournament_min_epsilon(n: usize) -> f64 {
    let n = n.max(4) as f64;
    (6.0 * (n.ln() / n).sqrt()).min(MAX_TOURNAMENT_EPSILON)
}

/// Configuration of the tournament (Theorem 2.1) regime.
#[derive(Debug, Clone, Copy, Default)]
pub struct TournamentConfig {
    /// The final `K`-sample vote of Algorithm 2.
    pub final_vote: FinalVote,
}

/// Which regime [`approximate_quantile`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Always use the tournament regime (Theorem 2.1).
    Tournament,
    /// Always use the interval-narrowing regime (Theorem 1.2 bootstrap).
    Narrowing,
    /// Pick automatically based on [`tournament_min_epsilon`] (default).
    #[default]
    Auto,
}

/// Configuration of [`approximate_quantile`].
#[derive(Debug, Clone, Default)]
pub struct ApproxConfig {
    /// Regime selection.
    pub method: Method,
    /// Parameters of the tournament regime.
    pub tournament: TournamentConfig,
    /// Parameters of the narrowing regime.
    pub narrowing: NarrowingConfig,
}

/// Which regime actually ran, with its iteration counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodUsed {
    /// The tournament regime ran with the given Phase I / Phase II iteration counts.
    Tournament {
        /// 2-TOURNAMENT iterations (Phase I).
        phase1_iterations: usize,
        /// 3-TOURNAMENT iterations (Phase II).
        phase2_iterations: usize,
    },
    /// The narrowing regime ran with the given number of bootstrap iterations.
    Narrowing {
        /// Bootstrap iterations executed.
        iterations: u64,
    },
}

/// Result of an approximate quantile computation.
#[derive(Debug, Clone)]
pub struct ApproxOutcome<V> {
    /// The value output by each node. Every output is a member of the input
    /// multiset with rank in `[(φ−ε)n, (φ+ε)n]` with high probability.
    pub outputs: Vec<V>,
    /// Total rounds executed.
    pub rounds: u64,
    /// Aggregated communication metrics.
    pub metrics: Metrics,
    /// Which regime ran.
    pub method: MethodUsed,
}

/// Runs the two-phase tournament algorithm of Theorem 2.1.
///
/// Requires `ε` to be large enough for the tournament analysis (see
/// [`tournament_min_epsilon`]); smaller values still run but their accuracy
/// guarantee degrades — use [`approximate_quantile`] to dispatch automatically.
///
/// # Errors
///
/// Returns an error if fewer than two values are given or `φ ∉ [0, 1]` /
/// `ε ≤ 0`.
pub fn tournament_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    epsilon: f64,
    config: &TournamentConfig,
    engine_config: EngineConfig,
) -> Result<ApproxOutcome<V>> {
    let n = values.len();
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    if epsilon <= 0.0 {
        return Err(GossipError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be positive, got {epsilon}"),
        });
    }
    let eps = epsilon.min(MAX_TOURNAMENT_EPSILON);
    let mut seeds = SeedSequence::new(engine_config.seed);
    // Sub-phases inherit the failure model and share one worker pool
    // (materialised here if the caller didn't supply one), so each phase's
    // engine reuses the same threads.
    let mut engine_config = engine_config;
    engine_config.ensure_pool_for(values.len());
    let sub = |seeds: &mut SeedSequence| engine_config.sub(seeds.next_seed());

    // Phase I: shift [φ−ε, φ+ε] to the median band.
    let schedule1 = TwoTournamentSchedule::compute(phi, eps)?;
    let phase1 = two_tournament::run(values, &schedule1, sub(&mut seeds))?;

    // Phase II: approximate the median of the shifted multiset to within ε/4,
    // so that (Lemma 2.11) the output quantile lands inside the shifted band.
    let schedule2 = ThreeTournamentSchedule::compute(eps / 4.0, n)?;
    let phase2 = three_tournament::run(
        &phase1.values,
        &schedule2,
        config.final_vote,
        sub(&mut seeds),
    )?;

    let metrics = phase1.metrics + phase2.metrics;
    Ok(ApproxOutcome {
        outputs: phase2.outputs,
        rounds: metrics.rounds,
        metrics,
        method: MethodUsed::Tournament {
            phase1_iterations: phase1.iterations,
            phase2_iterations: phase2.iterations,
        },
    })
}

/// Solves the ε-approximate φ-quantile problem for **any** `ε > 0`
/// (Theorem 1.2), dispatching between the tournament and narrowing regimes.
///
/// Every node's output has rank within `±ε·n` of `⌈φ·n⌉` with high
/// probability; in the narrowing regime all nodes output the same value.
///
/// # Errors
///
/// Returns an error if fewer than two values are given, `φ ∉ [0, 1]`, or
/// `ε ≤ 0`.
pub fn approximate_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    epsilon: f64,
    config: &ApproxConfig,
    engine_config: EngineConfig,
) -> Result<ApproxOutcome<V>> {
    let n = values.len();
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if epsilon <= 0.0 {
        return Err(GossipError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be positive, got {epsilon}"),
        });
    }
    let use_tournament = match config.method {
        Method::Tournament => true,
        Method::Narrowing => false,
        Method::Auto => epsilon >= tournament_min_epsilon(n),
    };
    if use_tournament {
        return tournament_quantile(values, phi, epsilon, &config.tournament, engine_config);
    }

    // Narrowing regime: aim for the target rank with a rank tolerance of
    // ⌊ε·n⌋ (0 forces exactness).
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    let target_rank = ((phi * n as f64).ceil() as u64).clamp(1, n as u64);
    let tolerance = (epsilon * n as f64).floor() as u64;
    let narrowed = exact::narrow_to_rank(
        values,
        target_rank,
        tolerance,
        &config.narrowing,
        engine_config,
    )?;
    Ok(ApproxOutcome {
        outputs: vec![narrowed.answer; n],
        rounds: narrowed.rounds,
        metrics: narrowed.metrics,
        method: MethodUsed::Narrowing {
            iterations: narrowed.iterations,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank (1-based) of `x` in `values`.
    fn rank_of(values: &[u64], x: u64) -> u64 {
        values.iter().filter(|&&v| v <= x).count() as u64
    }

    #[test]
    fn threshold_decreases_with_n() {
        assert!(tournament_min_epsilon(1 << 10) > tournament_min_epsilon(1 << 20));
        assert!(tournament_min_epsilon(4) <= MAX_TOURNAMENT_EPSILON);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let cfg = TournamentConfig::default();
        assert!(tournament_quantile(&[1u64], 0.5, 0.05, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(
            tournament_quantile(&[1u64, 2], 1.5, 0.05, &cfg, EngineConfig::with_seed(0)).is_err()
        );
        assert!(
            tournament_quantile(&[1u64, 2], 0.5, 0.0, &cfg, EngineConfig::with_seed(0)).is_err()
        );
        let acfg = ApproxConfig::default();
        assert!(
            approximate_quantile(&[1u64, 2], 0.5, -1.0, &acfg, EngineConfig::with_seed(0)).is_err()
        );
    }

    #[test]
    fn tournament_approximates_several_quantiles() {
        let n: u64 = 100_000;
        let values: Vec<u64> = (0..n).map(|i| i * 3 + 7).collect();
        let eps = 0.06;
        for (seed, phi) in [(1u64, 0.1f64), (2, 0.3), (3, 0.5), (4, 0.7), (5, 0.9)] {
            let out = tournament_quantile(
                &values,
                phi,
                eps,
                &TournamentConfig::default(),
                EngineConfig::with_seed(seed),
            )
            .unwrap();
            let target = (phi * n as f64).ceil();
            for &o in &out.outputs {
                let r = rank_of(&values, o) as f64;
                assert!(
                    (r - target).abs() <= eps * n as f64 + 1.0,
                    "phi={phi}: rank {r}, target {target}"
                );
            }
        }
    }

    #[test]
    fn round_complexity_is_doubly_logarithmic_plus_log_inv_eps() {
        // The round count must match the schedule arithmetic: 2·t1 + 3·t2 + K.
        let n = 1usize << 16;
        let values: Vec<u64> = (0..n as u64).collect();
        let eps = 0.05;
        let cfg = TournamentConfig::default();
        let out =
            tournament_quantile(&values, 0.25, eps, &cfg, EngineConfig::with_seed(9)).unwrap();
        let t1 = TwoTournamentSchedule::compute(0.25, eps).unwrap().len() as u64;
        let t2 = ThreeTournamentSchedule::compute(eps / 4.0, n)
            .unwrap()
            .len() as u64;
        assert_eq!(out.rounds, 2 * t1 + 3 * t2 + cfg.final_vote.samples as u64);
        // And it is far below log2(n)² = 256 (the KDG03 regime).
        assert!(out.rounds < 100, "rounds = {}", out.rounds);
    }

    #[test]
    fn auto_dispatch_picks_narrowing_for_tiny_epsilon() {
        let n: u64 = 4096;
        let values: Vec<u64> = (0..n).collect();
        // ε = 1/n is far below the tournament threshold.
        let eps = 1.0 / n as f64;
        let out = approximate_quantile(
            &values,
            0.5,
            eps,
            &ApproxConfig::default(),
            EngineConfig::with_seed(11),
        )
        .unwrap();
        assert!(matches!(out.method, MethodUsed::Narrowing { .. }));
        let target = (0.5 * n as f64).ceil() as u64;
        for &o in &out.outputs {
            let r = rank_of(&values, o);
            assert!(
                (r as i64 - target as i64).unsigned_abs() <= 4,
                "rank {r} target {target}"
            );
        }
    }

    #[test]
    fn auto_dispatch_picks_tournament_for_large_epsilon() {
        let values: Vec<u64> = (0..50_000).collect();
        let out = approximate_quantile(
            &values,
            0.5,
            0.1,
            &ApproxConfig::default(),
            EngineConfig::with_seed(13),
        )
        .unwrap();
        assert!(matches!(out.method, MethodUsed::Tournament { .. }));
    }

    #[test]
    fn epsilon_larger_than_one_eighth_is_clamped_not_rejected() {
        let values: Vec<u64> = (0..20_000).collect();
        let out = tournament_quantile(
            &values,
            0.5,
            0.4,
            &TournamentConfig::default(),
            EngineConfig::with_seed(17),
        )
        .unwrap();
        let n = values.len() as f64;
        for &o in &out.outputs {
            let r = rank_of(&values, o) as f64;
            assert!((r - 0.5 * n).abs() <= 0.4 * n);
        }
    }
}
